//! Cross-crate integration: the facade's threaded runtime hosting both
//! protocol stacks, exercised end to end over real OS threads.

use splitbft::prelude::*;
use std::time::Duration;

const SEED: u64 = 31337;

#[test]
fn splitbft_kvs_over_threads() {
    let config = ClusterConfig::new(4).unwrap();
    let cluster = ThreadedCluster::spawn(4, |id| {
        SplitBftReplica::new(
            ClusterConfig::new(4).unwrap(),
            id,
            SEED,
            KeyValueStore::new(),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        )
    });
    let mut client = SplitBftClient::new(config, ClientId(9), SEED, 1).with_plaintext();

    for i in 0..5u32 {
        let op = KvOp::put(format!("k{i}").as_bytes(), b"v").encode_op();
        let request = client.issue(&op);
        cluster.submit(ReplicaId(0), vec![request]);
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let mut done = false;
        while std::time::Instant::now() < deadline {
            let Ok((to, reply)) = cluster.replies().recv_timeout(Duration::from_secs(20)) else {
                break;
            };
            if to != client.id() {
                continue;
            }
            if let SplitClientEvent::Completed(_) = client.on_reply(&reply) {
                done = true;
                break;
            }
        }
        assert!(done, "request {i} did not complete");
    }
    cluster.shutdown();
}

#[test]
fn pbft_counter_over_threads() {
    let config = ClusterConfig::new(4).unwrap();
    let cluster = ThreadedCluster::spawn(4, |id| {
        PbftReplica::new(
            ClusterConfig::new(4).unwrap(),
            id,
            SEED,
            CounterApp::new(),
        )
    });
    let mut client = PbftClient::new(config, ClientId(2), SEED);
    let request = client.issue(bytes::Bytes::from_static(b"inc"));
    cluster.submit(ReplicaId(0), vec![request]);

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut result = None;
    while std::time::Instant::now() < deadline {
        let Ok((to, reply)) = cluster.replies().recv_timeout(Duration::from_secs(20)) else {
            break;
        };
        if to != client.id() {
            continue;
        }
        if let splitbft::pbft::ClientEvent::Completed(r) = client.on_reply(&reply) {
            result = Some(r);
            break;
        }
    }
    assert_eq!(result, Some(bytes::Bytes::copy_from_slice(&1u64.to_le_bytes())));
    cluster.shutdown();
}

#[test]
fn splitbft_survives_view_change_over_threads() {
    // Crash nobody physically, but fire the timers: the cluster moves to
    // view 1 where replica 1 is primary, then serves a request.
    let config = ClusterConfig::new(4).unwrap();
    let cluster = ThreadedCluster::spawn(4, |id| {
        SplitBftReplica::new(
            ClusterConfig::new(4).unwrap(),
            id,
            SEED,
            CounterApp::new(),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        )
    });
    for i in 0..4u32 {
        cluster.trigger_timeout(ReplicaId(i));
    }
    // Give the view change a moment to propagate, then order through the
    // new primary.
    std::thread::sleep(Duration::from_millis(300));
    let mut client = SplitBftClient::new(config, ClientId(5), SEED, 3).with_plaintext();
    let request = client.issue(b"inc");
    cluster.submit(ReplicaId(1), vec![request.clone()]);

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut done = false;
    while std::time::Instant::now() < deadline {
        let Ok((to, reply)) = cluster.replies().recv_timeout(Duration::from_millis(500)) else {
            // The transport is at-most-once: a submit that landed while
            // replica 1 was still mid-view-change is simply dropped.
            // Retransmit like a real client (replicas dedup by timestamp
            // and re-send the cached reply once executed).
            cluster.submit(ReplicaId(1), vec![request.clone()]);
            continue;
        };
        if to == client.id() {
            if let SplitClientEvent::Completed(_) = client.on_reply(&reply) {
                done = true;
                break;
            }
        }
    }
    assert!(done, "request did not complete in the new view");
    cluster.shutdown();
}
