//! The same workload through all three systems — PBFT, the hybrid
//! baseline, and SplitBFT — must yield the same application state, and
//! their relative fault tolerance must match the paper's Table 1.

use bytes::Bytes;
use splitbft::app::CounterApp;
use splitbft::hybrid::{HybridAction, HybridClient, HybridClientEvent, HybridConfig, HybridReplica, Usig};
use splitbft::model::{run_scenario, Scenario};
use splitbft::prelude::*;
use splitbft::types::ConsensusMessage;
use std::collections::VecDeque;

const SEED: u64 = 808;

/// Drives `increments` through a SplitBFT cluster, returns the final
/// counter value on replica 0.
fn run_splitbft(increments: u64) -> u64 {
    let config = ClusterConfig::new(4).unwrap();
    let mut replicas: Vec<SplitBftReplica<CounterApp>> = (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                config.clone(),
                ReplicaId(i),
                SEED,
                CounterApp::new(),
                ExecMode::Hardware,
                CostModel::paper_calibrated(),
            )
        })
        .collect();
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    for ts in 1..=increments {
        let req = make_request(SEED, ClientId(0), Timestamp(ts), Bytes::from_static(b"inc"));
        let events = replicas[0].on_client_batch(vec![req]);
        for e in events {
            if let ReplicaEvent::Broadcast(m) = e {
                for (j, q) in queues.iter_mut().enumerate() {
                    if j != 0 {
                        q.push_back(m.clone());
                    }
                }
            }
        }
        loop {
            let mut progressed = false;
            for i in 0..4 {
                while let Some(m) = queues[i].pop_front() {
                    progressed = true;
                    for e in replicas[i].on_network_message(m) {
                        if let ReplicaEvent::Broadcast(m2) = e {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(m2.clone());
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }
    // All replicas agree.
    let v = replicas[0].app().value();
    for r in &replicas {
        assert_eq!(r.app().value(), v, "divergence at {}", r.id());
    }
    v
}

fn run_pbft(increments: u64) -> u64 {
    let config = ClusterConfig::new(4).unwrap();
    let mut replicas: Vec<PbftReplica<CounterApp>> = (0..4u32)
        .map(|i| PbftReplica::new(config.clone(), ReplicaId(i), SEED, CounterApp::new()))
        .collect();
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    for ts in 1..=increments {
        let req = make_request(SEED, ClientId(0), Timestamp(ts), Bytes::from_static(b"inc"));
        let actions = replicas[0].on_client_batch(vec![req]);
        for a in actions {
            if let splitbft::pbft::Action::Broadcast { msg } = a {
                for (j, q) in queues.iter_mut().enumerate() {
                    if j != 0 {
                        q.push_back(msg.clone());
                    }
                }
            }
        }
        loop {
            let mut progressed = false;
            for i in 0..4 {
                while let Some(m) = queues[i].pop_front() {
                    progressed = true;
                    for a in replicas[i].on_message(m).unwrap_or_default() {
                        if let splitbft::pbft::Action::Broadcast { msg } = a {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(msg.clone());
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }
    let v = replicas[0].app().value();
    for r in &replicas {
        assert_eq!(r.app().value(), v);
    }
    v
}

fn run_hybrid(increments: u64) -> u64 {
    let config = HybridConfig::new(3).unwrap();
    let mut replicas: Vec<HybridReplica<CounterApp, Usig>> = (0..3u32)
        .map(|i| {
            HybridReplica::new(
                config.clone(),
                ReplicaId(i),
                SEED,
                Usig::new(SEED, ReplicaId(i)),
                CounterApp::new(),
            )
        })
        .collect();
    let mut queues: Vec<VecDeque<splitbft::hybrid::HybridMessage>> =
        (0..3).map(|_| VecDeque::new()).collect();
    for ts in 1..=increments {
        let req = make_request(SEED, ClientId(0), Timestamp(ts), Bytes::from_static(b"inc"));
        let actions = replicas[0].on_client_batch(vec![req]);
        for a in actions {
            if let HybridAction::Broadcast(m) = a {
                for (j, q) in queues.iter_mut().enumerate() {
                    if j != 0 {
                        q.push_back(m.clone());
                    }
                }
            }
        }
        loop {
            let mut progressed = false;
            for i in 0..3 {
                while let Some(m) = queues[i].pop_front() {
                    progressed = true;
                    for a in replicas[i].on_message(m).unwrap_or_default() {
                        if let HybridAction::Broadcast(m2) = a {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(m2.clone());
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }
    let v = replicas[0].app().value();
    for r in &replicas {
        assert_eq!(r.app().value(), v);
    }
    v
}

#[test]
fn all_three_systems_compute_the_same_state() {
    assert_eq!(run_splitbft(7), 7);
    assert_eq!(run_pbft(7), 7);
    assert_eq!(run_hybrid(7), 7);
}

#[test]
fn fault_model_ordering_matches_table_1() {
    // In-model scenarios hold for every system; beyond-model scenarios
    // break exactly where the paper's Table 1 says they do.
    for s in Scenario::ALL {
        let verdict = run_scenario(s, 99);
        assert_eq!(verdict.safety_held, s.expected_safe(), "{s:?}: {}", verdict.detail);
    }
}

#[test]
fn hybrid_client_completes_against_hybrid_cluster() {
    let config = HybridConfig::new(3).unwrap();
    let mut replicas: Vec<HybridReplica<CounterApp, Usig>> = (0..3u32)
        .map(|i| {
            HybridReplica::new(
                config.clone(),
                ReplicaId(i),
                SEED,
                Usig::new(SEED, ReplicaId(i)),
                CounterApp::new(),
            )
        })
        .collect();
    let mut client = HybridClient::new(config, ClientId(0), SEED);
    let request = client.issue(Bytes::from_static(b"inc"));

    let mut replies = Vec::new();
    let actions = replicas[0].on_client_batch(vec![request]);
    let mut queues: Vec<VecDeque<splitbft::hybrid::HybridMessage>> =
        (0..3).map(|_| VecDeque::new()).collect();
    for a in actions {
        match a {
            HybridAction::Broadcast(m) => {
                queues[1].push_back(m.clone());
                queues[2].push_back(m);
            }
            HybridAction::SendReply { reply, .. } => replies.push(reply),
            _ => {}
        }
    }
    loop {
        let mut progressed = false;
        for i in 0..3 {
            while let Some(m) = queues[i].pop_front() {
                progressed = true;
                for a in replicas[i].on_message(m).unwrap_or_default() {
                    match a {
                        HybridAction::Broadcast(m2) => {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(m2.clone());
                                }
                            }
                        }
                        HybridAction::SendReply { reply, .. } => replies.push(reply),
                        _ => {}
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let mut completed = false;
    for reply in &replies {
        if let HybridClientEvent::Completed(result) = client.on_reply(reply) {
            assert_eq!(&result[..], &1u64.to_le_bytes());
            completed = true;
            break;
        }
    }
    assert!(completed, "got {} replies", replies.len());
}
