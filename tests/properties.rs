//! Property-based tests over the cross-crate invariants: wire-codec
//! round-trips for arbitrary messages, cryptographic soundness,
//! application determinism, and cost-model monotonicity.

use bytes::Bytes;
use proptest::prelude::*;
use splitbft::app::{Application, KeyValueStore, KvOp};
use splitbft::crypto::{client_mac_key, digest_of, KeyPair};
use splitbft::tee::CostModel;
use splitbft::types::wire::{decode, encode};
use splitbft::types::{
    ClientId, Digest, Prepare, PrePrepare, ReplicaId, Request, RequestBatch, RequestId, SeqNum,
    SignerId, Timestamp, View,
};
use std::collections::BTreeMap;

fn arb_request() -> impl Strategy<Value = Request> {
    (0u32..100, 0u64..1_000, proptest::collection::vec(any::<u8>(), 0..64), any::<bool>(), any::<[u8; 32]>())
        .prop_map(|(client, ts, op, encrypted, auth)| Request {
            id: RequestId { client: ClientId(client), timestamp: Timestamp(ts) },
            op: Bytes::from(op),
            encrypted,
            auth,
        })
}

fn arb_pre_prepare() -> impl Strategy<Value = PrePrepare> {
    (0u64..10, 1u64..1_000, any::<[u8; 32]>(), proptest::collection::vec(arb_request(), 0..5))
        .prop_map(|(view, seq, digest, requests)| PrePrepare {
            view: View(view),
            seq: SeqNum(seq),
            digest: Digest::from_bytes(digest),
            batch: RequestBatch::new(requests),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_wire_roundtrip(req in arb_request()) {
        let bytes = encode(&req);
        let back: Request = decode(&bytes).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn pre_prepare_wire_roundtrip(pp in arb_pre_prepare()) {
        let bytes = encode(&pp);
        let back: PrePrepare = decode(&bytes).unwrap();
        prop_assert_eq!(back, pp);
    }

    #[test]
    fn truncated_messages_never_panic(pp in arb_pre_prepare(), cut in 0usize..64) {
        let bytes = encode(&pp);
        let cut = cut.min(bytes.len());
        // Decoding any prefix either fails cleanly or (full prefix)
        // succeeds — it must never panic.
        let _ = decode::<PrePrepare>(&bytes[..bytes.len() - cut]);
    }

    #[test]
    fn digest_is_injective_on_batches(a in arb_pre_prepare(), b in arb_pre_prepare()) {
        // Canonical encoding: equal batches hash equal, different
        // batches (virtually always) hash different.
        if a.batch == b.batch {
            prop_assert_eq!(digest_of(&a.batch), digest_of(&b.batch));
        } else {
            prop_assert_ne!(digest_of(&a.batch), digest_of(&b.batch));
        }
    }

    #[test]
    fn signatures_bind_message_and_signer(seed in 0u64..1_000, msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let kp = KeyPair::from_seed(seed);
        let other = KeyPair::from_seed(seed + 1);
        let sig = kp.sign(&msg);
        prop_assert!(KeyPair::verify(&kp.public_key(), &msg, &sig));
        prop_assert!(!KeyPair::verify(&other.public_key(), &msg, &sig));
        let mut tampered = msg.clone();
        tampered.push(0);
        prop_assert!(!KeyPair::verify(&kp.public_key(), &tampered, &sig));
    }

    #[test]
    fn client_macs_are_client_specific(seed in 0u64..100, a in 0u32..50, b in 0u32..50, data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let key_a = client_mac_key(seed, ClientId(a));
        let key_b = client_mac_key(seed, ClientId(b));
        let tag = key_a.tag(&data);
        prop_assert!(key_a.verify(&data, &tag));
        if a != b {
            prop_assert!(!key_b.verify(&data, &tag));
        }
    }

    #[test]
    fn kvs_matches_model_map(ops in proptest::collection::vec(
        (0u8..3, proptest::collection::vec(any::<u8>(), 1..8), proptest::collection::vec(any::<u8>(), 0..8)),
        1..50,
    )) {
        // The replicated KVS agrees with a plain BTreeMap on every
        // operation sequence (determinism/linearizability in the
        // sequential case).
        let mut kvs = KeyValueStore::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (kind, key, value) in ops {
            match kind {
                0 => {
                    let expect = model.insert(key.clone(), value.clone()).unwrap_or_default();
                    let got = kvs.execute(&KvOp::put(&key, &value).encode_op());
                    prop_assert_eq!(&got[..], &expect[..]);
                }
                1 => {
                    let expect = model.get(&key).cloned().unwrap_or_default();
                    let got = kvs.execute(&KvOp::get(&key).encode_op());
                    prop_assert_eq!(&got[..], &expect[..]);
                }
                _ => {
                    let expect = model.remove(&key).unwrap_or_default();
                    let got = kvs.execute(&KvOp::delete(&key).encode_op());
                    prop_assert_eq!(&got[..], &expect[..]);
                }
            }
        }
        prop_assert_eq!(kvs.len(), model.len());
    }

    #[test]
    fn kvs_snapshot_restore_identity(ops in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 1..8), proptest::collection::vec(any::<u8>(), 0..8)),
        0..30,
    )) {
        let mut kvs = KeyValueStore::new();
        for (k, v) in &ops {
            kvs.execute(&KvOp::put(k, v).encode_op());
        }
        let mut restored = KeyValueStore::new();
        restored.restore(&kvs.snapshot()).unwrap();
        prop_assert_eq!(restored.state_digest(), kvs.state_digest());
    }

    #[test]
    fn cost_model_is_monotone_in_bytes(a in 0usize..100_000, b in 0usize..100_000) {
        let m = CostModel::paper_calibrated();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.ecall_boundary_ns(lo, 0) <= m.ecall_boundary_ns(hi, 0));
        prop_assert!(m.hmac_ns(lo) <= m.hmac_ns(hi));
        prop_assert!(m.net_delay_ns(lo) <= m.net_delay_ns(hi));
    }

    #[test]
    fn seal_open_roundtrip_any_payload(key in any::<[u8;32]>(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let k = splitbft::crypto::AeadKey::new(&key);
        let sealed = splitbft::crypto::seal(&k, nonce, b"ctx", &data);
        let opened = splitbft::crypto::open(&k, nonce, b"ctx", &sealed).unwrap();
        prop_assert_eq!(opened, data);
    }

    #[test]
    fn signed_prepare_verification_is_scheme_bound(seed in 0u64..100, r in 0u32..4) {
        // A prepare signed by a replica identity never verifies as an
        // enclave identity and vice versa.
        use splitbft::crypto::KeyRegistry;
        let replica_signer = SignerId::Replica(ReplicaId(r));
        let enclave_signer = splitbft::core::enclave_signer(
            ReplicaId(r),
            splitbft::types::CompartmentKind::Preparation,
        );
        let registry = KeyRegistry::with_signers(seed, [replica_signer, enclave_signer]);
        let payload = Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            replica: ReplicaId(r),
        };
        let kp = KeyPair::for_signer(seed, replica_signer);
        let mut signed = kp.sign_payload(payload, replica_signer);
        prop_assert!(registry.verify_signed(&signed).is_ok());
        signed.signer = enclave_signer;
        prop_assert!(registry.verify_signed(&signed).is_err());
    }
}
