//! # SplitBFT
//!
//! A from-scratch Rust reproduction of *SplitBFT: Improving Byzantine
//! Fault Tolerance Safety Using Trusted Compartments* (Messadi, Becker,
//! Bleeke, Jehl, Ben Mokhtar, Kapitza — MIDDLEWARE 2022).
//!
//! SplitBFT splits PBFT's core logic into three compartments —
//! Preparation, Confirmation, Execution — each hosted in its own trusted
//! enclave on every replica, so that safety survives an attacker on the
//! environment of *all n* machines plus up to `f` byzantine enclaves per
//! compartment type, and client operations stay confidential end-to-end.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `splitbft-types` | ids, messages, wire codec, configuration |
//! | [`crypto`] | `splitbft-crypto` | SHA-256, HMAC, signatures, AEAD, keys |
//! | [`tee`] | `splitbft-tee` | simulated SGX: enclaves, sealing, attestation, cost model |
//! | [`net`] | `splitbft-net` | link models, threaded + TCP cluster runtimes, `Protocol` trait |
//! | [`app`] | `splitbft-app` | key-value store and blockchain applications |
//! | [`pbft`] | `splitbft-pbft` | the complete PBFT baseline |
//! | [`hybrid`] | `splitbft-hybrid` | MinBFT-style trusted-counter baseline |
//! | [`core`] | `splitbft-core` | **SplitBFT itself**: compartments, broker, client |
//! | [`sim`] | `splitbft-sim` | discrete-event simulator (Figures 3 & 4) |
//! | [`model`] | `splitbft-model` | safety explorer and fault-model scenarios |
//!
//! # Quickstart
//!
//! ```
//! use splitbft::prelude::*;
//!
//! // A 4-replica SplitBFT cluster replicating a key-value store.
//! let config = ClusterConfig::new(4).unwrap();
//! let replica = SplitBftReplica::new(
//!     config,
//!     ReplicaId(0),
//!     42,
//!     KeyValueStore::new(),
//!     ExecMode::Hardware,
//!     CostModel::paper_calibrated(),
//! );
//! assert_eq!(replica.id(), ReplicaId(0));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use splitbft_app as app;
pub use splitbft_core as core;
pub use splitbft_crypto as crypto;
pub use splitbft_hybrid as hybrid;
pub use splitbft_model as model;
pub use splitbft_net as net;
pub use splitbft_pbft as pbft;
pub use splitbft_sim as sim;
pub use splitbft_tee as tee;
pub use splitbft_types as types;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use splitbft_app::{Application, Blockchain, CounterApp, KeyValueStore, KvOp};
    pub use splitbft_core::{
        ReplicaEvent, SplitBftClient, SplitBftReplica, SplitClientEvent,
    };
    pub use splitbft_hybrid::{HybridClient, HybridClientEvent, HybridConfig, HybridReplica, Usig};
    pub use splitbft_net::{
        BatchPolicy, PeerAddr, Protocol, ProtocolOutput, TcpClient, TcpNode, TcpNodeConfig,
        ThreadedCluster,
    };
    pub use splitbft_pbft::{make_request, PbftClient, Replica as PbftReplica};
    pub use splitbft_tee::{CostModel, ExecMode, FaultKind, FaultPlan, PlatformAuthority};
    pub use splitbft_types::{
        ClientId, ClusterConfig, CompartmentKind, ReplicaId, SeqNum, Timestamp, View,
    };
}
