//! Glue between the protocol cores and the threaded cluster runtime —
//! lets examples run live SplitBFT / PBFT clusters on OS threads.

use splitbft_app::Application;
use splitbft_core::{ReplicaEvent, SplitBftReplica};
use splitbft_net::runtime::{NodeInput, NodeLogic, NodeOutput};
use splitbft_pbft::{Action, Replica as PbftReplica};

/// A SplitBFT replica hosted on a cluster thread.
pub struct SplitBftNodeLogic<A: Application> {
    replica: SplitBftReplica<A>,
}

impl<A: Application> SplitBftNodeLogic<A> {
    /// Wraps a replica.
    pub fn new(replica: SplitBftReplica<A>) -> Self {
        SplitBftNodeLogic { replica }
    }
}

impl<A: Application + 'static> NodeLogic for SplitBftNodeLogic<A> {
    fn handle(&mut self, input: NodeInput) -> Vec<NodeOutput> {
        let events = match input {
            NodeInput::Message(msg) => self.replica.on_network_message(msg),
            NodeInput::ClientRequests(requests) => self.replica.on_client_batch(requests),
            NodeInput::ViewTimeout => self.replica.on_view_timeout(),
            NodeInput::Shutdown => Vec::new(),
        };
        events
            .into_iter()
            .filter_map(|event| match event {
                ReplicaEvent::Broadcast(msg) => Some(NodeOutput::Broadcast(msg)),
                ReplicaEvent::Reply { to, reply } => Some(NodeOutput::Reply { to, reply }),
                _ => None,
            })
            .collect()
    }
}

/// A PBFT baseline replica hosted on a cluster thread.
pub struct PbftNodeLogic<A: Application> {
    replica: PbftReplica<A>,
}

impl<A: Application> PbftNodeLogic<A> {
    /// Wraps a replica.
    pub fn new(replica: PbftReplica<A>) -> Self {
        PbftNodeLogic { replica }
    }
}

impl<A: Application + 'static> NodeLogic for PbftNodeLogic<A> {
    fn handle(&mut self, input: NodeInput) -> Vec<NodeOutput> {
        let actions = match input {
            NodeInput::Message(msg) => self.replica.on_message(msg).unwrap_or_default(),
            NodeInput::ClientRequests(requests) => self.replica.on_client_batch(requests),
            NodeInput::ViewTimeout => self.replica.on_view_timeout(),
            NodeInput::Shutdown => Vec::new(),
        };
        actions
            .into_iter()
            .filter_map(|action| match action {
                Action::Broadcast { msg } => Some(NodeOutput::Broadcast(msg)),
                Action::SendReply { to, reply } => Some(NodeOutput::Reply { to, reply }),
                _ => None,
            })
            .collect()
    }
}
