//! Socket cluster walkthrough: a 4-replica SplitBFT deployment over real
//! localhost TCP connections, inside one process for convenience.
//!
//! ```sh
//! cargo run --example socket_cluster
//! ```
//!
//! The in-process [`ThreadedCluster`] examples exchange messages over
//! channels; here every replica owns a real listener, peers connect over
//! TCP, and every protocol message crosses a socket as a length-prefixed
//! frame — the same path the `splitbft-node` binary uses when the four
//! replicas are four separate processes (or VMs, as deployed in the
//! paper). See `docs/ARCHITECTURE.md` for the layer diagram.

use splitbft::prelude::*;
use std::time::Duration;

const MASTER_SEED: u64 = 42;

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    println!("Starting a {}-replica SplitBFT cluster over TCP…", config.n());

    // Step 1: reserve a listener per replica. Binding first and starting
    // second lets the OS pick free ports while every node still learns
    // the complete address book before any traffic flows.
    let bound: Vec<_> = (0..config.n())
        .map(|i| {
            splitbft::net::TcpNode::bind(ReplicaId(i as u32), "127.0.0.1:0".parse().unwrap())
                .expect("bind listener")
        })
        .collect();
    let peers: Vec<PeerAddr> = bound
        .iter()
        .map(|b| PeerAddr { id: b.id(), addr: b.local_addr().expect("addr") })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = peers.iter().map(|p| p.addr).collect();
    for peer in &peers {
        println!("  replica {} listens on {}", peer.id.0, peer.addr);
    }

    // Step 2: start the nodes. Each one spawns an accept loop, one
    // reconnecting outbox per peer (batching message bursts into single
    // writes), and a core thread that owns the replica state machine —
    // here a full SplitBFT broker with its three compartments.
    let nodes: Vec<TcpNode> = bound
        .into_iter()
        .map(|b| {
            let id = b.id();
            let node_config =
                TcpNodeConfig::new(id, "127.0.0.1:0".parse().unwrap(), peers.clone());
            b.start(
                node_config,
                SplitBftReplica::new(
                    ClusterConfig::new(4).unwrap(),
                    id,
                    MASTER_SEED,
                    KeyValueStore::new(),
                    ExecMode::Hardware,
                    CostModel::paper_calibrated(),
                ),
            )
            .expect("start node")
        })
        .collect();

    // Step 3: connect a client. The TCP client dials *every* replica —
    // replies must come from f + 1 distinct replicas to count — while
    // the protocol client (`SplitBftClient`) owns request authentication
    // and the reply-quorum rule.
    let mut protocol_client =
        SplitBftClient::new(config.clone(), ClientId(1), MASTER_SEED, 7).with_plaintext();
    let mut tcp = TcpClient::connect(ClientId(1), &addrs, Duration::from_secs(10))
        .expect("connect client");

    let ops: Vec<(&str, bytes::Bytes)> = vec![
        ("PUT city=Braunschweig", KvOp::put(b"city", b"Braunschweig").encode_op()),
        ("PUT proto=SplitBFT", KvOp::put(b"proto", b"SplitBFT").encode_op()),
        ("GET city", KvOp::get(b"city").encode_op()),
        ("DELETE proto", KvOp::delete(b"proto").encode_op()),
        ("GET proto", KvOp::get(b"proto").encode_op()),
    ];

    for (label, op) in ops {
        // Requests go to the view-0 primary (replica 0). From there the
        // Preparation compartments order the batch, Confirmation
        // certifies it, and Execution runs it and replies — all across
        // sockets.
        let request = protocol_client.issue(&op);
        tcp.send_to(0, &[request]).expect("send request");

        let result = loop {
            let reply = tcp
                .replies()
                .recv_timeout(Duration::from_secs(10))
                .expect("reply before timeout");
            if let SplitClientEvent::Completed(result) = protocol_client.on_reply(&reply) {
                break result;
            }
        };
        println!("  {label:24} -> {:?}", String::from_utf8_lossy(&result));
    }

    println!("All operations agreed over TCP. Shutting down.");
    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}
