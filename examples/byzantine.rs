//! Byzantine enclaves in action: arm one faulty enclave of each
//! compartment type on three different replicas (the paper's Figure 1
//! scenario) and watch the cluster stay both safe and live; then push
//! past the fault model and watch the safety checker catch the
//! violation.
//!
//! ```sh
//! cargo run --example byzantine
//! ```

use splitbft::model::{run_scenario, Scenario};
use splitbft::prelude::*;
use splitbft::types::ConsensusMessage;
use std::collections::VecDeque;

const MASTER_SEED: u64 = 404;

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    let mut replicas: Vec<SplitBftReplica<CounterApp>> = (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                config.clone(),
                ReplicaId(i),
                MASTER_SEED,
                CounterApp::new(),
                ExecMode::Hardware,
                CostModel::paper_calibrated(),
            )
        })
        .collect();

    println!("Arming faults (one enclave per compartment type, different replicas):");
    println!("  r1 Preparation  -> mute (drops all its outputs)");
    println!("  r2 Confirmation -> corrupt (flips bits in every ocall)");
    println!("  r3 Execution    -> dead (swallows every ecall)\n");
    replicas[1].arm_fault(CompartmentKind::Preparation, FaultPlan::immediate(FaultKind::MuteOcalls));
    replicas[2].arm_fault(
        CompartmentKind::Confirmation,
        FaultPlan::immediate(FaultKind::CorruptOcalls { xor: 0x5A }),
    );
    replicas[3].arm_fault(CompartmentKind::Execution, FaultPlan::immediate(FaultKind::DropEcalls));

    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    for ts in 1..=5u64 {
        let request =
            make_request(MASTER_SEED, ClientId(0), Timestamp(ts), bytes::Bytes::from_static(b"inc"));
        let events = replicas[0].on_client_batch(vec![request]);
        for event in events {
            if let ReplicaEvent::Broadcast(msg) = event {
                for (j, q) in queues.iter_mut().enumerate() {
                    if j != 0 {
                        q.push_back(msg.clone());
                    }
                }
            }
        }
        loop {
            let mut progressed = false;
            for i in 0..4 {
                while let Some(msg) = queues[i].pop_front() {
                    progressed = true;
                    for event in replicas[i].on_network_message(msg) {
                        if let ReplicaEvent::Broadcast(m) = event {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(m.clone());
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    println!("After 5 requests:");
    for r in &replicas {
        println!("  {}: counter = {}", r.id(), r.app().value());
    }
    assert!(replicas[0].app().value() == 5 && replicas[1].app().value() == 5 && replicas[2].app().value() == 5);
    println!("\nReplicas with healthy Execution enclaves executed everything —");
    println!("three byzantine enclaves (one per type) could not stop or split the cluster.\n");

    println!("Now exceeding the fault model via the safety explorer:");
    for scenario in [Scenario::SplitBftFEnclavesPerType, Scenario::SplitBftBeyondModel] {
        let verdict = run_scenario(scenario, 7);
        println!(
            "  {:52} -> {}",
            scenario.describe(),
            if verdict.safety_held { "SAFE" } else { "SAFETY VIOLATED (as the model predicts)" }
        );
    }
}
