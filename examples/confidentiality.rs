//! The confidential client path: attest the Execution enclaves, install
//! a session key, submit encrypted operations — and verify the untrusted
//! environment never observes the plaintext.
//!
//! ```sh
//! cargo run --example confidentiality
//! ```

use splitbft::prelude::*;
use splitbft::types::wire::encode;
use splitbft::types::ConsensusMessage;
use std::collections::VecDeque;

const MASTER_SEED: u64 = 2022;
const SECRET: &[u8] = b"diagnosis: classified";

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    let authority = PlatformAuthority::from_seed(9);
    let mut replicas: Vec<SplitBftReplica<KeyValueStore>> = (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                config.clone(),
                ReplicaId(i),
                MASTER_SEED,
                KeyValueStore::new(),
                ExecMode::Hardware,
                CostModel::paper_calibrated(),
            )
        })
        .collect();

    // 1) Attestation: the client verifies each Execution enclave's quote
    //    against the platform authority before trusting it with a key.
    let mut client = SplitBftClient::new(config.clone(), ClientId(3), MASTER_SEED, 555);
    println!("Attesting the 4 Execution enclaves…");
    for replica in &mut replicas {
        let quote = replica.attestation_quote(&authority);
        let (dh_public, wrapped_key) = client
            .attest_execution_enclave(&authority.public_key(), &quote)
            .expect("genuine Execution enclave");
        replica.install_session_key(ClientId(3), dh_public, wrapped_key);
    }
    println!("Session key installed in all Execution enclaves.\n");

    // 2) Submit an encrypted PUT carrying the secret.
    let request = client.issue(&KvOp::put(b"patient-7", SECRET).encode_op());
    println!("Request on the wire is ciphertext: {} bytes, encrypted = {}", request.op.len(), request.encrypted);
    let wire = encode(&request);
    let leaked = wire.windows(SECRET.len()).any(|w| w == SECRET);
    println!("Secret visible in the serialized request: {leaked}");
    assert!(!leaked);

    // 3) Order it through the cluster, watching every byte that crosses
    //    the (untrusted) network.
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    let mut observed_on_wire = 0usize;
    let mut secret_sightings = 0usize;
    let mut replies = Vec::new();

    let events = replicas[0].on_client_batch(vec![request]);
    let fanout = |from: usize,
                      events: Vec<ReplicaEvent>,
                      queues: &mut Vec<VecDeque<ConsensusMessage>>,
                      replies: &mut Vec<splitbft::types::Reply>,
                      observed: &mut usize,
                      sightings: &mut usize| {
        for event in events {
            match event {
                ReplicaEvent::Broadcast(msg) => {
                    let bytes = encode(&msg);
                    *observed += bytes.len();
                    *sightings += usize::from(bytes.windows(SECRET.len()).any(|w| w == SECRET));
                    for (j, q) in queues.iter_mut().enumerate() {
                        if j != from {
                            q.push_back(msg.clone());
                        }
                    }
                }
                ReplicaEvent::Reply { reply, .. } => {
                    let bytes = encode(&reply);
                    *sightings += usize::from(bytes.windows(SECRET.len()).any(|w| w == SECRET));
                    replies.push(reply);
                }
                _ => {}
            }
        }
    };
    fanout(0, events, &mut queues, &mut replies, &mut observed_on_wire, &mut secret_sightings);
    loop {
        let mut progressed = false;
        for i in 0..4 {
            while let Some(msg) = queues[i].pop_front() {
                progressed = true;
                let events = replicas[i].on_network_message(msg);
                fanout(i, events, &mut queues, &mut replies, &mut observed_on_wire, &mut secret_sightings);
            }
        }
        if !progressed {
            break;
        }
    }

    println!("\nAgreement traffic inspected: {observed_on_wire} bytes across all links");
    println!("Plaintext sightings outside the enclaves: {secret_sightings}");
    assert_eq!(secret_sightings, 0, "confidentiality breach!");

    // 4) The client — and only the client — recovers the result.
    let mut completed = false;
    for reply in &replies {
        if let SplitClientEvent::Completed(result) = client.on_reply(reply) {
            println!("Client decrypted its result ({} bytes): PUT accepted.", result.len());
            completed = true;
            break;
        }
    }
    assert!(completed);
    println!("\nConfidentiality held: the secret existed in plaintext only inside");
    println!("the Execution enclaves and at the client.");
}
