//! SplitBFT as the ordering service of a permissioned blockchain — the
//! paper's Blockchain-as-a-Service scenario. Transactions are totally
//! ordered by the compartmentalized agreement; every five form a block
//! that the Execution enclave seals before handing it to untrusted
//! storage.
//!
//! ```sh
//! cargo run --example blockchain
//! ```

use splitbft::prelude::*;
use splitbft::types::ConsensusMessage;
use splitbft::types::wire::decode;
use splitbft_app::blockchain::Block;
use std::collections::VecDeque;

const MASTER_SEED: u64 = 77;

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    println!("SplitBFT ordering service, {} replicas, blocks of 5 transactions\n", config.n());

    // Deterministic in-process pump (same protocol code as the threaded
    // runtime; easier to interleave with inspection).
    let mut replicas: Vec<SplitBftReplica<Blockchain>> = (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                config.clone(),
                ReplicaId(i),
                MASTER_SEED,
                Blockchain::new(),
                ExecMode::Hardware,
                CostModel::paper_calibrated(),
            )
        })
        .collect();
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    let mut sealed_blocks: Vec<bytes::Bytes> = Vec::new();

    let pump = |replicas: &mut Vec<SplitBftReplica<Blockchain>>,
                    queues: &mut Vec<VecDeque<ConsensusMessage>>,
                    sealed: &mut Vec<bytes::Bytes>| loop {
        let mut progressed = false;
        for i in 0..4 {
            while let Some(msg) = queues[i].pop_front() {
                progressed = true;
                for event in replicas[i].on_network_message(msg) {
                    match event {
                        ReplicaEvent::Broadcast(m) => {
                            for (j, q) in queues.iter_mut().enumerate() {
                                if j != i {
                                    q.push_back(m.clone());
                                }
                            }
                        }
                        ReplicaEvent::Persist(blob) if i == 0 => sealed.push(blob),
                        _ => {}
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    };

    // Submit 12 transactions: 2 full blocks + 2 pending.
    for tx in 0..12u64 {
        let payload = format!("transfer#{tx:02}");
        let request = make_request(
            MASTER_SEED,
            ClientId(0),
            Timestamp(tx + 1),
            bytes::Bytes::from(payload.into_bytes()),
        );
        let events = replicas[0].on_client_batch(vec![request]);
        for event in events {
            match event {
                ReplicaEvent::Broadcast(m) => {
                    for (j, q) in queues.iter_mut().enumerate() {
                        if j != 0 {
                            q.push_back(m.clone());
                        }
                    }
                }
                ReplicaEvent::Persist(blob) => sealed_blocks.push(blob),
                _ => {}
            }
        }
        pump(&mut replicas, &mut queues, &mut sealed_blocks);
    }

    println!("Chain state per replica:");
    for r in &replicas {
        println!(
            "  {}: height {} | head {} | pending {}",
            r.id(),
            r.app().height(),
            r.app().head().short(),
            r.app().pending_len()
        );
    }

    println!("\nSealed blocks persisted by replica 0's Execution enclave: {}", sealed_blocks.len());
    for (i, blob) in sealed_blocks.iter().enumerate() {
        // The environment sees only ciphertext — it cannot decode a Block.
        let as_block: Result<Block, _> = decode(blob);
        println!(
            "  block #{i}: {} bytes, decodable by the environment: {}",
            blob.len(),
            as_block.is_ok()
        );
    }
    println!("\nThe chain heads match on every replica: byzantine agreement over blocks.");
}
