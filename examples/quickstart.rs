//! Quickstart: a live 4-replica SplitBFT cluster replicating a key-value
//! store, with a client doing authenticated PUT/GET round-trips.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use splitbft::prelude::*;
use std::time::Duration;

const MASTER_SEED: u64 = 42;

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    println!("Spawning a {}-replica SplitBFT cluster (f = {})…", config.n(), config.f());

    // Each replica hosts three enclaves (Preparation / Confirmation /
    // Execution) behind an untrusted broker, here one replica per thread.
    let cluster = ThreadedCluster::spawn(config.n(), |id| {
        SplitBftReplica::new(
            ClusterConfig::new(4).unwrap(),
            id,
            MASTER_SEED,
            KeyValueStore::new(),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        )
    });

    // A plaintext-mode client (see the `confidentiality` example for the
    // encrypted path with attestation).
    let mut client =
        SplitBftClient::new(config.clone(), ClientId(1), MASTER_SEED, 7).with_plaintext();

    let ops: Vec<(&str, bytes::Bytes)> = vec![
        ("PUT city=Braunschweig", KvOp::put(b"city", b"Braunschweig").encode_op()),
        ("PUT proto=SplitBFT", KvOp::put(b"proto", b"SplitBFT").encode_op()),
        ("GET city", KvOp::get(b"city").encode_op()),
        ("DELETE proto", KvOp::delete(b"proto").encode_op()),
        ("GET proto", KvOp::get(b"proto").encode_op()),
    ];

    for (label, op) in ops {
        let request = client.issue(&op);
        // Clients send to the current primary (replica 0 in view 0).
        cluster.submit(ReplicaId(0), vec![request]);

        // Collect replies until f + 1 match.
        let result = loop {
            let (to, reply) = cluster
                .replies()
                .recv_timeout(Duration::from_secs(10))
                .expect("cluster replies");
            if to != client.id() {
                continue;
            }
            if let SplitClientEvent::Completed(result) = client.on_reply(&reply) {
                break result;
            }
        };
        println!("  {label:24} -> {:?}", String::from_utf8_lossy(&result));
    }

    println!("All operations agreed by a byzantine quorum. Shutting down.");
    cluster.shutdown();
}
