//! Crash the primary and watch all three compartments of every surviving
//! replica move to the next view, elect the new primary, and keep
//! serving requests.
//!
//! ```sh
//! cargo run --example view_change
//! ```

use splitbft::prelude::*;
use splitbft::types::ConsensusMessage;
use std::collections::VecDeque;

const MASTER_SEED: u64 = 11;

struct Harness {
    replicas: Vec<SplitBftReplica<CounterApp>>,
    queues: Vec<VecDeque<ConsensusMessage>>,
    down: Vec<bool>,
}

impl Harness {
    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.replicas.len() {
                if self.down[i] {
                    self.queues[i].clear();
                    continue;
                }
                while let Some(msg) = self.queues[i].pop_front() {
                    progressed = true;
                    let events = self.replicas[i].on_network_message(msg);
                    self.route(i, events);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn route(&mut self, from: usize, events: Vec<ReplicaEvent>) {
        for event in events {
            if let ReplicaEvent::Broadcast(msg) = event {
                for (j, q) in self.queues.iter_mut().enumerate() {
                    if j != from && !self.down[j] {
                        q.push_back(msg.clone());
                    }
                }
            }
        }
    }
}

fn main() {
    let config = ClusterConfig::new(4).expect("4 replicas");
    let mut harness = Harness {
        replicas: (0..4u32)
            .map(|i| {
                SplitBftReplica::new(
                    config.clone(),
                    ReplicaId(i),
                    MASTER_SEED,
                    CounterApp::new(),
                    ExecMode::Hardware,
                    CostModel::paper_calibrated(),
                )
            })
            .collect(),
        queues: (0..4).map(|_| VecDeque::new()).collect(),
        down: vec![false; 4],
    };

    // Normal operation under primary r0.
    println!("View 0, primary r0: ordering one request…");
    let request = make_request(MASTER_SEED, ClientId(0), Timestamp(1), bytes::Bytes::from_static(b"inc"));
    let events = harness.replicas[0].on_client_batch(vec![request]);
    harness.route(0, events);
    harness.pump();
    for r in &harness.replicas {
        println!("  {}: counter = {}, views (prep/conf/exec) = {:?}", r.id(), r.app().value(), r.views());
    }

    // The primary's machine dies.
    println!("\n*** replica 0 (the primary) crashes ***\n");
    harness.down[0] = true;

    // The environments' request timers expire: each surviving replica's
    // Confirmation enclave votes for a view change (timers are untrusted
    // liveness logic, per principle P1).
    println!("Timers expire; Confirmation enclaves send ViewChange for view 1…");
    for i in 1..4 {
        let events = harness.replicas[i].on_view_timeout();
        harness.route(i, events);
    }
    harness.pump();

    for i in 1..4 {
        let r = &harness.replicas[i];
        let (prep, conf, exec) = r.views();
        println!("  {}: views prep={prep} conf={conf} exec={exec}", r.id());
        assert_eq!(conf, View(1));
    }

    // The new primary (r1) serves clients.
    println!("\nView 1, primary r1: ordering the next request…");
    let request = make_request(MASTER_SEED, ClientId(0), Timestamp(2), bytes::Bytes::from_static(b"inc"));
    let events = harness.replicas[1].on_client_batch(vec![request]);
    harness.route(1, events);
    harness.pump();
    for i in 1..4 {
        let r = &harness.replicas[i];
        println!("  {}: counter = {}", r.id(), r.app().value());
        assert_eq!(r.app().value(), 2);
    }
    println!("\nThe cluster survived the primary failure: liveness restored in view 1,");
    println!("no execution lost or duplicated.");
}
