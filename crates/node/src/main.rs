//! `splitbft-node` — deployable replica / client binary.
//!
//! ```text
//! splitbft-node serve  --config cluster.toml --replica 0 [--protocol pbft|splitbft|minbft]
//! splitbft-node client --config cluster.toml [--protocol ...] [--client 1]
//!                      [--op inc] [--requests 5] [--timeout-secs 30]
//! splitbft-node bench  --protocol splitbft --clients 8 --pipeline 4 --duration 5s
//! splitbft-node bench  --compare --sweep-batch-frames 1,64 --out bench-out
//! ```
//!
//! `serve` hosts one replica of the cluster over the framed TCP
//! transport and runs until killed. `client` drives sequential requests
//! at the view-0 primary and prints each agreed result. `bench`
//! measures a cluster — self-orchestrated on localhost, or an existing
//! `--config` deployment — and writes `BENCH_<name>.json` reports (see
//! the `splitbft_node::bench` module docs). See `docs/ARCHITECTURE.md`
//! and the crate docs of `splitbft_node` for the cluster-file format.

use splitbft_node::{
    apply_batch_flags, apply_durability_flags, bench, chaos, cli_flag as flag,
    parse_cluster_toml, run_client, run_replica, ClusterFile, NodeOptions, ProtocolKind,
};
use splitbft_obs::MetricsServer;
use splitbft_types::{ClientId, ReplicaId};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the `SIGTERM` handler; the serve loop polls it and turns the
/// signal into a graceful drain (stop admitting requests, finish
/// in-flight batches, seal a checkpoint, flush the WAL, exit 0).
static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // Async-signal-safe: one relaxed store, nothing else.
    TERMINATE.store(true, Ordering::Relaxed);
}

/// Installs the `SIGTERM` handler via the libc `signal(2)` entry point.
/// The workspace has no `libc` crate, so the binary declares the symbol
/// itself; this is the only unsafe-adjacent code in the repo and it
/// lives in the binary, outside every `#![forbid(unsafe_code)]` crate.
fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("bench") => run_to_exit(bench::run(&args[1..]).map(|_| ())),
        Some("chaos") => run_to_exit(chaos::run(&args[1..]).map(|_| ())),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
splitbft-node — run a PBFT / SplitBFT / MinBFT replica, client, bench, or chaos run over TCP

USAGE:
    splitbft-node serve  --config <cluster.toml> --replica <id> [--protocol <p>]
                         [--byzantine equivocating-primary|silent-backup|corrupt-mac]
                         [--data-dir <dir>] [--wal-group-commit-us <us>]
                         [--timeout-ms <ms>] [--batch-frames <n>]
                         [--batch-bytes <n>] [--batch-linger-us <us>]
                         [--shards <n>] [--transport blocking|evented]
                         [--enable-fault-injection] [--enable-status-admin]
                         [--metrics-addr <host:port>]
    splitbft-node client --config <cluster.toml> [--protocol <p>] [--client <id>]
                         [--op <bytes>] [--requests <n>] [--timeout-secs <s>]
    splitbft-node bench  (--protocol <p> | --compare) [--config <cluster.toml>]
                         [--app counter|kvs|blockchain] [--replicas <n>]
                         [--clients <n>] [--pipeline <n>] [--duration <5s>]
                         [--rate <req/s>] [--sweep-rate <a,b,..>]
                         [--keys <n>] [--value-size <n>]
                         [--read-ratio <f>] [--payload <n>]
                         [--batch-frames <n>] [--sweep-batch-frames <a,b,..>]
                         [--data-dir <dir>] [--wal-group-commit-us <us>]
                         [--shards <n>] [--transport blocking[,evented]]
                         [--out <dir>] [--name <name>]
    splitbft-node chaos  --scenario rolling-restart|repeated-kill|primary-kill|
                                    staggered-start|partition-primary|asymmetric-link|
                                    equivocate-under-load|concurrent-victim|
                                    lossy-link|reorder-under-load|duplicate-storm|
                                    drain-restart
                         (--protocol <p> | --compare) [--replicas <n>] [--rounds <n>]
                         [--clients <n>] [--pipeline <n>] [--timeout-ms <ms>]
                         [--wal-group-commit-us <us>] [--rejoin-secs <s>]
                         [--probe-secs <s>] [--root <dir>] [--keep-data]
                         [--skip-group-commit] [--shards <n>] [--out <dir>]
                         [--transport blocking|evented]

The cluster file lists every replica's id and address plus the shared
seed, protocol, application, and runtime knobs (view-change timer,
send-path batching, data_dir, wal_group_commit_us, transport); see the
splitbft_node crate docs and docs/OPERATIONS.md. `--data-dir` makes the
replica durable: consensus events are WAL'd and checkpoints sealed
under <dir>/replica-<id>/, and a restarted replica recovers from them
plus peer state transfer. `--wal-group-commit-us` shares one WAL fsync
across each core-loop drain batch. `--enable-fault-injection` lets the
replica honor unauthenticated FAULT_CONTROL frames (partitions, lossy
links); it is for chaos harnesses only — never pass it in production.
`--enable-status-admin` likewise gates the STATUS admin verbs (graceful
drain) — read-only STATUS queries are always served. `--metrics-addr`
serves Prometheus text at /metrics plus /healthz and /readyz on that
address. SIGTERM drains gracefully: the replica stops admitting client
requests, finishes in-flight batches, seals a checkpoint, flushes the
WAL, and exits 0.
`--transport` picks the socket backend: `blocking` (thread-per-
connection, the default) or `evented` (one readiness loop per node);
both speak the same wire format. `bench --transport blocking,evented`
runs every measurement on each backend and prints the knee-vs-knee
comparison. `bench` without --config
self-orchestrates a localhost cluster, writes one BENCH_<name>.json per
run, and exits nonzero if a run completes zero requests. `chaos` drives
a live subprocess cluster through a scripted fault schedule under load,
asserts commits advance and victims rejoin after every phase, and
writes one BENCH_chaos_<scenario>_<protocol>.json per run.
";

fn load(args: &[String]) -> Result<(ClusterFile, ProtocolKind), String> {
    let path = flag(args, "--config").ok_or("missing --config <cluster.toml>")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let file = parse_cluster_toml(&text).map_err(|e| e.to_string())?;
    let protocol = match flag(args, "--protocol") {
        Some(p) => p.parse().map_err(|e: splitbft_node::ConfigError| e.to_string())?,
        None => file.protocol,
    };
    Ok((file, protocol))
}

/// Applies the serve CLI's runtime-knob overrides on top of the file's.
fn options_from(args: &[String], file: &ClusterFile) -> Result<NodeOptions, String> {
    let mut options = file.options.clone();
    if let Some(ms) = flag(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--timeout-ms must be an integer".to_string())?;
        options.timeout_every = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(mode) = flag(args, "--byzantine") {
        options.byzantine =
            Some(mode.parse().map_err(|e: splitbft_node::ConfigError| e.to_string())?);
    }
    if let Some(shards) = flag(args, "--shards") {
        options.shards = match shards.parse::<u32>() {
            Ok(0) | Err(_) => return Err("--shards must be a positive integer".to_string()),
            Ok(s) => s,
        };
    }
    if let Some(kind) = flag(args, "--transport") {
        options.transport = kind.parse().map_err(|e: String| e)?;
    }
    if args.iter().any(|a| a == "--enable-fault-injection") {
        options.fault_injection = true;
    }
    if args.iter().any(|a| a == "--enable-status-admin") {
        options.status_admin = true;
    }
    apply_durability_flags(args, &mut options)?;
    apply_batch_flags(args, &mut options.batch)?;
    Ok(options)
}

fn serve(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let (file, protocol) = load(args)?;
        let id: u32 = flag(args, "--replica")
            .ok_or("missing --replica <id>")?
            .parse()
            .map_err(|_| "--replica must be an integer".to_string())?;
        let options = options_from(args, &file)?;
        let node =
            run_replica(&file, protocol, ReplicaId(id), &options).map_err(|e| e.to_string())?;
        // Keep the metrics server alive for the process lifetime; it
        // reads the same telemetry handle the node writes.
        let _metrics = match flag(args, "--metrics-addr") {
            None => None,
            Some(addr) => {
                let addr = addr
                    .parse()
                    .map_err(|_| format!("--metrics-addr must be host:port, got {addr:?}"))?;
                let server =
                    MetricsServer::serve(addr, node.telemetry()).map_err(|e| e.to_string())?;
                println!(
                    "replica {id} metrics on http://{}/metrics (health: /healthz, /readyz)",
                    server.local_addr(),
                );
                Some(server)
            }
        };
        println!(
            "replica {id} serving {protocol} on {} ({} replicas, app {:?})",
            node.local_addr(),
            file.n(),
            file.app,
        );
        install_sigterm_handler();
        // Serve until SIGTERM (or an admin drain over STATUS): the
        // node's own threads do all the work; this loop only watches
        // for the drain-and-exit conditions.
        let telemetry = node.telemetry();
        loop {
            std::thread::sleep(Duration::from_millis(50));
            if TERMINATE.load(Ordering::Relaxed) && !telemetry.draining() {
                eprintln!("replica {id}: SIGTERM — draining (no new requests, sealing checkpoint)");
                node.request_drain();
            }
            if telemetry.drained() {
                eprintln!("replica {id}: drain complete — WAL flushed, checkpoint sealed; exiting");
                return Ok(());
            }
        }
    };
    run_to_exit(run())
}

fn client(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let (file, protocol) = load(args)?;
        let client_id: u32 = flag(args, "--client")
            .unwrap_or_else(|| "1".into())
            .parse()
            .map_err(|_| "--client must be an integer".to_string())?;
        let op = flag(args, "--op").unwrap_or_else(|| "inc".into());
        let count: usize = flag(args, "--requests")
            .unwrap_or_else(|| "1".into())
            .parse()
            .map_err(|_| "--requests must be an integer".to_string())?;
        let timeout: u64 = flag(args, "--timeout-secs")
            .unwrap_or_else(|| "30".into())
            .parse()
            .map_err(|_| "--timeout-secs must be an integer".to_string())?;
        let results = run_client(
            &file,
            protocol,
            ClientId(client_id),
            op.as_bytes(),
            count,
            Duration::from_secs(timeout),
        )
        .map_err(|e| e.to_string())?;
        for (i, result) in results.iter().enumerate() {
            // Counter results are little-endian u64s; print those
            // readably and anything else as a lossy string.
            if result.len() == 8 {
                let mut le = [0u8; 8];
                le.copy_from_slice(result);
                println!("request {i}: {}", u64::from_le_bytes(le));
            } else {
                println!("request {i}: {:?}", String::from_utf8_lossy(result));
            }
        }
        Ok(())
    };
    run_to_exit(run())
}

fn run_to_exit(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
