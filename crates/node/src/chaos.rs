//! The `splitbft-node chaos` subcommand: scripted whole-cluster fault
//! injection end to end.
//!
//! Thin CLI glue over `splitbft-chaos`: it resolves the protocol's
//! quorum arithmetic, spawns the scenario against subprocess replicas
//! launched from **this very binary** (`std::env::current_exe`), and —
//! unless `--skip-group-commit` — attaches a WAL group-commit A/B
//! measurement to the report: two identical short in-process bench
//! windows, one with `wal_group_commit_us = 0` (an fsync per drained
//! event) and one with the configured linger, comparing total fsyncs
//! per committed request.
//!
//! ```text
//! splitbft-node chaos --scenario rolling-restart --protocol splitbft
//! splitbft-node chaos --scenario primary-kill --compare --rounds 4
//! splitbft-node chaos --scenario equivocate-under-load --protocol pbft
//! splitbft-node chaos --scenario concurrent-victim --protocol splitbft
//! ```
//!
//! One `BENCH_chaos_<scenario>_<protocol>.json` lands per run; the
//! command exits nonzero when any phase assertion fails (commits
//! stalled, a victim never rejoined, or the safety cross-check caught
//! a committed fork). Scenario/protocol combinations the protocol's
//! own design rules out — `primary-kill` or primary partitions on the
//! view-change-less hybrid, `equivocate-under-load` against the USIG —
//! fail fast with a typed `ChaosError::Unsupported` before anything
//! spawns, and are skipped (loudly) under `--compare`.

use crate::bench::LocalCluster;
use crate::{
    cli_flag as flag, parse_cli_flag as parse_flag, reply_quorum_for, validate_cli_flags,
    AppKind, NodeOptions, ProtocolKind,
};
use splitbft_chaos::report::{ChaosReport, GroupCommitDelta, GroupCommitSample};
use splitbft_chaos::schedule::Schedule;
use splitbft_chaos::{run_scenario, ChaosConfig, ChaosError};
use splitbft_net::backend::TransportKind;
use splitbft_loadgen::driver::{self, DriverConfig};
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Everything one `chaos` invocation needs, parsed from CLI flags.
#[derive(Debug, Clone)]
pub struct ChaosInvocation {
    /// Scenario name (see `splitbft_chaos::schedule::Schedule::NAMES`).
    pub scenario: String,
    /// Protocols to run (one, or all three under `--compare`).
    pub protocols: Vec<ProtocolKind>,
    /// Cluster size.
    pub replicas: usize,
    /// Master seed.
    pub seed: u64,
    /// Rounds for the repeating scenarios.
    pub rounds: usize,
    /// Background-load client threads.
    pub clients: usize,
    /// Outstanding requests per load client.
    pub pipeline: usize,
    /// Offered background load (req/s, open loop — see
    /// `splitbft_chaos::ChaosConfig::load_rate`).
    pub rate: f64,
    /// Replica view-change timer period (ms).
    pub timeout_ms: u64,
    /// WAL group-commit linger the cluster runs with (µs).
    pub wal_group_commit_us: u64,
    /// Consensus groups per replica (`1` = unsharded, the default).
    pub shards: u32,
    /// Socket backend the replicas serve on (`--transport`).
    pub transport: TransportKind,
    /// Per-victim rejoin budget.
    pub rejoin_timeout: Duration,
    /// Per-probe commit-read budget.
    pub probe_timeout: Duration,
    /// Scratch *parent* override (default: a unique temp dir per run).
    /// Each run uses `<root>/<scenario>-<protocol>/`; pre-existing
    /// directories that don't look like chaos runs are refused, never
    /// cleared.
    pub root: Option<PathBuf>,
    /// Keep scratch dirs for post-mortems.
    pub keep_data: bool,
    /// Skip the group-commit A/B measurement.
    pub skip_group_commit: bool,
    /// Report output directory.
    pub out_dir: PathBuf,
}

const VALUE_FLAGS: &[&str] = &[
    "--scenario", "--protocol", "--replicas", "--seed", "--rounds", "--clients", "--pipeline",
    "--timeout-ms", "--wal-group-commit-us", "--rejoin-secs", "--probe-secs", "--root", "--out",
    "--rate", "--shards", "--transport",
];
const BARE_FLAGS: &[&str] = &["--compare", "--keep-data", "--skip-group-commit"];

/// Parses the `chaos` subcommand's arguments.
///
/// # Errors
///
/// A human-readable message for unknown flags, unparsable values, or a
/// missing/unknown scenario.
pub fn parse_args(args: &[String]) -> Result<ChaosInvocation, String> {
    validate_cli_flags(args, VALUE_FLAGS, BARE_FLAGS).map_err(|e| format!("chaos: {e}"))?;

    let scenario = flag(args, "--scenario").ok_or_else(|| {
        format!("missing --scenario <name> (one of: {})", Schedule::NAMES.join(", "))
    })?;
    if !Schedule::NAMES.contains(&scenario.as_str()) {
        return Err(format!(
            "unknown scenario {scenario:?} (one of: {})",
            Schedule::NAMES.join(", ")
        ));
    }
    let compare = args.iter().any(|a| a == "--compare");
    let protocols = match (flag(args, "--protocol"), compare) {
        (Some(_), true) => {
            return Err("--protocol and --compare are exclusive".into());
        }
        (Some(p), false) => vec![p.parse().map_err(|e: crate::ConfigError| e.to_string())?],
        (None, true) => vec![ProtocolKind::Pbft, ProtocolKind::SplitBft, ProtocolKind::MinBft],
        (None, false) => return Err("pass --protocol <p> or --compare".into()),
    };

    // concurrent-victim cuts two replicas off at once, so it needs
    // f >= 2: its default cluster is n = 7 rather than 4.
    let default_replicas = if scenario == "concurrent-victim" { 7usize } else { 4usize };
    let replicas: usize = parse_flag(args, "--replicas", default_replicas)?;
    if replicas < 4 {
        return Err("chaos needs --replicas >= 4 (commits must survive one victim)".into());
    }
    Ok(ChaosInvocation {
        scenario,
        protocols,
        replicas,
        seed: parse_flag(args, "--seed", 42u64)?,
        rounds: parse_flag(args, "--rounds", 3usize)?.max(1),
        clients: parse_flag(args, "--clients", 3usize)?.max(1),
        pipeline: parse_flag(args, "--pipeline", 4usize)?.max(1),
        rate: parse_flag(args, "--rate", 150.0f64)?.max(1.0),
        timeout_ms: parse_flag(args, "--timeout-ms", 400u64)?.max(50),
        wal_group_commit_us: parse_flag(args, "--wal-group-commit-us", 200u64)?,
        shards: {
            let shards = parse_flag(args, "--shards", 1u32)?;
            if shards == 0 {
                return Err("--shards must be a positive integer".into());
            }
            shards
        },
        transport: match flag(args, "--transport") {
            None => TransportKind::default(),
            Some(kind) => kind.parse().map_err(|e: String| format!("--transport: {e}"))?,
        },
        rejoin_timeout: Duration::from_secs(parse_flag(args, "--rejoin-secs", 45u64)?.max(1)),
        probe_timeout: Duration::from_secs(parse_flag(args, "--probe-secs", 30u64)?.max(1)),
        root: flag(args, "--root").map(PathBuf::from),
        keep_data: args.iter().any(|a| a == "--keep-data"),
        skip_group_commit: args.iter().any(|a| a == "--skip-group-commit"),
        out_dir: PathBuf::from(flag(args, "--out").unwrap_or_else(|| ".".into())),
    })
}

/// Runs the invocation: one scenario per selected protocol, one report
/// each.
///
/// Unsupported scenario/protocol combinations (the orchestrator's
/// `validate` rules: no view change on the hybrid, unforgeable USIG
/// equivocation, quorum-destroying partitions) are skipped with a
/// notice under `--compare` and are a hard error when the protocol was
/// requested explicitly. A run that *failed its assertions* still
/// writes its report before erroring, so post-mortems have the data.
///
/// # Errors
///
/// Parse errors, unsupported single-protocol requests, orchestration
/// I/O errors, and any failed phase assertion or safety violation.
pub fn run(args: &[String]) -> Result<Vec<ChaosReport>, String> {
    let invocation = parse_args(args)?;
    let serve_binary =
        std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut reports = Vec::new();
    for &protocol in &invocation.protocols {
        let report = match run_for(&invocation, protocol, &serve_binary) {
            Ok(report) => report,
            Err(e @ ChaosError::Unsupported { .. }) => {
                if invocation.protocols.len() > 1 {
                    eprintln!("chaos: skipping — {e}");
                    continue;
                }
                return Err(e.to_string());
            }
            Err(ChaosError::Failed { reason, report }) => {
                println!("{}", report.summary_line());
                if let Ok(path) = report.write_to(&invocation.out_dir) {
                    println!("  wrote {}", path.display());
                }
                return Err(format!("chaos scenario {} failed: {reason}", report.scenario));
            }
            Err(e) => return Err(e.to_string()),
        };
        println!("{}", report.summary_line());
        let path =
            report.write_to(&invocation.out_dir).map_err(|e| format!("writing report: {e}"))?;
        println!("  wrote {}", path.display());
        reports.push(report);
    }
    Ok(reports)
}

fn run_for(
    invocation: &ChaosInvocation,
    protocol: ProtocolKind,
    serve_binary: &PathBuf,
) -> Result<ChaosReport, ChaosError> {
    let quorum = reply_quorum_for(protocol, invocation.replicas)?;
    let schedule = Schedule::by_name(&invocation.scenario, invocation.replicas, invocation.rounds)
        .map_err(|e| ChaosError::Io(io::Error::new(io::ErrorKind::InvalidInput, e)))?;
    let root = scratch_root(invocation, protocol)?;

    let mut config = ChaosConfig::new(
        serve_binary.clone(),
        protocol.to_string(),
        invocation.replicas,
        quorum,
        root,
    );
    config.seed = invocation.seed;
    config.timeout_ms = invocation.timeout_ms;
    config.wal_group_commit_us = invocation.wal_group_commit_us;
    config.shards = invocation.shards;
    config.transport = invocation.transport;
    config.load_clients = invocation.clients;
    config.load_pipeline = invocation.pipeline;
    config.load_rate = invocation.rate;
    config.rejoin_timeout = invocation.rejoin_timeout;
    config.probe_timeout = invocation.probe_timeout;
    config.keep_data = invocation.keep_data;

    let mut report = run_scenario(&config, &schedule)?;
    if !invocation.skip_group_commit {
        report.group_commit = Some(measure_group_commit_delta(invocation, protocol)?);
    }
    Ok(report)
}

/// Resolves the scratch root for one (scenario, protocol) run.
///
/// Self-generated temp roots are pre-cleaned wholesale. A user-supplied
/// `--root` is treated as a **parent**: each run lives in its own
/// `<root>/<scenario>-<protocol>/` subdirectory (so `--compare` runs
/// and `--keep-data` post-mortems never collide), only that
/// subdirectory is ever pre-cleaned, and even then only when it is
/// recognizably a previous chaos run (it holds a `cluster.toml`) or
/// empty — never arbitrary user data.
fn scratch_root(invocation: &ChaosInvocation, protocol: ProtocolKind) -> io::Result<PathBuf> {
    let shard_suffix =
        if invocation.shards > 1 { format!("-s{}", invocation.shards) } else { String::new() };
    match &invocation.root {
        None => {
            let root = std::env::temp_dir().join(format!(
                "splitbft-chaos-{}-{protocol}{shard_suffix}-{}",
                invocation.scenario,
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            Ok(root)
        }
        Some(base) => {
            let root = base.join(format!("{}-{protocol}{shard_suffix}", invocation.scenario));
            if root.exists()
                && !root.join("cluster.toml").exists()
                && std::fs::read_dir(&root)?.next().is_some()
            {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "refusing to clear {}: it exists, is not empty, and does not look \
                         like a previous chaos run (no cluster.toml)",
                        root.display()
                    ),
                ));
            }
            let _ = std::fs::remove_dir_all(&root);
            Ok(root)
        }
    }
}

/// The group-commit A/B: two identical short in-process durable bench
/// windows, linger off vs. on, compared by fsyncs per committed
/// request.
fn measure_group_commit_delta(
    invocation: &ChaosInvocation,
    protocol: ProtocolKind,
) -> io::Result<GroupCommitDelta> {
    let linger = invocation.wal_group_commit_us.max(200);
    let off = measure_group_commit(invocation, protocol, 0)?;
    let on = measure_group_commit(invocation, protocol, linger)?;
    eprintln!(
        "chaos: group-commit A/B — off: {} fsyncs / {} commits, on ({} µs): {} fsyncs / {} commits",
        off.fsyncs, off.completed, linger, on.fsyncs, on.completed,
    );
    Ok(GroupCommitDelta { off, on })
}

fn measure_group_commit(
    invocation: &ChaosInvocation,
    protocol: ProtocolKind,
    linger_us: u64,
) -> io::Result<GroupCommitSample> {
    let dir = std::env::temp_dir().join(format!(
        "splitbft-chaos-gc-{protocol}-{linger_us}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let options = NodeOptions {
        data_dir: Some(dir.clone()),
        wal_group_commit: Duration::from_micros(linger_us),
        transport: invocation.transport,
        ..NodeOptions::default()
    };
    let cluster =
        LocalCluster::launch(invocation.replicas, protocol, AppKind::Counter, invocation.seed, &options)?;
    let mut config = DriverConfig::new(
        cluster.addrs(),
        invocation.seed,
        reply_quorum_for(protocol, invocation.replicas)?,
    );
    config.clients = 4;
    config.pipeline = 4;
    config.duration = Duration::from_secs(3);
    config.drain_timeout = Duration::from_secs(10);
    let stats = driver::run(&config)?;
    let fsyncs = cluster.fsyncs();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(GroupCommitSample { linger_us, fsyncs, completed: stats.completed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_issue_invocation() {
        let inv = parse_args(&args(&[
            "--scenario", "rolling-restart", "--protocol", "splitbft",
        ]))
        .unwrap();
        assert_eq!(inv.scenario, "rolling-restart");
        assert_eq!(inv.protocols, vec![ProtocolKind::SplitBft]);
        assert_eq!(inv.replicas, 4);
        assert_eq!(inv.wal_group_commit_us, 200);
        assert!(!inv.skip_group_commit);
    }

    #[test]
    fn concurrent_victim_defaults_to_seven_replicas() {
        let inv = parse_args(&args(&[
            "--scenario", "concurrent-victim", "--protocol", "splitbft",
        ]))
        .unwrap();
        assert_eq!(inv.replicas, 7, "two simultaneous victims need f >= 2");
        let inv = parse_args(&args(&[
            "--scenario", "concurrent-victim", "--protocol", "splitbft", "--replicas", "10",
        ]))
        .unwrap();
        assert_eq!(inv.replicas, 10, "an explicit --replicas still wins");
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        let inv = parse_args(&args(&[
            "--scenario", "rolling-restart", "--protocol", "pbft", "--shards", "2",
        ]))
        .unwrap();
        assert_eq!(inv.shards, 2);
        let inv =
            parse_args(&args(&["--scenario", "rolling-restart", "--protocol", "pbft"])).unwrap();
        assert_eq!(inv.shards, 1, "unsharded by default");
        assert!(parse_args(&args(&[
            "--scenario", "rolling-restart", "--protocol", "pbft", "--shards", "0",
        ]))
        .is_err());
    }

    #[test]
    fn link_rule_scenarios_are_reachable_from_the_cli() {
        for scenario in ["lossy-link", "reorder-under-load", "duplicate-storm"] {
            let inv = parse_args(&args(&["--scenario", scenario, "--protocol", "splitbft"]))
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            assert_eq!(inv.scenario, scenario);
        }
    }

    #[test]
    fn compare_covers_all_protocols() {
        let inv =
            parse_args(&args(&["--scenario", "repeated-kill", "--compare", "--rounds", "2"]))
                .unwrap();
        assert_eq!(inv.protocols.len(), 3);
        assert_eq!(inv.rounds, 2);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&["--protocol", "pbft"])).is_err(), "scenario required");
        assert!(
            parse_args(&args(&["--scenario", "coffee-spill", "--protocol", "pbft"])).is_err(),
            "unknown scenario"
        );
        assert!(
            parse_args(&args(&["--scenario", "rolling-restart"])).is_err(),
            "needs protocol or compare"
        );
        assert!(
            parse_args(&args(&[
                "--scenario", "rolling-restart", "--protocol", "pbft", "--compare",
            ]))
            .is_err(),
            "protocol and compare are exclusive"
        );
        assert!(
            parse_args(&args(&[
                "--scenario", "rolling-restart", "--protocol", "pbft", "--replicas", "3",
            ]))
            .is_err(),
            "too few replicas"
        );
        assert!(
            parse_args(&args(&["--scenario", "rolling-restart", "--bogus", "1"])).is_err(),
            "unknown flag"
        );
    }
}
