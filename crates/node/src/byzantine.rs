//! Adversarial replica modes for the chaos plane.
//!
//! A Byzantine serve mode wraps the *honest* replica state machine and
//! mutates its outputs on the way to the runtime — the replica itself
//! stays correct, which is exactly the paper's threat model for a
//! compromised host: the protocol logic inside the TEE is intact, the
//! untrusted environment around it misbehaves. Three modes:
//!
//! - `equivocating-primary` — when the wrapped replica broadcasts a
//!   `PrePrepare`, the wrapper splits the broadcast: one peer receives
//!   the honest proposal, a second receives a *conflicting* proposal for
//!   the same `(view, seq)` forged with [`splitbft_model::Adversary`]
//!   (well-signed under the replica's own compromised key, carrying an
//!   authenticated fabricated batch), and the remaining peers receive
//!   nothing. No prepare quorum can form for either digest, so honest
//!   replicas view-change past the equivocator — safety holds, liveness
//!   recovers.
//! - `silent-backup` — every output is swallowed. Equivalent to a crash
//!   fault that the failure detector cannot distinguish from a slow
//!   link; the cluster must mask it within `f`.
//! - `corrupt-mac` — every outbound message keeps its content but has
//!   one authenticator byte flipped (signature byte for the `3f + 1`
//!   stacks' signed messages, USIG signature byte for the hybrid, reply
//!   MAC byte for client replies). Honest receivers must reject the
//!   frames, degrading this replica to silence *through the crypto
//!   layer* rather than before it.
//!
//! The wrapper sits **inside** the durability plane
//! (`DurableProtocol` wraps `ByzantineProtocol` wraps the replica):
//! mutations happen before output-withholding, so the WAL-before-network
//! invariant of group commit is preserved and the WAL records the
//! honest state machine's events, not the forgeries.

use crate::ConfigError;
use splitbft_hybrid::HybridMessage;
use splitbft_model::Adversary;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_types::{
    ConsensusMessage, DurableCheckpoint, DurableEvent, ProtocolError, ReplicaId, SeqNum,
};
use std::fmt;
use std::str::FromStr;

/// Which adversarial behavior a `--byzantine` replica exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Split `PrePrepare` broadcasts into conflicting per-peer sends.
    EquivocatingPrimary,
    /// Swallow every output.
    SilentBackup,
    /// Flip one authenticator byte on every outbound message and reply.
    CorruptMac,
}

impl FromStr for ByzantineMode {
    type Err = ConfigError;
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "equivocating-primary" => Ok(ByzantineMode::EquivocatingPrimary),
            "silent-backup" => Ok(ByzantineMode::SilentBackup),
            "corrupt-mac" => Ok(ByzantineMode::CorruptMac),
            other => Err(ConfigError::new(format!(
                "unknown byzantine mode {other:?} (expected equivocating-primary, \
                 silent-backup, or corrupt-mac)"
            ))),
        }
    }
}

impl fmt::Display for ByzantineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ByzantineMode::EquivocatingPrimary => "equivocating-primary",
            ByzantineMode::SilentBackup => "silent-backup",
            ByzantineMode::CorruptMac => "corrupt-mac",
        })
    }
}

/// What the wrapper must be able to do to a protocol's wire messages.
///
/// Implemented here (the trait is local, so coherence permits it) for
/// both message vocabularies in the workspace; a protocol whose message
/// type implements this can host under every [`ByzantineMode`].
pub trait ByzantineMessage: Sized {
    /// Flips one byte of the message's authenticator so honest
    /// receivers reject it.
    fn corrupt_auth(&mut self);

    /// A conflicting counterpart of this message for the same agreement
    /// slot, forged under the sender's own (compromised) key — or
    /// `None` when this message kind cannot equivocate meaningfully.
    fn equivocate(&self, seed: u64, tag: u8) -> Option<Self>;
}

impl ByzantineMessage for ConsensusMessage {
    fn corrupt_auth(&mut self) {
        match self {
            ConsensusMessage::PrePrepare(m) => m.signature.0[0] ^= 0xFF,
            ConsensusMessage::Prepare(m) => m.signature.0[0] ^= 0xFF,
            ConsensusMessage::Commit(m) => m.signature.0[0] ^= 0xFF,
            ConsensusMessage::Checkpoint(m) => m.signature.0[0] ^= 0xFF,
            ConsensusMessage::ViewChange(m) => m.signature.0[0] ^= 0xFF,
            ConsensusMessage::NewView(m) => m.signature.0[0] ^= 0xFF,
        }
    }

    fn equivocate(&self, seed: u64, tag: u8) -> Option<Self> {
        // Only the ordering proposal equivocates: two well-signed
        // pre-prepares for one (view, seq) with different batches is
        // *the* equivocation the prepare phase exists to mask.
        let ConsensusMessage::PrePrepare(pp) = self else { return None };
        let adversary = Adversary::new(seed, [pp.signer]);
        Some(adversary.forge_pre_prepare(
            pp.signer,
            pp.payload.view,
            pp.payload.seq,
            adversary.evil_batch(tag),
        ))
    }
}

impl ByzantineMessage for HybridMessage {
    fn corrupt_auth(&mut self) {
        self.corrupt_authenticator();
    }

    /// Always `None`: the USIG's monotone counter makes two prepares at
    /// one counter value unforgeable even with the host compromised —
    /// that is the hybrid's whole point. `equivocating-primary` is
    /// rejected for minbft at config time.
    fn equivocate(&self, _seed: u64, _tag: u8) -> Option<Self> {
        None
    }
}

/// The output-mutating wrapper. See the module docs for the modes.
#[derive(Debug)]
pub struct ByzantineProtocol<P> {
    inner: P,
    mode: ByzantineMode,
    seed: u64,
    /// The other replicas in id order — the fan-out targets when a
    /// broadcast is split into per-peer sends.
    peers: Vec<ReplicaId>,
    /// Distinguishes successive forged batches (an equivocator that
    /// reuses one forged batch would conflict with itself).
    forgery_tag: u8,
}

impl<P: Protocol> ByzantineProtocol<P>
where
    P::Message: ByzantineMessage,
{
    /// Wraps `inner`, which serves as replica `id` of an `n`-replica
    /// cluster keyed from `seed`.
    pub fn new(inner: P, mode: ByzantineMode, seed: u64, id: ReplicaId, n: usize) -> Self {
        let peers =
            (0..n as u32).map(ReplicaId).filter(|&p| p != id).collect();
        ByzantineProtocol { inner, mode, seed, peers, forgery_tag: 1 }
    }

    fn mutate(
        &mut self,
        outputs: Vec<ProtocolOutput<P::Message>>,
    ) -> Vec<ProtocolOutput<P::Message>> {
        match self.mode {
            ByzantineMode::SilentBackup => Vec::new(),
            ByzantineMode::CorruptMac => outputs
                .into_iter()
                .map(|out| match out {
                    ProtocolOutput::Broadcast(mut msg) => {
                        msg.corrupt_auth();
                        ProtocolOutput::Broadcast(msg)
                    }
                    ProtocolOutput::Send { to, mut msg } => {
                        msg.corrupt_auth();
                        ProtocolOutput::Send { to, msg }
                    }
                    ProtocolOutput::Reply { to, mut reply } => {
                        reply.auth[0] ^= 0xFF;
                        ProtocolOutput::Reply { to, reply }
                    }
                })
                .collect(),
            ByzantineMode::EquivocatingPrimary => outputs
                .into_iter()
                .flat_map(|out| match out {
                    ProtocolOutput::Broadcast(msg) => {
                        match msg.equivocate(self.seed, self.forgery_tag) {
                            Some(forged) if self.peers.len() >= 2 => {
                                self.forgery_tag = self.forgery_tag.wrapping_add(1).max(1);
                                vec![
                                    ProtocolOutput::Send { to: self.peers[0], msg },
                                    ProtocolOutput::Send { to: self.peers[1], msg: forged },
                                ]
                            }
                            // Non-equivocable kinds (votes, view
                            // changes) flow honestly: the adversary
                            // attacks ordering, not its own liveness.
                            _ => vec![ProtocolOutput::Broadcast(msg)],
                        }
                    }
                    other => vec![other],
                })
                .collect(),
        }
    }
}

impl<P: Protocol> Protocol for ByzantineProtocol<P>
where
    P::Message: ByzantineMessage,
{
    type Message = P::Message;

    fn on_message(&mut self, msg: P::Message) -> Vec<ProtocolOutput<P::Message>> {
        let outputs = self.inner.on_message(msg);
        self.mutate(outputs)
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<splitbft_types::Request>,
    ) -> Vec<ProtocolOutput<P::Message>> {
        let outputs = self.inner.on_client_requests(requests);
        self.mutate(outputs)
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<P::Message>> {
        let outputs = self.inner.on_timeout();
        self.mutate(outputs)
    }

    fn progress(&self) -> u64 {
        self.inner.progress()
    }

    fn has_pending_requests(&self) -> bool {
        self.inner.has_pending_requests()
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.inner.drain_durable_events()
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        self.inner.replay_durable_event(event);
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        self.inner.durable_checkpoint()
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        self.inner.restore_checkpoint(cp)
    }

    fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<P::Message> {
        match self.mode {
            ByzantineMode::SilentBackup => Vec::new(),
            ByzantineMode::CorruptMac => {
                let mut msgs = self.inner.catch_up_messages(have_seq);
                for msg in &mut msgs {
                    msg.corrupt_auth();
                }
                msgs
            }
            ByzantineMode::EquivocatingPrimary => self.inner.catch_up_messages(have_seq),
        }
    }

    fn flush_durable(&mut self) -> Vec<ProtocolOutput<P::Message>> {
        let outputs = self.inner.flush_durable();
        self.mutate(outputs)
    }

    fn durable_fsyncs(&self) -> u64 {
        self.inner.durable_fsyncs()
    }

    fn current_view(&self) -> u64 {
        self.inner.current_view()
    }

    fn pending_request_count(&self) -> u64 {
        self.inner.pending_request_count()
    }

    fn wal_bytes(&self) -> u64 {
        self.inner.wal_bytes()
    }

    fn checkpoint_seal_count(&self) -> u64 {
        self.inner.checkpoint_seal_count()
    }

    fn shard_views(&self) -> Vec<u64> {
        self.inner.shard_views()
    }

    fn drain_seal(&mut self) -> Vec<ProtocolOutput<P::Message>> {
        // Drain-time sealing is local bookkeeping; the byzantine lens
        // only distorts network outputs, which `mutate` still covers.
        let outputs = self.inner.drain_seal();
        self.mutate(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_app::CounterApp;
    use splitbft_crypto::{digest_of, KeyRegistry};
    use splitbft_pbft::{make_request, Replica as PbftReplica};
    use splitbft_types::{ClientId, ClusterConfig, Timestamp};

    const SEED: u64 = 11;

    fn primary(mode: ByzantineMode) -> ByzantineProtocol<PbftReplica<CounterApp>> {
        let config = ClusterConfig::new(4).unwrap();
        let replica = PbftReplica::new(config, ReplicaId(0), SEED, CounterApp::new());
        ByzantineProtocol::new(replica, mode, SEED, ReplicaId(0), 4)
    }

    fn one_request() -> Vec<splitbft_types::Request> {
        vec![make_request(SEED, ClientId(1), Timestamp(1), Bytes::from_static(b"inc"))]
    }

    #[test]
    fn equivocating_primary_sends_conflicting_well_signed_pre_prepares() {
        let mut byz = primary(ByzantineMode::EquivocatingPrimary);
        let outputs = byz.on_client_requests(one_request());
        let sends: Vec<_> = outputs
            .iter()
            .filter_map(|out| match out {
                ProtocolOutput::Send { to, msg: ConsensusMessage::PrePrepare(pp) } => {
                    Some((*to, pp))
                }
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2, "broadcast split into exactly two sends: {outputs:?}");
        let (honest, forged) = (sends[0], sends[1]);
        assert_eq!(honest.0, ReplicaId(1));
        assert_eq!(forged.0, ReplicaId(2));
        // Same slot, different content — the textbook equivocation.
        assert_eq!(honest.1.payload.view, forged.1.payload.view);
        assert_eq!(honest.1.payload.seq, forged.1.payload.seq);
        assert_ne!(
            digest_of(&honest.1.payload.batch),
            digest_of(&forged.1.payload.batch)
        );
        // Both verify: the forgery is signed under the replica's real key.
        let registry = KeyRegistry::with_signers(SEED, [honest.1.signer]);
        assert!(registry.verify_signed(honest.1).is_ok());
        assert!(registry.verify_signed(forged.1).is_ok());
        // No peer beyond the two victims hears anything.
        assert!(!outputs.iter().any(|out| matches!(
            out,
            ProtocolOutput::Broadcast(_)
                | ProtocolOutput::Send { to: ReplicaId(3), .. }
        )));
    }

    #[test]
    fn silent_backup_swallows_everything() {
        let mut byz = primary(ByzantineMode::SilentBackup);
        assert!(byz.on_client_requests(one_request()).is_empty());
        assert!(byz.on_timeout().is_empty());
        assert!(byz.catch_up_messages(SeqNum(0)).is_empty());
    }

    #[test]
    fn corrupt_mac_flips_exactly_one_authenticator_byte() {
        let mut honest = primary(ByzantineMode::CorruptMac);
        let outputs = honest.on_client_requests(one_request());
        let pre_prepare = outputs
            .iter()
            .find_map(|out| match out {
                ProtocolOutput::Broadcast(ConsensusMessage::PrePrepare(pp)) => Some(pp),
                _ => None,
            })
            .expect("primary still broadcasts its proposal");
        // The signature no longer verifies under the replica's key...
        let registry = KeyRegistry::with_signers(SEED, [pre_prepare.signer]);
        assert!(registry.verify_signed(pre_prepare).is_err());
        // ...but un-flipping the byte restores it: content untouched.
        let mut repaired = pre_prepare.clone();
        repaired.signature.0[0] ^= 0xFF;
        assert!(registry.verify_signed(&repaired).is_ok());
    }

    #[test]
    fn mode_strings_roundtrip() {
        for mode in [
            ByzantineMode::EquivocatingPrimary,
            ByzantineMode::SilentBackup,
            ByzantineMode::CorruptMac,
        ] {
            assert_eq!(mode.to_string().parse::<ByzantineMode>().unwrap(), mode);
        }
        assert!("equivocating".parse::<ByzantineMode>().is_err());
    }
}
