//! Library half of the `splitbft-node` binary: cluster-file parsing and
//! the protocol-dispatch glue that turns one config into a running
//! replica or a driving client.
//!
//! # Cluster file
//!
//! A deployment is described by a small TOML file (parsed by a built-in
//! subset parser — the environment has no `toml` crate — supporting
//! comments, `key = value` pairs with string/integer values, and
//! `[[replica]]` array tables):
//!
//! ```toml
//! # cluster.toml — a 4-replica localhost deployment
//! protocol = "splitbft"   # pbft | splitbft | minbft (CLI --protocol overrides)
//! seed = 42               # master seed shared by replicas and clients
//! app = "counter"         # counter | kvs | blockchain
//!
//! # Optional runtime knobs (defaults shown; CLI flags override):
//! timeout_ms = 2000       # view-change timer period; 0 disables
//! batch_max_frames = 64   # send-path batching: frames per write
//! batch_max_bytes = 262144 #   bytes per write
//! batch_linger_us = 0     #   flush interval (0 = flush when queue dry)
//! # data_dir = "/var/lib/splitbft"  # durability root (omit = in-memory);
//! #                                 # replica i persists under
//! #                                 # <data_dir>/replica-<i>/
//! wal_group_commit_us = 0  # WAL group-commit linger: 0 = fsync per
//!                          # event; >0 shares one fsync per core-loop
//!                          # drain batch (needs data_dir)
//!
//! [[replica]]
//! id = 0
//! addr = "127.0.0.1:7100"
//!
//! [[replica]]
//! id = 1
//! addr = "127.0.0.1:7101"
//!
//! [[replica]]
//! id = 2
//! addr = "127.0.0.1:7102"
//!
//! [[replica]]
//! id = 3
//! addr = "127.0.0.1:7103"
//! ```
//!
//! Every replica process and every client reads the same file, so the
//! file *is* the membership: ids, addresses, protocol, and the seed from
//! which all symmetric keys derive.
//!
//! # The request-aware view-change timer
//!
//! Deployed nodes arm the runtime timer (`timeout_ms`). The tick is
//! *request-aware* (see `splitbft_net::transport::Protocol::progress`):
//! it forwards to the protocol's timeout handler only when a client
//! request has been accepted but no execution progress happened across
//! a full period — so an idle cluster never churns views, while a
//! crashed primary fails over once clients start (re)transmitting.
//! MinBFT keeps its timer quiet (its view change is out of scope).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod byzantine;
pub mod chaos;

pub use byzantine::{ByzantineMode, ByzantineProtocol};
pub use splitbft_net::backend::TransportKind;

use bytes::Bytes;
use splitbft_app::{Application, Blockchain, CounterApp, KeyValueStore};
use splitbft_core::{SplitBftClient, SplitBftReplica, SplitClientEvent};
use splitbft_hybrid::{HybridClient, HybridClientEvent, HybridConfig, HybridReplica, Usig};
use splitbft_net::backend::{AnyBound, AnyNode};
use splitbft_net::tcp::{PeerAddr, RecoveryPolicy, TcpClient, TcpNodeConfig};
use splitbft_net::transport::{BatchPolicy, Protocol};
use splitbft_pbft::{ClientEvent, PbftClient, Replica as PbftReplica};
use splitbft_shard::{ShardMember, ShardRouter, Sharded};
use splitbft_store::{replica_sealing_identity, DurableProtocol};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{ClientId, ClusterConfig, ReplicaId, Reply, ShardId, StatusEvent};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Which of the three protocol stacks a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The PBFT baseline (`3f + 1`, three phases).
    Pbft,
    /// SplitBFT with its three trusted compartments (`3f + 1`).
    SplitBft,
    /// The MinBFT-style hybrid (`2f + 1`, trusted counters).
    MinBft,
}

impl FromStr for ProtocolKind {
    type Err = ConfigError;
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "pbft" => Ok(ProtocolKind::Pbft),
            "splitbft" => Ok(ProtocolKind::SplitBft),
            "minbft" => Ok(ProtocolKind::MinBft),
            other => Err(ConfigError::new(format!(
                "unknown protocol {other:?} (expected pbft, splitbft, or minbft)"
            ))),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolKind::Pbft => "pbft",
            ProtocolKind::SplitBft => "splitbft",
            ProtocolKind::MinBft => "minbft",
        })
    }
}

/// Which replicated application the cluster serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// The trivial counter (`inc` / `read` operations).
    Counter,
    /// The key-value store (`put`/`get`/`delete` operations).
    Kvs,
    /// The blockchain ordering service (any operation is a transaction).
    Blockchain,
}

impl FromStr for AppKind {
    type Err = ConfigError;
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        match s {
            "counter" => Ok(AppKind::Counter),
            "kvs" => Ok(AppKind::Kvs),
            "blockchain" => Ok(AppKind::Blockchain),
            other => Err(ConfigError::new(format!(
                "unknown app {other:?} (expected counter, kvs, or blockchain)"
            ))),
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AppKind::Counter => "counter",
            AppKind::Kvs => "kvs",
            AppKind::Blockchain => "blockchain",
        })
    }
}

/// Runtime knobs of a deployed node, read from the cluster file and
/// overridable per invocation with CLI flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOptions {
    /// Send-path batching limits of the peer outboxes.
    pub batch: BatchPolicy,
    /// Period of the request-aware view-change timer; `None` disables
    /// it (`timeout_ms = 0` in the cluster file).
    pub timeout_every: Option<Duration>,
    /// Root of the durability plane (`data_dir` in the cluster file or
    /// `--data-dir` on the CLI). Each replica keeps its WAL and sealed
    /// checkpoints under `<data_dir>/replica-<id>/`; `None` hosts the
    /// replica purely in memory, as before.
    pub data_dir: Option<PathBuf>,
    /// WAL group-commit linger (`wal_group_commit_us` in the cluster
    /// file, `--wal-group-commit-us` on the CLI). Zero — the default —
    /// fsyncs once per drained core-loop event; a positive linger lets
    /// the core loop coalesce every queued event plus up to this much
    /// waiting time into one drain batch sharing a single fsync.
    /// Meaningless without `data_dir`.
    pub wal_group_commit: Duration,
    /// Adversarial serve mode (`--byzantine` on the CLI or a per-replica
    /// `byzantine` key in the cluster file). `None` — the default —
    /// serves the honest replica; `Some` wraps it in
    /// [`byzantine::ByzantineProtocol`]. The chaos plane uses this to
    /// stand up clusters with a live adversary inside.
    pub byzantine: Option<ByzantineMode>,
    /// Number of consensus groups this node hosts (`shards` in the
    /// cluster file, `--shards` on the CLI). The default `1` hosts the
    /// protocol exactly as before — unwrapped, byte-compatible on the
    /// wire and on disk. Above one, the node runs that many independent
    /// protocol instances behind a [`splitbft_shard::Sharded`]
    /// combinator: KVS keys hash to their owning group, other
    /// applications pin to shard 0, and a durable replica keeps one WAL
    /// per group under `<data_dir>/replica-<id>/shard-<s>/`.
    pub shards: u32,
    /// Honor unauthenticated `FAULT_CONTROL` frames steering the
    /// transport fault plan (`--enable-fault-injection` on the CLI).
    /// Off by default — a production replica must not let any
    /// connecting client install drop rules or partitions; the chaos
    /// harness passes the flag to the clusters it spawns.
    pub fault_injection: bool,
    /// Honor `STATUS` admin verbs — today, graceful drain
    /// (`--enable-status-admin` on the CLI). Off by default for the
    /// same reason as `fault_injection`: any connecting client could
    /// otherwise shut the replica down. Read-only `STATUS` queries
    /// (snapshot, events) are always served.
    pub status_admin: bool,
    /// Which socket backend serves this node (`transport` in the
    /// cluster file, `--transport` on the CLI): `blocking` — the
    /// thread-per-connection runtime — or `evented` — the
    /// single-threaded readiness loop. Both speak the identical wire
    /// format, so a cluster may mix them.
    pub transport: TransportKind,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            batch: BatchPolicy::default(),
            timeout_every: Some(Duration::from_millis(2_000)),
            data_dir: None,
            wal_group_commit: Duration::ZERO,
            byzantine: None,
            shards: 1,
            fault_injection: false,
            status_admin: false,
            transport: TransportKind::default(),
        }
    }
}

/// A parse or validation error in a cluster file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    msg: String,
}

impl ConfigError {
    fn new(msg: impl Into<String>) -> Self {
        ConfigError { msg: msg.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster config: {}", self.msg)
    }
}

impl std::error::Error for ConfigError {}

/// A parsed cluster file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFile {
    /// Default protocol (overridable per invocation).
    pub protocol: ProtocolKind,
    /// Master seed from which all symmetric keys derive.
    pub seed: u64,
    /// The replicated application.
    pub app: AppKind,
    /// Runtime knobs (batching, view-change timer).
    pub options: NodeOptions,
    /// The membership: replica ids and their listen addresses, sorted
    /// and validated to be exactly `0..n`.
    pub replicas: Vec<PeerAddr>,
    /// Replicas the file marks adversarial (per-replica `byzantine`
    /// key). Usually empty; the chaos plane writes these when standing
    /// up a cluster with a live adversary inside.
    pub byzantine: Vec<(ReplicaId, ByzantineMode)>,
}

impl ClusterFile {
    /// Listen address of replica `id`.
    pub fn addr_of(&self, id: ReplicaId) -> Option<SocketAddr> {
        self.replicas.iter().find(|p| p.id == id).map(|p| p.addr)
    }

    /// All replica addresses in id order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|p| p.addr).collect()
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// The file-declared Byzantine mode of replica `id`, if any.
    pub fn byzantine_of(&self, id: ReplicaId) -> Option<ByzantineMode> {
        self.byzantine.iter().find(|(r, _)| *r == id).map(|(_, m)| *m)
    }
}

/// Parses the TOML subset described in the crate docs.
pub fn parse_cluster_toml(text: &str) -> Result<ClusterFile, ConfigError> {
    let mut protocol = ProtocolKind::SplitBft;
    let mut seed: u64 = 42;
    let mut app = AppKind::Counter;
    let mut options = NodeOptions::default();
    let mut replicas: Vec<(Option<u32>, Option<SocketAddr>, Option<ByzantineMode>)> = Vec::new();
    // `None` = top level; `Some(i)` = inside the i-th [[replica]] table.
    let mut current: Option<usize> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ConfigError::new(format!("line {}: {msg}", lineno + 1));
        if line == "[[replica]]" {
            replicas.push((None, None, None));
            current = Some(replicas.len() - 1);
            continue;
        }
        if line.starts_with('[') {
            return Err(err(format!("unsupported table {line}")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got {line:?}")));
        };
        let (key, value) = (key.trim(), value.trim());
        match (current, key) {
            (None, "protocol") => protocol = parse_string(value).and_then(|s| s.parse())?,
            (None, "seed") => {
                seed = value
                    .parse()
                    .map_err(|_| err(format!("seed must be an integer, got {value:?}")))?;
            }
            (None, "app") => app = parse_string(value).and_then(|s| s.parse())?,
            (None, "timeout_ms") => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| err(format!("timeout_ms must be an integer, got {value:?}")))?;
                options.timeout_every = (ms > 0).then(|| Duration::from_millis(ms));
            }
            (None, "batch_max_frames") => {
                options.batch.max_frames = parse_positive(value)
                    .map_err(|m| err(format!("batch_max_frames {m}, got {value:?}")))?;
            }
            (None, "batch_max_bytes") => {
                options.batch.max_bytes = parse_positive(value)
                    .map_err(|m| err(format!("batch_max_bytes {m}, got {value:?}")))?;
            }
            (None, "batch_linger_us") => {
                let us: u64 = value
                    .parse()
                    .map_err(|_| err(format!("batch_linger_us must be an integer, got {value:?}")))?;
                options.batch.linger = Duration::from_micros(us);
            }
            (None, "data_dir") => {
                options.data_dir = Some(PathBuf::from(parse_string(value)?));
            }
            (None, "wal_group_commit_us") => {
                let us: u64 = value.parse().map_err(|_| {
                    err(format!("wal_group_commit_us must be an integer, got {value:?}"))
                })?;
                options.wal_group_commit = Duration::from_micros(us);
            }
            (None, "transport") => {
                options.transport =
                    parse_string(value)?.parse().map_err(|e: String| err(e))?;
            }
            (None, "shards") => {
                options.shards = match value.parse::<u32>() {
                    Ok(0) | Err(_) => {
                        return Err(err(format!(
                            "shards must be a positive integer, got {value:?}"
                        )))
                    }
                    Ok(s) => s,
                };
            }
            (None, other) => return Err(err(format!("unknown top-level key {other:?}"))),
            (Some(i), "id") => {
                replicas[i].0 = Some(
                    value
                        .parse()
                        .map_err(|_| err(format!("id must be an integer, got {value:?}")))?,
                );
            }
            (Some(i), "addr") => {
                let s = parse_string(value)?;
                replicas[i].1 = Some(
                    s.parse()
                        .map_err(|_| err(format!("addr must be host:port, got {s:?}")))?,
                );
            }
            (Some(i), "byzantine") => {
                replicas[i].2 =
                    Some(parse_string(value)?.parse().map_err(|e: ConfigError| err(e.msg))?);
            }
            (Some(_), other) => return Err(err(format!("unknown replica key {other:?}"))),
        }
    }

    let mut peers = Vec::with_capacity(replicas.len());
    let mut byzantine = Vec::new();
    for (i, (id, addr, mode)) in replicas.into_iter().enumerate() {
        let id = id.ok_or_else(|| ConfigError::new(format!("replica #{i} missing `id`")))?;
        let addr = addr.ok_or_else(|| ConfigError::new(format!("replica #{i} missing `addr`")))?;
        peers.push(PeerAddr { id: ReplicaId(id), addr });
        if let Some(mode) = mode {
            byzantine.push((ReplicaId(id), mode));
        }
    }
    peers.sort_by_key(|p| p.id.0);
    if peers.is_empty() {
        return Err(ConfigError::new("no [[replica]] entries"));
    }
    for (i, peer) in peers.iter().enumerate() {
        if peer.id.0 as usize != i {
            return Err(ConfigError::new(format!(
                "replica ids must be exactly 0..{}, found id {}",
                peers.len(),
                peer.id.0
            )));
        }
    }
    Ok(ClusterFile { protocol, seed, app, options, replicas: peers, byzantine })
}

fn strip_comment(line: &str) -> &str {
    // Good enough for the subset: `#` never appears inside our strings.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_positive(value: &str) -> Result<usize, &'static str> {
    match value.parse::<usize>() {
        Ok(0) => Err("must be positive"),
        Ok(v) => Ok(v),
        Err(_) => Err("must be an integer"),
    }
}

fn parse_string(value: &str) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError::new(format!("expected a quoted string, got {v}")))
    }
}

/// Builds and starts replica `id` of the cluster described by `file`,
/// running `protocol` (usually `file.protocol`, unless overridden) with
/// the given runtime `options` (usually `file.options`, unless CLI
/// flags override).
///
/// The returned [`AnyNode`] is protocol-erased *and* transport-erased:
/// all three stacks host behind the same handle on whichever backend
/// `options.transport` selects, which is what lets one binary serve
/// every combination.
pub fn run_replica(
    file: &ClusterFile,
    protocol: ProtocolKind,
    id: ReplicaId,
    options: &NodeOptions,
) -> io::Result<AnyNode> {
    let listen = file.addr_of(id).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("replica {} not in cluster file", id.0))
    })?;
    let bound = AnyBound::bind(options.transport, id, listen)?;
    // CLI --byzantine wins; otherwise the file's per-replica key applies.
    let mut options = options.clone();
    if options.byzantine.is_none() {
        options.byzantine = file.byzantine_of(id);
    }
    start_replica_on(bound, file.replicas.clone(), protocol, file.app, file.seed, &options)
}

/// Starts a replica around an already-bound listener.
///
/// This is how the bench orchestrator launches whole clusters on
/// OS-assigned ports: bind every listener first (so the ports are
/// known), assemble the full address book, then start each node with
/// it. `peers` must contain an entry for the bound node itself.
pub fn start_replica_on(
    bound: AnyBound,
    peers: Vec<PeerAddr>,
    protocol: ProtocolKind,
    app: AppKind,
    seed: u64,
    options: &NodeOptions,
) -> io::Result<AnyNode> {
    let mut config = TcpNodeConfig::new(bound.id(), bound.local_addr()?, peers);
    config.batch = options.batch;
    config.timeout_every = options.timeout_every;
    config.fault_injection = options.fault_injection;
    config.status_admin = options.status_admin;
    let durability = match &options.data_dir {
        None => None,
        Some(base) => {
            config.recovery = Some(RecoveryPolicy {
                agreement: fault_tolerance_for(protocol, config.peers.len())? + 1,
            });
            // The runtime linger and the protocol's group-commit mode
            // travel together: the core loop batches events, the
            // DurableProtocol withholds outputs until the batch fsync.
            config.group_commit = options.wal_group_commit;
            Some(Durability {
                dir: base.join(format!("replica-{}", bound.id().0)),
                group_commit: !options.wal_group_commit.is_zero(),
            })
        }
    };
    let byzantine = options.byzantine;
    if byzantine == Some(ByzantineMode::EquivocatingPrimary) && protocol == ProtocolKind::MinBft {
        return Err(invalid(
            "byzantine mode equivocating-primary is unsupported on minbft: the USIG's \
             monotone counter makes primary equivocation unforgeable (that is the \
             hybrid's design point), so the mode would silently serve honestly",
        ));
    }
    // Only the KVS carries routable keys; every other application pins
    // to shard 0 (a sharded counter behaves exactly like an unsharded
    // one).
    let sharding = ShardingPlan { shards: options.shards, keyed: app == AppKind::Kvs };
    match app {
        AppKind::Counter => start_with_app(
            bound,
            config,
            protocol,
            seed,
            CounterApp::new,
            durability,
            byzantine,
            sharding,
        ),
        AppKind::Kvs => start_with_app(
            bound,
            config,
            protocol,
            seed,
            KeyValueStore::new,
            durability,
            byzantine,
            sharding,
        ),
        AppKind::Blockchain => start_with_app(
            bound,
            config,
            protocol,
            seed,
            Blockchain::new,
            durability,
            byzantine,
            sharding,
        ),
    }
}

/// How a replica persists, resolved from [`NodeOptions`].
struct Durability {
    /// This replica's own data directory.
    dir: PathBuf,
    /// Whether the [`DurableProtocol`] runs in group-commit mode.
    group_commit: bool,
}

/// How a replica shards, resolved from [`NodeOptions`] and the app.
#[derive(Clone, Copy)]
struct ShardingPlan {
    /// Number of consensus groups (1 = host the protocol unwrapped).
    shards: u32,
    /// Whether the application's operations carry routable keys.
    keyed: bool,
}

/// Hosts `protocol` directly, or wrapped in the durability plane when a
/// data directory is configured — recovering whatever WAL and sealed
/// checkpoints a previous incarnation left there, and logging what was
/// found.
fn start_durable<P: Protocol>(
    bound: AnyBound,
    config: TcpNodeConfig,
    seed: u64,
    protocol: P,
    durability: Option<Durability>,
) -> io::Result<AnyNode> {
    match durability {
        None => bound.start(config, protocol),
        Some(Durability { dir, group_commit }) => {
            let identity = replica_sealing_identity(seed, bound.id());
            let durable = DurableProtocol::recover(protocol, &dir, identity)?
                .with_group_commit(group_commit);
            log_recovery(bound.id(), None, &durable);
            let recovered = recovered_event(&durable);
            let node = bound.start(config, durable)?;
            if let Some(event) = recovered {
                node.telemetry().record_event(event);
            }
            Ok(node)
        }
    }
}

/// The journal event describing what a [`DurableProtocol::recover`]
/// found on disk, or `None` when the directory was fresh. Recovery
/// happens before the node starts, so the caller records this on the
/// node's telemetry right after `bound.start`.
fn recovered_event<P: Protocol>(durable: &DurableProtocol<P>) -> Option<StatusEvent> {
    let report = durable.recovery_report();
    report.recovered_anything().then(|| StatusEvent::Recovered {
        replayed_events: report.replayed_events as u64,
        checkpoint_seq: report.restored_checkpoint.map_or(0, |s| s.0),
    })
}

/// Logs one replica's (or one shard's) recovery outcome, if anything
/// was actually recovered.
fn log_recovery<P: Protocol>(id: ReplicaId, shard: Option<ShardId>, durable: &DurableProtocol<P>) {
    let report = durable.recovery_report();
    if report.recovered_anything() || !report.checkpoint_errors.is_empty() {
        let scope = match shard {
            None => String::new(),
            Some(s) => format!(" shard {}", s.0),
        };
        eprintln!(
            "replica {}{scope}: recovered checkpoint {:?}, replayed {} WAL events{}",
            id.0,
            report.restored_checkpoint.map(|s| s.0),
            report.replayed_events,
            if report.checkpoint_errors.is_empty() {
                String::new()
            } else {
                format!(
                    " ({} corrupt checkpoint(s) skipped — peer state transfer covers)",
                    report.checkpoint_errors.len()
                )
            },
        );
    }
}

/// Hosts one protocol instance per shard behind the [`Sharded`]
/// combinator — or, at one shard, exactly the pre-sharding stack via
/// [`start_durable`], keeping single-group deployments byte-compatible
/// on the wire and on disk.
///
/// Durable shards each recover their own WAL and sealed checkpoints
/// under `<replica-dir>/shard-<s>/`; the [`ShardMember`] shim inside
/// each [`DurableProtocol`] stamps the log so a recovered directory
/// self-identifies.
fn host_shards<P: Protocol>(
    bound: AnyBound,
    config: TcpNodeConfig,
    seed: u64,
    sharding: ShardingPlan,
    durability: Option<Durability>,
    make: impl Fn() -> P,
) -> io::Result<AnyNode> {
    if sharding.shards <= 1 {
        return start_durable(bound, config, seed, make(), durability);
    }
    let router = ShardRouter::new(sharding.shards, sharding.keyed);
    match durability {
        None => {
            let instances: Vec<_> = (0..sharding.shards)
                .map(|s| ShardMember::new(ShardId(s), make()))
                .collect();
            bound.start(config, Sharded::new(router, instances))
        }
        Some(Durability { dir, group_commit }) => {
            let identity = replica_sealing_identity(seed, bound.id());
            let mut instances = Vec::with_capacity(sharding.shards as usize);
            let mut recovered = Vec::new();
            for s in 0..sharding.shards {
                let shard_dir = dir.join(format!("shard-{s}"));
                let member = ShardMember::new(ShardId(s), make());
                let durable = DurableProtocol::recover(member, &shard_dir, identity)?
                    .with_group_commit(group_commit);
                // A WAL that names another group means the directory is
                // miswired; serving the partially-recovered replica
                // would silently diverge from its peers, so startup
                // fails instead.
                if let Some(found) = durable.inner().wal_identity_mismatch() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "replica {} shard {s}: WAL in {} identifies itself as shard {} — \
                             the directory is miswired; refusing to start",
                            bound.id().0,
                            shard_dir.display(),
                            found.0,
                        ),
                    ));
                }
                log_recovery(bound.id(), Some(ShardId(s)), &durable);
                recovered.extend(recovered_event(&durable));
                instances.push(durable);
            }
            let node = bound.start(config, Sharded::new(router, instances))?;
            for event in recovered {
                node.telemetry().record_event(event);
            }
            Ok(node)
        }
    }
}

fn start_with_app<A: Application + 'static>(
    bound: AnyBound,
    config: TcpNodeConfig,
    protocol: ProtocolKind,
    seed: u64,
    make_app: impl Fn() -> A,
    durability: Option<Durability>,
    byzantine: Option<ByzantineMode>,
    sharding: ShardingPlan,
) -> io::Result<AnyNode> {
    let id = config.id;
    let n = config.peers.len();
    // Wrap order matters: DurableProtocol wraps ByzantineProtocol wraps
    // the replica, so mutations happen before output-withholding and
    // the WAL-before-network invariant survives (and the WAL records
    // the honest state machine, not the forgeries). Sharding stacks
    // outermost — every shard hosts the full stack, adversary included.
    match protocol {
        ProtocolKind::Pbft => {
            let cluster = cluster_config(n)?;
            let make = || PbftReplica::new(cluster.clone(), id, seed, make_app());
            match byzantine {
                None => host_shards(bound, config, seed, sharding, durability, make),
                Some(mode) => host_shards(bound, config, seed, sharding, durability, || {
                    ByzantineProtocol::new(make(), mode, seed, id, n)
                }),
            }
        }
        ProtocolKind::SplitBft => {
            let cluster = cluster_config(n)?;
            let make = || {
                SplitBftReplica::new(
                    cluster.clone(),
                    id,
                    seed,
                    make_app(),
                    ExecMode::Hardware,
                    CostModel::paper_calibrated(),
                )
            };
            match byzantine {
                None => host_shards(bound, config, seed, sharding, durability, make),
                Some(mode) => host_shards(bound, config, seed, sharding, durability, || {
                    ByzantineProtocol::new(make(), mode, seed, id, n)
                }),
            }
        }
        ProtocolKind::MinBft => {
            let cluster = HybridConfig::new(n).map_err(invalid)?;
            let make =
                || HybridReplica::new(cluster.clone(), id, seed, Usig::new(seed, id), make_app());
            match byzantine {
                None => host_shards(bound, config, seed, sharding, durability, make),
                Some(mode) => host_shards(bound, config, seed, sharding, durability, || {
                    ByzantineProtocol::new(make(), mode, seed, id, n)
                }),
            }
        }
    }
}

fn cluster_config(n: usize) -> io::Result<ClusterConfig> {
    ClusterConfig::new(n).map_err(invalid)
}

/// Matching replies a client needs to accept a result (`f + 1`) for
/// `protocol` at cluster size `n`.
///
/// # Errors
///
/// `InvalidInput` when `n` is below the protocol's minimum (4 for the
/// `3f + 1` stacks, 3 for the hybrid's `2f + 1`).
pub fn reply_quorum_for(protocol: ProtocolKind, n: usize) -> io::Result<usize> {
    Ok(match protocol {
        ProtocolKind::Pbft | ProtocolKind::SplitBft => cluster_config(n)?.reply_quorum(),
        ProtocolKind::MinBft => HybridConfig::new(n).map_err(invalid)?.reply_quorum(),
    })
}

/// Cross-process exclusive lock serializing the heavy subprocess-cluster
/// e2e suites (crash recovery, chaos, sharded recovery).
///
/// Each of those suites stands up a real multi-replica cluster under
/// sustained load. `cargo test` serializes tests *within* a binary (the
/// suites hold a static mutex) but runs separate test **binaries**
/// concurrently, so on small runners the clusters starve each other's
/// probe budgets into flaky timeouts. This advisory `flock` spans
/// processes; the lock releases when the returned handle drops.
pub fn e2e_cluster_lock() -> std::fs::File {
    let path = std::env::temp_dir().join("splitbft-e2e-cluster.lock");
    let file = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .open(&path)
        .expect("open e2e cluster lock file");
    file.lock().expect("lock e2e cluster lock file");
    file
}

/// Faulty replicas tolerated by `protocol` at cluster size `n` —
/// `⌊(n−1)/3⌋` for the `3f + 1` stacks, `⌊(n−1)/2⌋` for the hybrid.
///
/// # Errors
///
/// `InvalidInput` when `n` is below the protocol's minimum.
pub fn fault_tolerance_for(protocol: ProtocolKind, n: usize) -> io::Result<usize> {
    Ok(match protocol {
        ProtocolKind::Pbft | ProtocolKind::SplitBft => cluster_config(n)?.f(),
        ProtocolKind::MinBft => HybridConfig::new(n).map_err(invalid)?.f(),
    })
}

/// Pulls `--name value` out of a CLI argument list (shared by the
/// binary's subcommands and the bench module).
pub fn cli_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--name value` with a fallback, shared by the bench and
/// chaos argument parsers.
pub(crate) fn parse_cli_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match cli_flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name} got unparsable value {v:?}")),
    }
}

/// Rejects unknown flags and value-flags missing their value, given the
/// subcommand's vocabulary (value-taking flags and bare switches).
pub(crate) fn validate_cli_flags(
    args: &[String],
    value_flags: &[&str],
    bare_flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if bare_flags.contains(&arg.as_str()) {
            i += 1;
        } else if value_flags.contains(&arg.as_str()) {
            if i + 1 >= args.len() {
                return Err(format!("{arg} needs a value"));
            }
            i += 2;
        } else {
            return Err(format!("unknown flag {arg:?}"));
        }
    }
    Ok(())
}

/// Applies the `--batch-frames` / `--batch-bytes` / `--batch-linger-us`
/// CLI overrides onto `batch`, validating like the cluster-file parser
/// (the frame and byte limits must be positive).
///
/// # Errors
///
/// A human-readable message naming the offending flag.
pub fn apply_batch_flags(args: &[String], batch: &mut BatchPolicy) -> Result<(), String> {
    if let Some(frames) = cli_flag(args, "--batch-frames") {
        batch.max_frames =
            parse_positive(&frames).map_err(|m| format!("--batch-frames {m}, got {frames:?}"))?;
    }
    if let Some(bytes) = cli_flag(args, "--batch-bytes") {
        batch.max_bytes =
            parse_positive(&bytes).map_err(|m| format!("--batch-bytes {m}, got {bytes:?}"))?;
    }
    if let Some(us) = cli_flag(args, "--batch-linger-us") {
        let us: u64 =
            us.parse().map_err(|_| format!("--batch-linger-us must be an integer, got {us:?}"))?;
        batch.linger = Duration::from_micros(us);
    }
    Ok(())
}

/// Applies the durability CLI overrides (`--data-dir`,
/// `--wal-group-commit-us`) onto `options`, shared by the serve and
/// bench subcommands.
///
/// # Errors
///
/// A human-readable message naming the offending flag.
pub fn apply_durability_flags(args: &[String], options: &mut NodeOptions) -> Result<(), String> {
    if let Some(dir) = cli_flag(args, "--data-dir") {
        options.data_dir = Some(dir.into());
    }
    if let Some(us) = cli_flag(args, "--wal-group-commit-us") {
        let us: u64 = us
            .parse()
            .map_err(|_| format!("--wal-group-commit-us must be an integer, got {us:?}"))?;
        options.wal_group_commit = Duration::from_micros(us);
    }
    Ok(())
}

fn invalid<E: fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
}

/// A protocol-dispatching client state machine: issues authenticated
/// requests and recognizes completed reply quorums for whichever stack
/// the cluster runs.
#[derive(Debug)]
pub enum AnyClient {
    /// PBFT client (`f + 1` matching replies).
    Pbft(PbftClient),
    /// SplitBFT client in plaintext mode (`f + 1` matching replies).
    SplitBft(SplitBftClient),
    /// Hybrid client (`f + 1` matching replies of `2f + 1`).
    MinBft(HybridClient),
}

impl AnyClient {
    /// Creates the client for `protocol` against an `n`-replica cluster.
    ///
    /// Timestamps start at wall-clock microseconds so that repeated CLI
    /// invocations reusing one client id keep issuing fresh requests —
    /// replicas suppress duplicates by last-seen timestamp per client.
    pub fn new(
        protocol: ProtocolKind,
        n: usize,
        id: ClientId,
        seed: u64,
    ) -> io::Result<AnyClient> {
        let now = splitbft_types::Timestamp(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(1)
                .max(1),
        );
        Ok(match protocol {
            ProtocolKind::Pbft => {
                AnyClient::Pbft(PbftClient::new(cluster_config(n)?, id, seed).starting_at(now))
            }
            ProtocolKind::SplitBft => AnyClient::SplitBft(
                SplitBftClient::new(cluster_config(n)?, id, seed, 1)
                    .with_plaintext()
                    .starting_at(now),
            ),
            ProtocolKind::MinBft => AnyClient::MinBft(
                HybridClient::new(HybridConfig::new(n).map_err(invalid)?, id, seed)
                    .starting_at(now),
            ),
        })
    }

    /// Issues the next request carrying `op`.
    pub fn issue(&mut self, op: &[u8]) -> splitbft_types::Request {
        match self {
            AnyClient::Pbft(c) => c.issue(Bytes::copy_from_slice(op)),
            AnyClient::SplitBft(c) => c.issue(op),
            AnyClient::MinBft(c) => c.issue(Bytes::copy_from_slice(op)),
        }
    }

    /// Feeds one reply; returns the agreed result once a quorum matches.
    pub fn on_reply(&mut self, reply: &Reply) -> Option<Bytes> {
        match self {
            AnyClient::Pbft(c) => match c.on_reply(reply) {
                ClientEvent::Completed(r) => Some(r),
                _ => None,
            },
            AnyClient::SplitBft(c) => match c.on_reply(reply) {
                SplitClientEvent::Completed(r) => Some(r),
                _ => None,
            },
            AnyClient::MinBft(c) => match c.on_reply(reply) {
                HybridClientEvent::Completed(r) => Some(r),
                _ => None,
            },
        }
    }
}

/// Runs a closed-loop client against the cluster: `count` sequential
/// `op` requests to the view-0 primary, awaiting the reply quorum for
/// each. Returns the result of every completed request.
///
/// The transport is at-most-once (outboxes and reply queues drop under
/// failure and explicitly rely on client retransmission to recover), so
/// while a request lacks its quorum it is *periodically* retransmitted
/// to every reachable replica — the PBFT client rule. Periodic matters:
/// against an alive-but-faulty primary the first broadcast arms the
/// backups' request-aware timers, the resulting view change clears
/// their pending evidence, and only a *later* retransmission hands the
/// request to the new primary. Replicas that already executed it
/// re-send their cached reply.
pub fn run_client(
    file: &ClusterFile,
    protocol: ProtocolKind,
    client_id: ClientId,
    op: &[u8],
    count: usize,
    timeout: Duration,
) -> io::Result<Vec<Bytes>> {
    let mut client = AnyClient::new(protocol, file.n(), client_id, file.seed)?;
    let mut tcp = TcpClient::connect(client_id, &file.addrs(), timeout)?;
    let mut results = Vec::with_capacity(count);
    for i in 0..count {
        let request = client.issue(op);
        // Primary first; fall back to broadcast if it was unreachable.
        if tcp.send_to(0, std::slice::from_ref(&request)).is_err() {
            tcp.send_all(std::slice::from_ref(&request))?;
        }
        let deadline = Instant::now() + timeout;
        let resend_every = Duration::from_secs(2).min(timeout / 2).max(Duration::from_millis(100));
        let mut resend_at = Instant::now() + resend_every;
        let result = loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("request {i} timed out after {timeout:?}"),
                ));
            }
            if now >= resend_at {
                resend_at = now + resend_every;
                tcp.send_all(std::slice::from_ref(&request))?;
            }
            let wait = deadline.min(resend_at);
            match tcp.replies().recv_timeout(wait.saturating_duration_since(now)) {
                Ok(reply) => {
                    if let Some(result) = client.on_reply(&reply) {
                        break result;
                    }
                }
                Err(_) => continue,
            }
        };
        results.push(result);
    }
    tcp.close();
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# demo cluster
protocol = "pbft"
seed = 7
app = "kvs"

[[replica]]
id = 1
addr = "127.0.0.1:7101"

[[replica]]
id = 0
addr = "127.0.0.1:7100"  # out of order on purpose

[[replica]]
id = 2
addr = "127.0.0.1:7102"

[[replica]]
id = 3
addr = "127.0.0.1:7103"
"#;

    #[test]
    fn parses_example_file() {
        let file = parse_cluster_toml(EXAMPLE).unwrap();
        assert_eq!(file.protocol, ProtocolKind::Pbft);
        assert_eq!(file.seed, 7);
        assert_eq!(file.app, AppKind::Kvs);
        assert_eq!(file.n(), 4);
        // Sorted into id order regardless of file order.
        assert_eq!(file.replicas[0].id, ReplicaId(0));
        assert_eq!(file.addr_of(ReplicaId(2)), Some("127.0.0.1:7102".parse().unwrap()));
    }

    #[test]
    fn defaults_apply() {
        let file = parse_cluster_toml(
            "[[replica]]\nid = 0\naddr = \"127.0.0.1:9000\"\n",
        )
        .unwrap();
        assert_eq!(file.protocol, ProtocolKind::SplitBft);
        assert_eq!(file.seed, 42);
        assert_eq!(file.app, AppKind::Counter);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_cluster_toml("protocol = pbft\n").is_err(), "unquoted string");
        assert!(parse_cluster_toml("protocol = \"raft\"\n").is_err(), "unknown protocol");
        assert!(parse_cluster_toml("bogus = 1\n").is_err(), "unknown key");
        assert!(parse_cluster_toml("").is_err(), "no replicas");
        assert!(
            parse_cluster_toml("[[replica]]\nid = 1\naddr = \"127.0.0.1:1\"\n").is_err(),
            "ids must start at 0"
        );
        assert!(
            parse_cluster_toml("[[replica]]\nid = 0\n").is_err(),
            "missing addr"
        );
    }

    #[test]
    fn wal_group_commit_key_parses() {
        let file = parse_cluster_toml(
            "wal_group_commit_us = 250\n[[replica]]\nid = 0\naddr = \"127.0.0.1:9000\"\n",
        )
        .unwrap();
        assert_eq!(file.options.wal_group_commit, Duration::from_micros(250));
        assert!(
            parse_cluster_toml(
                "wal_group_commit_us = \"fast\"\n[[replica]]\nid = 0\naddr = \"127.0.0.1:9000\"\n",
            )
            .is_err(),
            "non-integer linger rejected"
        );

        let mut options = NodeOptions::default();
        apply_durability_flags(
            &["--wal-group-commit-us".into(), "500".into(), "--data-dir".into(), "/tmp/d".into()],
            &mut options,
        )
        .unwrap();
        assert_eq!(options.wal_group_commit, Duration::from_micros(500));
        assert_eq!(options.data_dir, Some(PathBuf::from("/tmp/d")));
        assert!(apply_durability_flags(
            &["--wal-group-commit-us".into(), "soon".into()],
            &mut options
        )
        .is_err());
    }

    #[test]
    fn protocol_kind_roundtrips_through_display() {
        for kind in [ProtocolKind::Pbft, ProtocolKind::SplitBft, ProtocolKind::MinBft] {
            assert_eq!(kind.to_string().parse::<ProtocolKind>().unwrap(), kind);
        }
    }
}
