//! The `splitbft-node bench` subcommand: cluster benchmarking end to
//! end.
//!
//! Drives a real TCP cluster with `splitbft-loadgen`'s pipelined
//! workload drivers and writes a `BENCH_<name>.json` report per run.
//! Two ways to get a cluster:
//!
//! - **Self-orchestrated** (no `--config`): binds `--replicas` nodes on
//!   OS-assigned localhost ports, runs the bench, shuts them down.
//!   This is what CI's smoke bench and the comparison sweep use.
//! - **External** (`--config cluster.toml`): targets an already-running
//!   deployment described by a cluster file.
//!
//! `--compare` sweeps all three protocols (and optionally several
//! send-path batch sizes via `--sweep-batch-frames`) in one invocation,
//! writing one report per combination plus a summary table.
//!
//! `--sweep-rate 500,2000,8000` runs an **open-loop saturation sweep**:
//! one fresh cluster and measurement per offered rate, folded into a
//! single `BENCH_rate_sweep_<protocol>.json` whose points chart the
//! latency/throughput curve and whose `knee_offered_rps` marks the
//! highest offered load the cluster still kept up with.
//!
//! `--data-dir <dir>` launches self-orchestrated replicas with the
//! durability plane enabled (WAL + sealed checkpoints under
//! `<dir>/replica-<i>/` and peer state transfer) — the configuration
//! the crash-recovery e2e exercises.
//!
//! For counter workloads the harness independently verifies commits: it
//! reads the counter through a regular closed-loop client before and
//! after the run, and reports the difference as `committed` — which
//! must equal the clients' observed completions when nothing timed out.

use crate::{
    apply_batch_flags, cli_flag as flag, fault_tolerance_for, parse_cli_flag as parse_flag,
    parse_cluster_toml, reply_quorum_for, run_client, start_replica_on, validate_cli_flags,
    AppKind, ClusterFile, NodeOptions, ProtocolKind,
};
use splitbft_loadgen::driver::{self, DriverConfig, LoadMode};
use splitbft_loadgen::report::{
    BatchSummary, BenchReport, MetricsSummary, RateSweepReport, ShardingSummary, SweepPoint,
};
use splitbft_obs::{MetricsServer, NodeTelemetry};
use splitbft_loadgen::workload::Workload;
use splitbft_net::backend::{AnyBound, AnyNode, TransportKind};
use splitbft_net::tcp::PeerAddr;
use splitbft_net::transport::BatchPolicy;
use splitbft_types::{ClientId, ReplicaId};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// A self-orchestrated localhost cluster: every replica is a full
/// socket node (real sockets, real threads) inside this process, on
/// whichever backend `options.transport` selects.
pub struct LocalCluster {
    nodes: Vec<AnyNode>,
    replicas: Vec<PeerAddr>,
}

impl LocalCluster {
    /// Binds `n` listeners on OS-assigned ports, then starts all `n`
    /// replicas with the complete address book.
    pub fn launch(
        n: usize,
        protocol: ProtocolKind,
        app: AppKind,
        seed: u64,
        options: &NodeOptions,
    ) -> io::Result<Self> {
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
        let mut bound = Vec::with_capacity(n);
        for id in 0..n {
            bound.push(AnyBound::bind(options.transport, ReplicaId(id as u32), loopback)?);
        }
        let replicas: Vec<PeerAddr> = bound
            .iter()
            .map(|b| Ok(PeerAddr { id: b.id(), addr: b.local_addr()? }))
            .collect::<io::Result<_>>()?;
        let nodes = bound
            .into_iter()
            .map(|b| start_replica_on(b, replicas.clone(), protocol, app, seed, options))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(LocalCluster { nodes, replicas })
    }

    /// The membership (id-ordered).
    pub fn replicas(&self) -> &[PeerAddr] {
        &self.replicas
    }

    /// Replica addresses in id order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.iter().map(|p| p.addr).collect()
    }

    /// Total WAL fsyncs across every node so far (`0` unless the
    /// cluster was launched with a data dir).
    pub fn fsyncs(&self) -> u64 {
        self.nodes.iter().map(AnyNode::fsyncs).sum()
    }

    /// Per-shard execution progress: the element-wise **max** across
    /// every node's gauge (replicas of one group track each other, so
    /// the max is the group's committed frontier), padded to `shards`
    /// entries.
    pub fn shard_progress(&self, shards: u32) -> Vec<u64> {
        let mut out = vec![0u64; shards.max(1) as usize];
        for node in &self.nodes {
            for (slot, value) in out.iter_mut().zip(node.shard_progress()) {
                *slot = (*slot).max(value);
            }
        }
        out
    }

    /// Per-shard WAL fsyncs **summed** across every node (each replica
    /// pays for its own log), padded to `shards` entries.
    pub fn shard_fsyncs(&self, shards: u32) -> Vec<u64> {
        let mut out = vec![0u64; shards.max(1) as usize];
        for node in &self.nodes {
            for (slot, value) in out.iter_mut().zip(node.shard_fsyncs()) {
                *slot += value;
            }
        }
        out
    }

    /// One node's telemetry handle (for serving `/metrics` during a
    /// self-orchestrated run).
    pub fn node_telemetry(&self, id: usize) -> std::sync::Arc<NodeTelemetry> {
        self.nodes[id].telemetry()
    }

    /// The cluster's final telemetry snapshot for the report's
    /// `metrics` section: counters summed across replicas, the inbound
    /// queue-depth high-water taken as the max (depths don't add
    /// meaningfully).
    pub fn metrics_summary(&self) -> MetricsSummary {
        let mut out = MetricsSummary::default();
        for node in &self.nodes {
            let snapshot = node.telemetry().snapshot();
            out.fsyncs += snapshot.fsyncs;
            out.ring_refusals += snapshot.ring_refusals;
            out.reconnects += snapshot.reconnects;
            out.queue_depth_high_water =
                out.queue_depth_high_water.max(snapshot.queue_depth_high_water);
            out.bytes_in += snapshot.bytes_in;
            out.bytes_out += snapshot.bytes_out;
        }
        out
    }

    /// Stops every node and joins their threads.
    pub fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
    }
}

/// Everything one `bench` invocation needs, parsed from CLI flags.
#[derive(Debug, Clone)]
pub struct BenchInvocation {
    /// Target an external cluster file instead of self-orchestrating.
    pub config_path: Option<String>,
    /// Protocols to run (one, or all three under `--compare`).
    pub protocols: Vec<ProtocolKind>,
    /// Replicated application.
    pub app: AppKind,
    /// Self-orchestrated cluster size.
    pub replicas: usize,
    /// Master seed (self-orchestrated; external clusters use the file's).
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Outstanding requests per client (closed loop).
    pub pipeline: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Open-loop offered rate; `None` = closed loop.
    pub rate: Option<f64>,
    /// Open-loop saturation sweep (`--sweep-rate a,b,c`): one run per
    /// offered rate per protocol, summarized into a single
    /// `BENCH_rate_sweep_*.json` charting the latency/throughput knee.
    pub sweep_rates: Vec<f64>,
    /// Workload knobs.
    pub workload: Workload,
    /// Send-path batch policies to run (one per report).
    pub batch_variants: Vec<BatchPolicy>,
    /// Replica view-change timer period.
    pub timeout_every: Option<Duration>,
    /// Durability root for self-orchestrated replicas (`--data-dir`):
    /// enables the WAL + sealed-checkpoint plane and peer state
    /// transfer on every node.
    pub data_dir: Option<PathBuf>,
    /// WAL group-commit linger (`--wal-group-commit-us`); zero fsyncs
    /// once per drained event.
    pub wal_group_commit: Duration,
    /// Consensus groups per replica (`--shards`). Above one, the same
    /// invocation first measures a single-shard baseline and the
    /// multi-shard report carries a `sharding` section with the scaling
    /// factor and per-shard gauges.
    pub shards: u32,
    /// Socket backends to run (`--transport`, comma-separated): each
    /// backend gets its own clusters and reports, so one invocation can
    /// place `blocking` and `evented` knees side by side.
    pub transports: Vec<TransportKind>,
    /// Report output directory.
    pub out_dir: PathBuf,
    /// Report name override (suffixed per combination when sweeping).
    pub name: Option<String>,
    /// Throughput-series window.
    pub window: Duration,
    /// Client retransmission interval.
    pub retry_every: Duration,
    /// Post-measurement drain budget.
    pub drain_timeout: Duration,
    /// First load-generator client id.
    pub client_id_base: u32,
    /// Serve replica 0's telemetry over HTTP for the run's duration
    /// (`--metrics-addr`): Prometheus text at `/metrics` plus
    /// `/healthz` and `/readyz`, so an operator (or the CI smoke job)
    /// can scrape a live bench. Self-orchestrated clusters only.
    pub metrics_addr: Option<SocketAddr>,
}

/// Parses `5s`, `500ms`, or a plain number of seconds.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let seconds = if let Some(ms) = s.strip_suffix("ms") {
        ms.parse::<f64>().map(|v| v / 1_000.0)
    } else if let Some(sec) = s.strip_suffix('s') {
        sec.parse::<f64>()
    } else {
        s.parse::<f64>()
    }
    .map_err(|_| format!("unparsable duration {s:?} (try 5s, 500ms)"))?;
    if !(seconds > 0.0) {
        return Err(format!("duration must be positive, got {s:?}"));
    }
    Ok(Duration::from_secs_f64(seconds))
}

const KNOWN_FLAGS: &[&str] = &[
    "--config", "--protocol", "--app", "--replicas", "--seed", "--clients", "--pipeline",
    "--duration", "--rate", "--keys", "--value-size", "--read-ratio", "--payload",
    "--batch-frames", "--batch-bytes", "--batch-linger-us", "--sweep-batch-frames",
    "--timeout-ms", "--out", "--name", "--window-ms", "--retry-ms", "--drain-secs",
    "--client-base", "--data-dir", "--sweep-rate", "--wal-group-commit-us", "--shards",
    "--transport", "--metrics-addr",
];

/// Parses the `bench` subcommand's arguments.
///
/// # Errors
///
/// A human-readable message for unknown flags, unparsable values, or
/// inconsistent combinations (e.g. `--compare` against `--config`).
pub fn parse_args(args: &[String]) -> Result<BenchInvocation, String> {
    let compare = args.iter().any(|a| a == "--compare");
    validate_cli_flags(args, KNOWN_FLAGS, &["--compare"])
        .map_err(|e| format!("bench: {e}"))?;

    let config_path = flag(args, "--config");
    if compare && config_path.is_some() {
        return Err(
            "--compare runs several protocols, but a --config cluster serves exactly one; \
             drop --config to self-orchestrate the sweep"
                .into(),
        );
    }
    let protocols = match (flag(args, "--protocol"), compare) {
        (Some(p), _) => vec![p.parse().map_err(|e: crate::ConfigError| e.to_string())?],
        (None, true) => vec![ProtocolKind::Pbft, ProtocolKind::SplitBft, ProtocolKind::MinBft],
        (None, false) => {
            if config_path.is_none() {
                return Err("pass --protocol <p>, --compare, or --config <file>".into());
            }
            Vec::new() // resolved from the file later
        }
    };

    let app: AppKind = match flag(args, "--app") {
        Some(a) => a.parse().map_err(|e: crate::ConfigError| e.to_string())?,
        None => AppKind::Counter,
    };
    let workload = match app {
        AppKind::Counter => Workload::Counter,
        AppKind::Kvs => Workload::Kvs {
            keys: parse_flag(args, "--keys", 1_000u64)?,
            value_size: parse_flag(args, "--value-size", 10usize)?,
            read_ratio: parse_flag(args, "--read-ratio", 0.0f64)?,
        },
        AppKind::Blockchain => {
            Workload::Blockchain { payload: parse_flag(args, "--payload", 64usize)? }
        }
    };

    let mut base_batch = BatchPolicy::default();
    apply_batch_flags(args, &mut base_batch)?;
    let batch_variants: Vec<BatchPolicy> = match flag(args, "--sweep-batch-frames") {
        None => vec![base_batch],
        Some(list) => {
            if config_path.is_some() {
                return Err(
                    "--sweep-batch-frames needs a self-orchestrated cluster (batching is a \
                     replica-side knob); drop --config"
                        .into(),
                );
            }
            list.split(',')
                .map(|v| {
                    let frames: usize = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("--sweep-batch-frames got {v:?}"))?;
                    let mut policy = base_batch;
                    policy.max_frames = frames.max(1);
                    Ok(policy)
                })
                .collect::<Result<_, String>>()?
        }
    };

    let timeout_ms: u64 = parse_flag(args, "--timeout-ms", 2_000u64)?;
    let rate = match flag(args, "--rate") {
        None => None,
        Some(r) => {
            Some(r.parse::<f64>().map_err(|_| format!("--rate got unparsable value {r:?}"))?)
        }
    };
    let sweep_rates: Vec<f64> = match flag(args, "--sweep-rate") {
        None => Vec::new(),
        Some(list) => {
            if rate.is_some() {
                return Err("--sweep-rate already chooses the offered rates; drop --rate".into());
            }
            let mut rates = list
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("--sweep-rate got {v:?}"))
                        .and_then(|r| {
                            if r > 0.0 {
                                Ok(r)
                            } else {
                                Err(format!("--sweep-rate rates must be positive, got {v:?}"))
                            }
                        })
                })
                .collect::<Result<Vec<f64>, String>>()?;
            if rates.is_empty() {
                return Err("--sweep-rate needs at least one rate".into());
            }
            rates.sort_by(f64::total_cmp);
            rates
        }
    };

    let shards = parse_flag(args, "--shards", 1u32)?;
    if shards == 0 {
        return Err("--shards must be a positive integer".into());
    }

    let transports: Vec<TransportKind> = match flag(args, "--transport") {
        None => vec![TransportKind::default()],
        Some(list) => {
            let mut kinds = Vec::new();
            for part in list.split(',') {
                let kind: TransportKind =
                    part.trim().parse().map_err(|e: String| format!("--transport: {e}"))?;
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
            if kinds.len() > 1 && config_path.is_some() {
                return Err(
                    "--transport with several backends needs a self-orchestrated cluster \
                     (a --config file's replicas already run one fixed transport)"
                        .into(),
                );
            }
            kinds
        }
    };

    Ok(BenchInvocation {
        config_path,
        protocols,
        app,
        replicas: parse_flag(args, "--replicas", 4usize)?,
        seed: parse_flag(args, "--seed", 42u64)?,
        clients: parse_flag(args, "--clients", 4usize)?,
        pipeline: parse_flag(args, "--pipeline", 1usize)?,
        duration: parse_duration(&flag(args, "--duration").unwrap_or_else(|| "5s".into()))?,
        rate,
        sweep_rates,
        workload,
        batch_variants,
        timeout_every: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        data_dir: flag(args, "--data-dir").map(PathBuf::from),
        wal_group_commit: Duration::from_micros(parse_flag(args, "--wal-group-commit-us", 0u64)?),
        shards,
        transports,
        out_dir: PathBuf::from(flag(args, "--out").unwrap_or_else(|| ".".into())),
        name: flag(args, "--name"),
        window: Duration::from_millis(parse_flag(args, "--window-ms", 1_000u64)?.max(1)),
        retry_every: Duration::from_millis(parse_flag(args, "--retry-ms", 1_000u64)?.max(1)),
        drain_timeout: Duration::from_secs(parse_flag(args, "--drain-secs", 15u64)?),
        client_id_base: parse_flag(args, "--client-base", 1_000u32)?,
        metrics_addr: match flag(args, "--metrics-addr") {
            None => None,
            Some(addr) => Some(
                addr.parse()
                    .map_err(|_| format!("--metrics-addr must be host:port, got {addr:?}"))?,
            ),
        },
    })
}

/// Runs the whole invocation: every protocol × batch-policy
/// combination, one report each.
///
/// # Errors
///
/// Setup/driver failures, and — so CI can gate on it — any run that
/// completed **zero** requests.
pub fn run(args: &[String]) -> Result<Vec<BenchReport>, String> {
    let invocation = parse_args(args)?;
    if !invocation.sweep_rates.is_empty() {
        return run_rate_sweep(&invocation);
    }
    let mut reports = Vec::new();
    let combos: Vec<(ProtocolKind, BatchPolicy)> = resolve_combos(&invocation)?;
    for &transport in &invocation.transports {
        for &(protocol, batch) in &combos {
            let report = run_one(&invocation, protocol, batch, invocation.rate, transport)
                .map_err(|e| e.to_string())?;
            println!("{}", report.summary_line());
            let path = report
                .write_to(&invocation.out_dir)
                .map_err(|e| format!("writing report: {e}"))?;
            println!("  wrote {}", path.display());
            reports.push(report);
        }
    }
    if let Some(empty) = reports.iter().find(|r| r.completed == 0) {
        return Err(format!("bench {:?} completed zero requests", empty.name));
    }
    Ok(reports)
}

/// The open-loop saturation sweep: one fresh cluster and run per
/// (protocol, offered rate), folded into one `BENCH_rate_sweep_*.json`
/// per protocol charting the latency/throughput knee.
fn run_rate_sweep(invocation: &BenchInvocation) -> Result<Vec<BenchReport>, String> {
    let combos = resolve_combos(invocation)?;
    let protocols: Vec<ProtocolKind> = {
        let mut seen = Vec::new();
        for (p, _) in &combos {
            if !seen.contains(p) {
                seen.push(*p);
            }
        }
        seen
    };
    let batch = invocation.batch_variants[0];
    let mut all_runs = Vec::new();
    let mut knees: Vec<(ProtocolKind, TransportKind, Option<f64>)> = Vec::new();
    for &transport in &invocation.transports {
        for &protocol in &protocols {
            let mut points = Vec::new();
            for &rate in &invocation.sweep_rates {
                let report = run_one(invocation, protocol, batch, Some(rate), transport)
                    .map_err(|e| e.to_string())?;
                println!("{}", report.summary_line());
                points.push(SweepPoint {
                    offered_rps: rate,
                    achieved_rps: report.throughput_rps,
                    p50_us: report.latency.p50_us,
                    p99_us: report.latency.p99_us,
                    timed_out: report.timed_out,
                });
                all_runs.push(report);
            }
            let base = invocation
                .name
                .clone()
                .map_or_else(|| protocol.to_string(), |n| format!("{n}_{protocol}"));
            let sweep = RateSweepReport {
                name: if invocation.transports.len() > 1 {
                    format!("{base}_{transport}")
                } else {
                    base
                },
                protocol: protocol.to_string(),
                transport: transport.to_string(),
                n: invocation.replicas,
                app: invocation.app.to_string(),
                clients: invocation.clients.max(1),
                duration: invocation.duration,
                points,
            };
            knees.push((protocol, transport, sweep.knee().map(|p| p.offered_rps)));
            println!("{}", sweep.summary_line());
            let path = sweep
                .write_to(&invocation.out_dir)
                .map_err(|e| format!("writing sweep report: {e}"))?;
            println!("  wrote {}", path.display());
        }
    }
    // When one invocation swept both socket backends, state the verdict
    // the artifacts exist to support: knee vs knee, same host, same run.
    for &protocol in &protocols {
        let knee = |kind: TransportKind| {
            knees
                .iter()
                .find(|(p, t, _)| *p == protocol && *t == kind)
                .and_then(|(_, _, k)| *k)
        };
        if let (Some(blocking), Some(evented)) =
            (knee(TransportKind::Blocking), knee(TransportKind::Evented))
        {
            println!(
                "{protocol}: evented knee {evented:.0} req/s vs blocking {blocking:.0} req/s \
                 ({:.2}x)",
                evented / blocking
            );
        }
    }
    if let Some(empty) = all_runs.iter().find(|r| r.completed == 0) {
        return Err(format!("bench {:?} completed zero requests", empty.name));
    }
    Ok(all_runs)
}

fn resolve_combos(
    invocation: &BenchInvocation,
) -> Result<Vec<(ProtocolKind, BatchPolicy)>, String> {
    let mut protocols = invocation.protocols.clone();
    if protocols.is_empty() {
        // `--config` without `--protocol`: the file decides.
        let path = invocation.config_path.as_deref().expect("checked in parse_args");
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        protocols.push(parse_cluster_toml(&text).map_err(|e| e.to_string())?.protocol);
    }
    let mut combos = Vec::new();
    for protocol in protocols {
        for batch in &invocation.batch_variants {
            combos.push((protocol, *batch));
        }
    }
    Ok(combos)
}

fn run_one(
    invocation: &BenchInvocation,
    protocol: ProtocolKind,
    batch: BatchPolicy,
    rate: Option<f64>,
    transport: TransportKind,
) -> io::Result<BenchReport> {
    // Multi-shard runs measure their own single-shard baseline first —
    // same invocation, same knobs — so the report's `sharding` section
    // can state the scaling factor rather than leave it to a separate
    // run nobody correlates.
    let baseline_rps = if invocation.shards > 1 && invocation.config_path.is_none() {
        let mut baseline = invocation.clone();
        if let Some(dir) = &invocation.data_dir {
            // Keep the baseline's WAL out of the sharded run's layout.
            baseline.data_dir = Some(dir.join("baseline-s1"));
        }
        let report = run_measurement(&baseline, protocol, batch, rate, 1, None, transport)?;
        println!(
            "  1-shard baseline: {:.1} req/s ({} completed)",
            report.throughput_rps, report.completed
        );
        Some(report.throughput_rps)
    } else {
        None
    };
    run_measurement(invocation, protocol, batch, rate, invocation.shards, baseline_rps, transport)
}

fn run_measurement(
    invocation: &BenchInvocation,
    protocol: ProtocolKind,
    batch: BatchPolicy,
    rate: Option<f64>,
    shards: u32,
    baseline_rps: Option<f64>,
    transport: TransportKind,
) -> io::Result<BenchReport> {
    let options = NodeOptions {
        batch,
        timeout_every: invocation.timeout_every,
        data_dir: invocation.data_dir.clone(),
        wal_group_commit: invocation.wal_group_commit,
        byzantine: None,
        shards,
        fault_injection: false,
        status_admin: false,
        transport,
    };

    // A cluster: launched here, or described by the external file.
    let (cluster, file) = match &invocation.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let file = parse_cluster_toml(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            (None, file)
        }
        None => {
            let cluster = LocalCluster::launch(
                invocation.replicas,
                protocol,
                invocation.app,
                invocation.seed,
                &options,
            )?;
            let file = ClusterFile {
                protocol,
                seed: invocation.seed,
                app: invocation.app,
                options,
                replicas: cluster.replicas().to_vec(),
                byzantine: Vec::new(),
            };
            (Some(cluster), file)
        }
    };

    // Live telemetry for the run: replica 0's gauges over HTTP, so an
    // operator (or the CI smoke job) can scrape a bench in flight.
    let metrics_server = match (&cluster, invocation.metrics_addr) {
        (Some(cluster), Some(addr)) => {
            let server = MetricsServer::serve(addr, cluster.node_telemetry(0))?;
            eprintln!(
                "bench: metrics on http://{}/metrics (health: /healthz, /readyz)",
                server.local_addr()
            );
            Some(server)
        }
        (None, Some(_)) => {
            eprintln!("bench: --metrics-addr ignored (external cluster has no local telemetry)");
            None
        }
        _ => None,
    };

    let result = (|| -> io::Result<BenchReport> {
        let mut config =
            DriverConfig::new(file.addrs(), file.seed, reply_quorum_for(protocol, file.n())?);
        config.clients = invocation.clients.max(1);
        config.pipeline = invocation.pipeline.max(1);
        config.duration = invocation.duration;
        config.mode = match rate {
            None => LoadMode::Closed,
            Some(rate) => LoadMode::Open { rate },
        };
        config.workload = invocation.workload.clone();
        config.window = invocation.window;
        config.retry_every = invocation.retry_every;
        config.drain_timeout = invocation.drain_timeout;
        config.client_id_base = invocation.client_id_base;
        config.shards = shards;

        // Counter workloads get an independent commit probe: the counter
        // value before/after the run, read through a regular client.
        let before = probe_counter(&file, protocol, invocation)?;
        let stats = driver::run(&config)?;
        let committed = match probe_counter(&file, protocol, invocation)? {
            Some(after) => after - before.unwrap_or(0),
            None => stats.completed,
        };

        let name = report_name(invocation, protocol, &batch, shards, transport);
        let report = BenchReport::from_stats(
            name,
            protocol.to_string(),
            file.n(),
            fault_tolerance_for(protocol, file.n())?,
            file.app.to_string(),
            invocation.workload.clone(),
            config.mode,
            config.clients,
            config.pipeline,
            config.duration,
            BatchSummary {
                max_frames: batch.max_frames,
                max_bytes: batch.max_bytes,
                linger_us: batch.linger.as_micros() as u64,
            },
            &stats,
            committed,
        );
        // Multi-shard runs carry the scaling evidence: per-shard
        // completions from the clients' quorum trackers, per-shard
        // progress/fsync gauges from the in-process nodes, and the
        // baseline comparison.
        if shards <= 1 {
            return Ok(report);
        }
        let (progress, fsyncs) = match &cluster {
            Some(c) => (c.shard_progress(shards), c.shard_fsyncs(shards)),
            None => (vec![0; shards as usize], vec![0; shards as usize]),
        };
        let throughput = report.throughput_rps;
        Ok(report.with_sharding(ShardingSummary {
            shards,
            per_shard_completed: stats.per_shard_completed.clone(),
            per_shard_progress: progress,
            per_shard_fsyncs: fsyncs,
            baseline_rps,
            scaling_x: baseline_rps
                .filter(|b| *b > 0.0)
                .map(|b| throughput / b),
        }))
    })();

    // Self-orchestrated runs close with the nodes' own gauges: every
    // report carries a final telemetry snapshot (so BENCH_*.json is
    // self-contained evidence), and durable runs additionally report
    // the durability plane's fsync cost.
    let result = result.map(|report| match &cluster {
        Some(cluster) => {
            let report = report.with_metrics(cluster.metrics_summary());
            if invocation.data_dir.is_none() {
                return report;
            }
            let fsyncs = cluster.fsyncs();
            let completed = report.completed;
            report.with_durability(splitbft_loadgen::report::DurabilitySummary {
                wal_group_commit_us: invocation.wal_group_commit.as_micros() as u64,
                fsyncs,
                fsyncs_per_completed: (completed > 0).then(|| fsyncs as f64 / completed as f64),
            })
        }
        None => report,
    });
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    if let Some(cluster) = cluster {
        cluster.shutdown();
    }
    result
}

/// Reads the replicated counter through a closed-loop client. `None`
/// for non-counter workloads (no independent probe exists for them).
fn probe_counter(
    file: &ClusterFile,
    protocol: ProtocolKind,
    invocation: &BenchInvocation,
) -> io::Result<Option<u64>> {
    if !matches!(invocation.workload, Workload::Counter) {
        return Ok(None);
    }
    let probe_id = ClientId(invocation.client_id_base.saturating_sub(1));
    let results =
        run_client(file, protocol, probe_id, b"read", 1, Duration::from_secs(30))?;
    let bytes: [u8; 8] = results[0][..].try_into().map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "counter read returned non-u64 result")
    })?;
    Ok(Some(u64::from_le_bytes(bytes)))
}

fn report_name(
    invocation: &BenchInvocation,
    protocol: ProtocolKind,
    batch: &BatchPolicy,
    shards: u32,
    transport: TransportKind,
) -> String {
    let base = match &invocation.name {
        Some(name) => name.clone(),
        None => format!(
            "{protocol}_{}_c{}_p{}",
            invocation.app, invocation.clients, invocation.pipeline
        ),
    };
    let multi_protocol = invocation.protocols.len() > 1 && invocation.name.is_some();
    let base = if multi_protocol { format!("{base}_{protocol}") } else { base };
    // Single-transport runs keep their pre-transport-plane names.
    let base =
        if invocation.transports.len() > 1 { format!("{base}_{transport}") } else { base };
    // Single-shard runs keep their pre-sharding names (and bytes).
    let base = if shards > 1 { format!("{base}_s{shards}") } else { base };
    if invocation.batch_variants.len() > 1 {
        format!("{base}_bf{}", batch.max_frames)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_issue_invocation() {
        let inv = parse_args(&args(&[
            "--protocol", "splitbft", "--clients", "8", "--pipeline", "4", "--duration", "5s",
        ]))
        .unwrap();
        assert_eq!(inv.protocols, vec![ProtocolKind::SplitBft]);
        assert_eq!(inv.clients, 8);
        assert_eq!(inv.pipeline, 4);
        assert_eq!(inv.duration, Duration::from_secs(5));
        assert!(inv.rate.is_none());
        assert_eq!(inv.batch_variants.len(), 1);
    }

    #[test]
    fn compare_covers_all_protocols_and_sweeps_batches() {
        let inv = parse_args(&args(&["--compare", "--sweep-batch-frames", "1,64"])).unwrap();
        assert_eq!(inv.protocols.len(), 3);
        assert_eq!(inv.batch_variants.len(), 2);
        assert_eq!(inv.batch_variants[0].max_frames, 1);
        assert_eq!(inv.batch_variants[1].max_frames, 64);
    }

    #[test]
    fn durations_parse_with_suffixes() {
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2").unwrap(), Duration::from_secs(2));
        assert!(parse_duration("0s").is_err());
        assert!(parse_duration("fast").is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_combos() {
        assert!(parse_args(&args(&["--protcol", "pbft"])).is_err());
        assert!(parse_args(&args(&[])).is_err(), "needs protocol, compare, or config");
        assert!(
            parse_args(&args(&[
                "--config", "x.toml", "--sweep-batch-frames", "1,2",
            ]))
            .is_err(),
            "sweep requires self-orchestration"
        );
        assert!(
            parse_args(&args(&["--compare", "--config", "x.toml"])).is_err(),
            "compare runs several protocols; a config cluster serves one"
        );
        assert!(
            parse_args(&args(&["--protocol", "pbft", "--batch-frames", "0"])).is_err(),
            "batch limits must be positive, matching the TOML parser"
        );
    }

    #[test]
    fn sweep_rate_parses_sorted_and_rejects_bad_combos() {
        let inv = parse_args(&args(&[
            "--protocol", "splitbft", "--sweep-rate", "2000,500,8000",
        ]))
        .unwrap();
        assert_eq!(inv.sweep_rates, vec![500.0, 2000.0, 8000.0]);
        assert!(
            parse_args(&args(&[
                "--protocol", "pbft", "--sweep-rate", "100", "--rate", "50",
            ]))
            .is_err(),
            "--sweep-rate and --rate are exclusive"
        );
        assert!(
            parse_args(&args(&["--protocol", "pbft", "--sweep-rate", "0"])).is_err(),
            "rates must be positive"
        );
        assert!(
            parse_args(&args(&["--protocol", "pbft", "--sweep-rate", "fast"])).is_err(),
            "rates must parse"
        );
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        let inv = parse_args(&args(&["--protocol", "pbft", "--shards", "4"])).unwrap();
        assert_eq!(inv.shards, 4);
        let default = parse_args(&args(&["--protocol", "pbft"])).unwrap();
        assert_eq!(default.shards, 1);
        assert!(parse_args(&args(&["--protocol", "pbft", "--shards", "0"])).is_err());
        assert!(parse_args(&args(&["--protocol", "pbft", "--shards", "many"])).is_err());
    }

    #[test]
    fn transport_flag_parses_a_comma_list() {
        let default = parse_args(&args(&["--protocol", "pbft"])).unwrap();
        assert_eq!(default.transports, vec![TransportKind::Blocking]);
        let inv = parse_args(&args(&[
            "--protocol", "pbft", "--transport", "blocking,evented",
        ]))
        .unwrap();
        assert_eq!(inv.transports, vec![TransportKind::Blocking, TransportKind::Evented]);
        assert!(parse_args(&args(&["--protocol", "pbft", "--transport", "uring"])).is_err());
        assert!(
            parse_args(&args(&[
                "--config", "x.toml", "--transport", "blocking,evented",
            ]))
            .is_err(),
            "a config file's replicas run one fixed transport"
        );
    }

    #[test]
    fn data_dir_flag_flows_into_the_invocation() {
        let inv = parse_args(&args(&["--protocol", "pbft", "--data-dir", "/tmp/x"])).unwrap();
        assert_eq!(inv.data_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn kvs_knobs_flow_into_the_workload() {
        let inv = parse_args(&args(&[
            "--protocol", "pbft", "--app", "kvs", "--keys", "50", "--value-size", "100",
            "--read-ratio", "0.5",
        ]))
        .unwrap();
        assert_eq!(
            inv.workload,
            Workload::Kvs { keys: 50, value_size: 100, read_ratio: 0.5 }
        );
    }
}
