//! Crash-recovery end to end, for all three protocols.
//!
//! Each scenario stands up a real 4-replica cluster of `splitbft-node
//! serve` **subprocesses** (fixed localhost ports, per-replica
//! `--data-dir`), drives sustained counter load from this process,
//! `SIGKILL`s one backup mid-load, restarts it from its data directory,
//! and asserts:
//!
//! 1. the cluster's committed count keeps advancing throughout (the
//!    counter read after the crash+restart is well above the pre-crash
//!    value);
//! 2. the restarted replica *rejoins*: it ends up executing new
//!    requests itself (observed by a reply carrying its replica id),
//!    which requires WAL/sealed-checkpoint recovery plus peer state
//!    transfer to have worked;
//! 3. disk growth is bounded: the WAL has been GC'd past sealed stable
//!    checkpoints (small log file, at most two retained checkpoint
//!    files, at least one sealed).
//!
//! `SIGKILL` (not a graceful shutdown) is the point: nothing gets a
//! chance to flush, so only what the WAL fsynced before the kill can
//! survive — exactly the durability contract under test.

use splitbft_loadgen::driver::{self, DriverConfig};
use splitbft_net::tcp::TcpClient;
use splitbft_node::{reply_quorum_for, run_client, ClusterFile, ProtocolKind};
use splitbft_types::{ClientId, ReplicaId, Request, RequestId, Timestamp};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const N: usize = 4;
const KILLED: usize = 3; // a backup: the primary (0) keeps ordering

/// Kills every child on drop, so a failing assert never leaks replica
/// processes into the test runner.
struct Cluster {
    children: Vec<Option<Child>>,
    config_path: PathBuf,
    data_dir: PathBuf,
    addrs: Vec<SocketAddr>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn free_ports(n: usize) -> Vec<u16> {
    // Bind ephemeral listeners to reserve distinct ports, then release
    // them. (Small race with other processes; retried by the caller's
    // serve-spawn health check failing loudly.)
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    listeners.iter().map(|l| l.local_addr().expect("addr").port()).collect()
}

fn spawn_replica(config: &Path, id: usize, data_dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_splitbft-node"))
        .args([
            "serve",
            "--config",
            config.to_str().expect("utf8 path"),
            "--replica",
            &id.to_string(),
            "--data-dir",
            data_dir.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn splitbft-node serve")
}

fn launch(protocol: ProtocolKind) -> Cluster {
    let root = std::env::temp_dir().join(format!(
        "splitbft-crash-e2e-{protocol}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scenario dir");

    let ports = free_ports(N);
    let addrs: Vec<SocketAddr> =
        ports.iter().map(|p| format!("127.0.0.1:{p}").parse().expect("addr")).collect();
    let mut toml = format!(
        "protocol = \"{protocol}\"\nseed = 42\napp = \"counter\"\ntimeout_ms = 400\n"
    );
    for (id, port) in ports.iter().enumerate() {
        toml.push_str(&format!("\n[[replica]]\nid = {id}\naddr = \"127.0.0.1:{port}\"\n"));
    }
    let config_path = root.join("cluster.toml");
    std::fs::write(&config_path, toml).expect("write cluster.toml");

    let data_dir = root.join("data");
    let children = (0..N)
        .map(|id| Some(spawn_replica(&config_path, id, &data_dir)))
        .collect();
    Cluster { children, config_path, data_dir, addrs }
}

fn parse_file(cluster: &Cluster) -> ClusterFile {
    splitbft_node::parse_cluster_toml(
        &std::fs::read_to_string(&cluster.config_path).expect("read cluster.toml"),
    )
    .expect("parse cluster.toml")
}

/// Reads the replicated counter through a regular quorum client.
fn read_counter(file: &ClusterFile, protocol: ProtocolKind, probe: u32) -> u64 {
    let results = run_client(
        file,
        protocol,
        ClientId(probe),
        b"read",
        1,
        Duration::from_secs(30),
    )
    .expect("counter probe");
    u64::from_le_bytes(results[0][..].try_into().expect("u64 result"))
}

/// Waits until the restarted replica itself executes a fresh request:
/// issues reads at the primary and watches the raw reply stream for one
/// carrying `from`'s id. Execution is strictly sequential in every
/// protocol, so a reply to a *new* request proves the replica caught up
/// through state transfer.
fn await_rejoin(
    addrs: &[SocketAddr],
    seed: u64,
    from: ReplicaId,
    probe: u32,
    deadline: Duration,
) -> bool {
    let client = ClientId(probe);
    let mac = splitbft_crypto::client_mac_key(seed, client);
    let mut tcp = TcpClient::connect(client, addrs, Duration::from_secs(10)).expect("connect");
    let start = Instant::now();
    let mut ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1);
    let mut rejoined = false;
    'outer: while start.elapsed() < deadline {
        ts += 1;
        let id = RequestId { client, timestamp: Timestamp(ts) };
        let op = bytes::Bytes::from_static(b"read");
        let auth = mac.tag(&Request::auth_bytes(id, &op, false));
        let request = Request { id, op, encrypted: false, auth };
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let wait_until = Instant::now() + Duration::from_millis(1500);
        while Instant::now() < wait_until {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.replica == from && reply.request.timestamp.0 >= ts => {
                    rejoined = true;
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    tcp.close();
    rejoined
}

/// Background load for the whole scenario: closed-loop, enough clients
/// to keep checkpoints flowing, long enough to span kill + restart.
fn spawn_load(
    addrs: Vec<SocketAddr>,
    quorum: usize,
    duration: Duration,
) -> std::thread::JoinHandle<driver::LoadStats> {
    std::thread::spawn(move || {
        let mut config = DriverConfig::new(addrs, 42, quorum);
        config.clients = 3;
        config.pipeline = 4;
        config.duration = duration;
        config.retry_every = Duration::from_millis(500);
        config.drain_timeout = Duration::from_secs(20);
        driver::run(&config).expect("load driver")
    })
}

fn wal_path(cluster: &Cluster, id: usize) -> PathBuf {
    cluster.data_dir.join(format!("replica-{id}")).join("wal.log")
}

fn crash_recovery_scenario(protocol: ProtocolKind) {
    // Serialize against the other cluster-heavy test binaries (cargo
    // runs test binaries concurrently; clusters starve each other).
    let _lock = splitbft_node::e2e_cluster_lock();
    let mut cluster = launch(protocol);
    let file = parse_file(&cluster);
    let quorum = reply_quorum_for(protocol, N).expect("quorum");

    // Cluster is up once a request completes end to end.
    let before_load = read_counter(&file, protocol, 77);

    let load = spawn_load(cluster.addrs.clone(), quorum, Duration::from_secs(10));
    std::thread::sleep(Duration::from_secs(3)); // build up committed state

    // SIGKILL the backup: no flush, no goodbye.
    let killed_before = std::fs::metadata(wal_path(&cluster, KILLED)).map(|m| m.len());
    {
        let child = cluster.children[KILLED].as_mut().expect("child");
        child.kill().expect("SIGKILL");
        let _ = child.wait();
    }
    let mid = read_counter(&file, protocol, 78);
    assert!(
        mid >= before_load,
        "{protocol}: counter went backwards ({before_load} -> {mid})"
    );

    std::thread::sleep(Duration::from_secs(1));
    cluster.children[KILLED] =
        Some(spawn_replica(&cluster.config_path, KILLED, &cluster.data_dir));

    // The cluster never stopped committing...
    let stats = load.join().expect("load thread");
    assert!(stats.completed > 0, "{protocol}: load completed zero requests");
    let after = read_counter(&file, protocol, 79);
    assert!(
        after > mid,
        "{protocol}: committed count stopped advancing after the crash ({mid} -> {after})"
    );

    // ...and the restarted replica rejoins: it executes new requests.
    assert!(
        await_rejoin(
            &cluster.addrs,
            file.seed,
            ReplicaId(KILLED as u32),
            80,
            Duration::from_secs(30),
        ),
        "{protocol}: replica {KILLED} never executed a fresh request after restarting"
    );

    // Bounded disk growth: checkpoints sealed, WAL GC'd past them.
    let replica_dir = cluster.data_dir.join(format!("replica-{KILLED}"));
    let sealed: Vec<_> = std::fs::read_dir(&replica_dir)
        .expect("replica data dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".sealed"))
        .collect();
    assert!(
        !sealed.is_empty(),
        "{protocol}: no sealed checkpoint was ever written"
    );
    assert!(
        sealed.len() <= 2,
        "{protocol}: stale sealed checkpoints not pruned ({})",
        sealed.len()
    );
    let wal = std::fs::metadata(wal_path(&cluster, KILLED)).expect("wal").len();
    assert!(
        wal < 256 * 1024,
        "{protocol}: WAL grew unboundedly ({wal} bytes) — GC past sealed checkpoints failed"
    );
    let _ = killed_before; // pre-kill size, useful when debugging

    // TcpClient in run_client-based probes used ids 77-80; nothing else
    // to clean: Cluster::drop kills the children, temp dir stays for
    // post-mortem on failure.
    let _ = std::fs::remove_dir_all(cluster.data_dir.parent().expect("root"));
}

#[test]
fn pbft_replica_recovers_from_sigkill_mid_load() {
    crash_recovery_scenario(ProtocolKind::Pbft);
}

#[test]
fn splitbft_replica_recovers_from_sigkill_mid_load() {
    crash_recovery_scenario(ProtocolKind::SplitBft);
}

#[test]
fn minbft_replica_recovers_from_sigkill_mid_load() {
    crash_recovery_scenario(ProtocolKind::MinBft);
}
