//! Chaos orchestration end to end.
//!
//! Drives real fault schedules against real `splitbft-node serve`
//! subprocess clusters (the same binary path `splitbft-node chaos`
//! uses), asserting the report's contents rather than just its
//! existence:
//!
//! - **rolling restart, splitbft**: every replica is SIGKILLed and
//!   restarted in sequence while commits keep advancing, every victim
//!   rejoins, and — the point of the broker's new suffix ring — at
//!   least one victim rejoins via the **log-suffix path** (observed as
//!   `suffix_messages_applied > 0` in the report, not merely a
//!   checkpoint restore).
//! - **staggered start, pbft**: client traffic begins before any
//!   quorum exists; commits start once `n − 1` replicas are up and the
//!   last starter catches up.
//! - **equivocating primary, pbft n=4**: replica 0 serves in
//!   `--byzantine equivocating-primary` mode; the safety cross-check
//!   sees no committed fork and commits recover past the view change.
//! - **concurrent victims, splitbft n=7 (f=2)**: a single partition
//!   cuts two replicas at once; the five-replica side keeps committing
//!   (exactly `2f + 1`) and commits resume within budget after heal.
//! - **drain restart, splitbft**: every replica is SIGTERM'd in turn
//!   and must exit 0 *gracefully* — stop admitting, finish in-flight,
//!   seal, flush — then restart and rejoin, with the safety monitor
//!   proving zero lost committed requests across every drain.
//!
//! Rejoin detection and rejoin evidence come from the victims' `STATUS`
//! snapshots and event journals, not stderr grepping. The
//! three-protocol rolling-restart matrix runs in CI's `chaos` job;
//! keeping one scenario per protocol family here bounds `cargo test`
//! wall-clock.

use splitbft_chaos::schedule;
use splitbft_chaos::{run_scenario, ChaosConfig};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Each scenario stands up a real subprocess cluster under sustained
/// load; run concurrently they contend for cores and starve each
/// other's probe budgets into flaky timeouts. One at a time, like CI —
/// the mutex serializes within this binary, the file lock against the
/// other cluster-heavy test binaries (crash_recovery, sharded_e2e).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> (MutexGuard<'static, ()>, std::fs::File) {
    let guard = SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    (guard, splitbft_node::e2e_cluster_lock())
}

fn config_for(protocol: &str, scenario: &str, n: usize, reply_quorum: usize) -> ChaosConfig {
    let root = std::env::temp_dir().join(format!(
        "splitbft-chaos-e2e-{scenario}-{protocol}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    ChaosConfig::new(
        PathBuf::from(env!("CARGO_BIN_EXE_splitbft-node")),
        protocol,
        n,
        reply_quorum,
        root,
    )
}

#[test]
fn splitbft_rolling_restart_rejoins_via_the_log_suffix_path() {
    let _guard = serial();
    let config = config_for("splitbft", "rolling", 4, 2);
    let schedule = schedule::rolling_restart(4);
    let report = run_scenario(&config, &schedule).expect("rolling restart must complete");

    assert!(report.ok(), "a phase assertion failed:\n{}", report.to_json());
    assert_eq!(report.phases.len(), 4, "one phase per replica");
    for phase in &report.phases {
        assert_eq!(phase.rejoined, Some(true), "{} victim never rejoined", phase.name);
        assert!(
            matches!((phase.commits_before, phase.commits_after), (Some(b), Some(a)) if a > b),
            "{} commits did not advance: {:?} -> {:?}",
            phase.name,
            phase.commits_before,
            phase.commits_after,
        );
    }
    // The acceptance criterion for the broker suffix ring: rejoin
    // observed through the log path, not only checkpoint restore —
    // suffix messages were served AND executing them moved progress.
    assert!(
        report.suffix_messages_applied() > 0,
        "no victim applied state-transfer suffix messages — the splitbft broker \
         served an empty log suffix:\n{}",
        report.to_json()
    );
    assert!(
        report.suffix_progress() > 0,
        "suffix messages were fed but bought no execution progress — victims \
         rejoined through checkpoints only:\n{}",
        report.to_json()
    );
    assert!(report.load_completed > 0, "background load completed nothing");

    // The report writes and parses back as the chaos schema.
    let out = config.root.parent().expect("temp root").to_path_buf();
    let path = report.write_to(&out).expect("write report");
    let text = std::fs::read_to_string(&path).expect("read report back");
    assert!(text.contains("\"schema\": \"splitbft-chaos/v1\""));
    assert!(text.contains("\"scenario\": \"rolling-restart\""));
    let _ = std::fs::remove_file(path);
}

#[test]
fn splitbft_drain_restart_loses_no_committed_requests() {
    let _guard = serial();
    let config = config_for("splitbft", "drain", 4, 2);
    let schedule = schedule::drain_restart(4);
    let report = run_scenario(&config, &schedule).expect("drain restart must complete");

    assert!(report.ok(), "a phase assertion failed:\n{}", report.to_json());
    assert_eq!(report.phases.len(), 4, "one graceful cycle per replica");
    for phase in &report.phases {
        // The drain step itself fails the phase unless the victim
        // exited 0 within the budget, so `ok` already covers the
        // graceful part; rejoin proves the restart side.
        assert_eq!(phase.rejoined, Some(true), "{} victim never rejoined", phase.name);
    }
    // The point of the scenario: everything the monitor saw accepted
    // (an f + 1 matching quorum) survived every SIGTERM — a lost
    // committed increment would re-issue its counter value after the
    // restart and register as a fork.
    assert!(
        report.safety_commits > 0,
        "the safety monitor committed nothing — the zero-loss check never engaged"
    );
    assert!(
        report.safety_violations.is_empty(),
        "committed request lost (or forked) across a graceful drain:\n{:?}",
        report.safety_violations
    );

    let out = config.root.parent().expect("temp root").to_path_buf();
    let path = report.write_to(&out).expect("write report");
    assert!(path.ends_with("BENCH_chaos_drain-restart_splitbft.json"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn pbft_staggered_start_commits_once_quorum_forms() {
    let _guard = serial();
    let config = config_for("pbft", "staggered", 4, 2);
    let schedule = schedule::staggered_start(4);
    let report = run_scenario(&config, &schedule).expect("staggered start must complete");

    assert!(report.ok(), "a phase assertion failed:\n{}", report.to_json());
    // Before quorum: nothing to probe. After: commits flow and the last
    // starter executes fresh requests.
    let last = report.phases.last().expect("phases");
    assert_eq!(last.rejoined, Some(true), "late starter never caught up");
    assert!(report.load_completed > 0, "no commits despite a full cluster");
}

#[test]
fn pbft_survives_an_equivocating_primary_with_safety_intact() {
    let _guard = serial();
    let config = config_for("pbft", "equivocate", 4, 2);
    let schedule = schedule::equivocate_under_load(4);
    let report =
        run_scenario(&config, &schedule).expect("equivocating primary must not stop the cluster");

    assert!(report.ok(), "a phase assertion failed:\n{}", report.to_json());
    // Liveness recovery: the honest backups starve the split
    // pre-prepares of a prepare quorum, time out, and elect replica 1 —
    // commits must advance across *both* phases after that.
    for phase in &report.phases {
        assert!(
            matches!((phase.commits_before, phase.commits_after), (Some(b), Some(a)) if a > b),
            "{} commits did not advance past the equivocator: {:?} -> {:?}",
            phase.name,
            phase.commits_before,
            phase.commits_after,
        );
    }
    // Safety, non-vacuously: the monitor actually committed requests
    // and none of its f + 1 quorums ever disagreed on a counter value.
    assert!(
        report.safety_commits > 0,
        "the safety monitor committed nothing — the cross-check never engaged"
    );
    assert!(
        report.safety_violations.is_empty(),
        "committed fork under equivocation:\n{:?}",
        report.safety_violations
    );

    let out = config.root.parent().expect("temp root").to_path_buf();
    let path = report.write_to(&out).expect("write report");
    let text = std::fs::read_to_string(&path).expect("read report back");
    assert!(path.ends_with("BENCH_chaos_equivocate-under-load_pbft.json"));
    assert!(text.contains("\"safety\""));
    let _ = std::fs::remove_file(path);
}

#[test]
fn splitbft_commits_through_and_after_a_double_partition() {
    let _guard = serial();
    let config = config_for("splitbft", "double-cut", 7, 3);
    let schedule = schedule::concurrent_victim(7);
    let report =
        run_scenario(&config, &schedule).expect("double partition on n=7 must not stop commits");

    assert!(report.ok(), "a phase assertion failed:\n{}", report.to_json());
    assert_eq!(report.phases.len(), 2, "cut phase then heal phase");
    // Under the cut the connected side is exactly 2f + 1 = 5 replicas —
    // the minimum shape that can still commit; after the heal the
    // victims are back and commits must resume within the phase budget.
    for phase in &report.phases {
        assert!(
            matches!((phase.commits_before, phase.commits_after), (Some(b), Some(a)) if a > b),
            "{} commits did not advance: {:?} -> {:?}",
            phase.name,
            phase.commits_before,
            phase.commits_after,
        );
    }
    assert!(report.safety_commits > 0, "safety monitor committed nothing");
    assert!(
        report.safety_violations.is_empty(),
        "committed fork across the partition heal:\n{:?}",
        report.safety_violations
    );

    let out = config.root.parent().expect("temp root").to_path_buf();
    let path = report.write_to(&out).expect("write report");
    assert!(path.ends_with("BENCH_chaos_concurrent-victim_splitbft.json"));
    let _ = std::fs::remove_file(path);
}
