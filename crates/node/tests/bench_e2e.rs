//! End-to-end acceptance test for the loadgen subsystem: for each of
//! the three protocols, `splitbft-node bench` (driven through its
//! library entry point) must stand up a real TCP cluster, measure it,
//! and write a `BENCH_*.json` whose schema and numbers are sane — in
//! particular, cluster-side committed requests must equal the clients'
//! observed completions.

use splitbft_node::bench;
use std::path::PathBuf;

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splitbft-bench-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create out dir");
    dir
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn run_bench_for(protocol: &str) {
    let dir = out_dir(protocol);
    let reports = bench::run(&args(&[
        "--protocol", protocol,
        "--clients", "4",
        "--pipeline", "2",
        "--duration", "1500ms",
        "--window-ms", "500",
        "--out", dir.to_str().unwrap(),
    ]))
    .expect("bench run failed");
    assert_eq!(reports.len(), 1);
    let report = &reports[0];

    // Sanity: the run did real work and every number is consistent.
    assert!(report.completed > 0, "{protocol}: zero completions");
    assert_eq!(report.issued, report.completed + report.timed_out);
    assert_eq!(report.timed_out, 0, "{protocol}: requests timed out in a healthy cluster");
    assert_eq!(
        report.committed, report.completed,
        "{protocol}: cluster-side commits must equal client-observed completions"
    );
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.p50_us > 0, "{protocol}: zero p50");
    assert!(report.latency.p50_us <= report.latency.p95_us);
    assert!(report.latency.p95_us <= report.latency.p99_us);
    assert!(report.latency.p99_us <= report.latency.max_us);
    assert_eq!(
        report.window_counts.iter().sum::<u64>(),
        report.completed,
        "{protocol}: window series must account for every completion"
    );
    assert_eq!(report.protocol, protocol);
    assert_eq!(report.n, 4);

    // Schema: the written file carries every v1 key.
    let path = dir.join(report.file_name());
    let json = std::fs::read_to_string(&path).expect("report file written");
    for key in [
        "\"schema\": \"splitbft-bench/v1\"",
        "\"name\"", "\"protocol\"", "\"n\"", "\"f\"", "\"app\"", "\"workload\"", "\"mode\"",
        "\"offered_rps\"", "\"clients\"", "\"pipeline\"", "\"duration_secs\"", "\"batch\"",
        "\"max_frames\"", "\"requests\"", "\"issued\"", "\"completed\"", "\"timed_out\"",
        "\"committed\"", "\"throughput_rps\"", "\"latency_us\"", "\"p50\"", "\"p95\"",
        "\"p99\"", "\"max\"", "\"mean\"", "\"window_secs\"", "\"windows\"",
    ] {
        assert!(json.contains(key), "{protocol}: report missing {key}:\n{json}");
    }
    assert!(json.contains(&format!("\"protocol\": \"{protocol}\"")));
    assert!(json.contains(&format!("\"committed\": {}", report.committed)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_reports_pbft() {
    run_bench_for("pbft");
}

#[test]
fn bench_reports_splitbft() {
    run_bench_for("splitbft");
}

#[test]
fn bench_reports_minbft() {
    run_bench_for("minbft");
}

/// The kvs workload benches end to end too (no commit probe — the
/// report falls back to committed == completed by construction, but the
/// run itself must complete requests through the full consensus path).
#[test]
fn bench_reports_kvs_workload() {
    let dir = out_dir("kvs");
    let reports = bench::run(&args(&[
        "--protocol", "pbft",
        "--app", "kvs",
        "--keys", "64",
        "--value-size", "32",
        "--read-ratio", "0.5",
        "--clients", "2",
        "--pipeline", "2",
        "--duration", "800ms",
        "--out", dir.to_str().unwrap(),
    ]))
    .expect("kvs bench failed");
    assert!(reports[0].completed > 0);
    let json = std::fs::read_to_string(dir.join(reports[0].file_name())).unwrap();
    assert!(json.contains(r#""kind":"kvs""#));
    assert!(json.contains(r#""value_size":32"#));
    std::fs::remove_dir_all(&dir).ok();
}
