//! Sharded crash-recovery end to end.
//!
//! Stands up a real 4-replica `--shards 2` KVS cluster of
//! `splitbft-node serve` subprocesses, drives shard-aware load so both
//! consensus groups commit, `SIGKILL`s one backup mid-load, restarts it
//! from its data directory, and asserts:
//!
//! 1. both shards completed requests throughout (the driver's per-shard
//!    accounting), so the kill never stalled either group;
//! 2. the restarted replica recovered **each shard's WAL
//!    independently** — its data directory holds one
//!    `replica-<id>/shard-<s>/wal.log` per shard and its stderr carries
//!    one per-shard recovery marker each;
//! 3. the victim rejoins end to end (it executes a fresh request).
//!
//! This is the sharding plane's durability contract: one process hosts
//! N groups, but each group's WAL, sealed checkpoints, and recovery are
//! isolated under `shard-<s>/`.

use splitbft_loadgen::driver::{self, DriverConfig};
use splitbft_loadgen::workload::Workload;
use splitbft_net::tcp::TcpClient;
use splitbft_node::{reply_quorum_for, ProtocolKind};
use splitbft_types::{ClientId, ReplicaId, Request, RequestId, Timestamp};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const N: usize = 4;
const SHARDS: u32 = 2;
const KILLED: usize = 3; // a backup: every shard's primary (0) keeps ordering

struct Cluster {
    children: Vec<Option<Child>>,
    config_path: PathBuf,
    root: PathBuf,
    data_dir: PathBuf,
    addrs: Vec<SocketAddr>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    listeners.iter().map(|l| l.local_addr().expect("addr").port()).collect()
}

fn log_path(root: &Path, id: usize) -> PathBuf {
    root.join(format!("replica-{id}.stderr.log"))
}

fn spawn_replica(cluster: &Cluster, id: usize) -> Child {
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(log_path(&cluster.root, id))
        .expect("open stderr log");
    Command::new(env!("CARGO_BIN_EXE_splitbft-node"))
        .args([
            "serve",
            "--config",
            cluster.config_path.to_str().expect("utf8 path"),
            "--replica",
            &id.to_string(),
            "--data-dir",
            cluster.data_dir.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::from(log))
        .spawn()
        .expect("spawn splitbft-node serve")
}

fn launch(protocol: ProtocolKind) -> Cluster {
    let root = std::env::temp_dir().join(format!(
        "splitbft-sharded-e2e-{protocol}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create scenario dir");

    let ports = free_ports(N);
    let addrs: Vec<SocketAddr> =
        ports.iter().map(|p| format!("127.0.0.1:{p}").parse().expect("addr")).collect();
    let mut toml = format!(
        "protocol = \"{protocol}\"\nseed = 42\napp = \"kvs\"\ntimeout_ms = 400\nshards = {SHARDS}\n"
    );
    for (id, port) in ports.iter().enumerate() {
        toml.push_str(&format!("\n[[replica]]\nid = {id}\naddr = \"127.0.0.1:{port}\"\n"));
    }
    let config_path = root.join("cluster.toml");
    std::fs::write(&config_path, toml).expect("write cluster.toml");

    let data_dir = root.join("data");
    let mut cluster =
        Cluster { children: (0..N).map(|_| None).collect(), config_path, root, data_dir, addrs };
    for id in 0..N {
        cluster.children[id] = Some(spawn_replica(&cluster, id));
    }
    cluster
}

/// Shard-aware KVS load: the driver targets both groups round-robin and
/// accounts completions per shard.
fn run_load(addrs: Vec<SocketAddr>, quorum: usize, duration: Duration) -> driver::LoadStats {
    let mut config = DriverConfig::new(addrs, 42, quorum);
    config.clients = 3;
    config.pipeline = 4;
    config.duration = duration;
    config.workload = Workload::paper_kvs();
    config.shards = SHARDS;
    config.retry_every = Duration::from_millis(500);
    config.drain_timeout = Duration::from_secs(20);
    driver::run(&config).expect("load driver")
}

/// Waits until the restarted replica itself replies to a fresh request
/// (execution is sequential per shard, so this proves it caught up).
fn await_rejoin(
    addrs: &[SocketAddr],
    seed: u64,
    from: ReplicaId,
    probe: u32,
    deadline: Duration,
) -> bool {
    let client = ClientId(probe);
    let mac = splitbft_crypto::client_mac_key(seed, client);
    let mut tcp = TcpClient::connect(client, addrs, Duration::from_secs(10)).expect("connect");
    let start = Instant::now();
    let mut ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1);
    let mut rejoined = false;
    'outer: while start.elapsed() < deadline {
        ts += 1;
        let id = RequestId { client, timestamp: Timestamp(ts) };
        let op = bytes::Bytes::from_static(b"probe");
        let auth = mac.tag(&Request::auth_bytes(id, &op, false));
        let request = Request { id, op, encrypted: false, auth };
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let wait_until = Instant::now() + Duration::from_millis(1500);
        while Instant::now() < wait_until {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.replica == from && reply.request.timestamp.0 >= ts => {
                    rejoined = true;
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    tcp.close();
    rejoined
}

fn shard_dir(cluster: &Cluster, id: usize, shard: u32) -> PathBuf {
    cluster.data_dir.join(format!("replica-{id}")).join(format!("shard-{shard}"))
}

#[test]
fn sharded_kvs_replica_recovers_both_shard_wals_after_sigkill() {
    // Serialize against the other cluster-heavy test binaries (cargo
    // runs test binaries concurrently; clusters starve each other).
    let _lock = splitbft_node::e2e_cluster_lock();
    let protocol = ProtocolKind::Pbft;
    let mut cluster = launch(protocol);
    let quorum = reply_quorum_for(protocol, N).expect("quorum");

    // Build up committed state on both shards, then kill mid-run.
    let warmup = run_load(cluster.addrs.clone(), quorum, Duration::from_secs(4));
    assert!(
        warmup.per_shard_completed.iter().all(|&c| c > 0),
        "both shards must commit before the kill: {:?}",
        warmup.per_shard_completed
    );
    for shard in 0..SHARDS {
        assert!(
            shard_dir(&cluster, KILLED, shard).join("wal.log").exists(),
            "replica {KILLED} has no WAL for shard {shard}"
        );
    }

    {
        let child = cluster.children[KILLED].as_mut().expect("child");
        child.kill().expect("SIGKILL");
        let _ = child.wait();
    }

    // The surviving quorum keeps committing on BOTH shards.
    let mid = run_load(cluster.addrs.clone(), quorum, Duration::from_secs(3));
    assert!(
        mid.per_shard_completed.iter().all(|&c| c > 0),
        "a shard stalled while the backup was down: {:?}",
        mid.per_shard_completed
    );

    let log_before = std::fs::metadata(log_path(&cluster.root, KILLED))
        .map(|m| m.len())
        .unwrap_or(0);
    cluster.children[KILLED] = Some(spawn_replica(&cluster, KILLED));

    // The victim rejoins end to end...
    assert!(
        await_rejoin(
            &cluster.addrs,
            42,
            ReplicaId(KILLED as u32),
            80,
            Duration::from_secs(30),
        ),
        "replica {KILLED} never executed a fresh request after restarting"
    );

    // ...and its new incarnation's stderr shows every shard recovering
    // its own WAL independently.
    let log = std::fs::read_to_string(log_path(&cluster.root, KILLED)).expect("stderr log");
    let fresh = &log[log_before.min(log.len() as u64) as usize..];
    for shard in 0..SHARDS {
        let marker = format!("replica {KILLED} shard {shard}: recovered");
        assert!(
            fresh.contains(&marker),
            "no per-shard recovery marker {marker:?} in restart stderr:\n{fresh}"
        );
    }

    let _ = std::fs::remove_dir_all(&cluster.root);
}
