//! A MinBFT-style *hybrid* BFT protocol: `2f + 1` replicas, each with a
//! trusted monotonic counter.
//!
//! This is the second baseline in the paper's Table 1. Hybrid protocols
//! (MinBFT, CheapBFT, Hybster) put a minimal trusted subsystem — a
//! counter that signs *unique sequential identifiers* (USIG) — inside a
//! TEE to prevent equivocation: a replica cannot send two different
//! messages with the same counter value, so agreement needs only
//! `2f + 1` replicas and two phases.
//!
//! The flip side, and SplitBFT's motivation, is the hybrid fault model's
//! brittleness: the trusted subsystem is assumed to fail *only by
//! crashing*. If an attacker compromises the USIG enclave itself (the
//! paper: "a single byzantine fault, e.g., a bug or successful attack
//! breaching the trusted subsystem, puts safety at risk"), equivocation
//! returns and safety collapses with it. The fault-model experiments in
//! `splitbft-bench` demonstrate exactly that with a
//! [`usig::FaultyUsig`].
//!
//! # Scope
//!
//! Normal-case operation (request → Prepare → Commit → execute → reply)
//! is implemented in full, including USIG verification with gap-free
//! counter tracking. The MinBFT view change is out of scope — the
//! Table 1 experiments need the safety behaviour under TEE compromise,
//! which is a normal-case property; liveness rows are taken from the
//! protocol definitions (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod hosting;
pub mod message;
pub mod replica;
pub mod usig;

pub use client::{HybridClient, HybridClientEvent};
pub use config::HybridConfig;
pub use message::{HybridMessage, HybridPrepare, HybridCommit};
pub use replica::{HybridAction, HybridReplica};
pub use usig::{FaultyUsig, Usig, UsigError, UsigTrait, UsigUi, UsigVerifier};
