//! Configuration for the hybrid (2f + 1) fault model.

use splitbft_types::{ProtocolError, ReplicaId, View};

/// Cluster configuration under the hybrid fault model: `n = 2f + 1`
/// replicas tolerate `f` byzantine *hosts* as long as every trusted
/// counter is correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridConfig {
    n: usize,
}

impl HybridConfig {
    /// Creates a configuration for `n` replicas.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] if `n < 3` (hybrid BFT needs
    /// `n >= 2f + 1` with `f >= 1`).
    pub fn new(n: usize) -> Result<Self, ProtocolError> {
        if n < 3 {
            return Err(ProtocolError::InvalidConfig(format!(
                "hybrid BFT requires at least 3 replicas, got {n}"
            )));
        }
        Ok(HybridConfig { n })
    }

    /// Total number of replicas.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tolerated byzantine hosts: `f = ⌊(n − 1) / 2⌋`.
    #[inline]
    pub fn f(&self) -> usize {
        (self.n - 1) / 2
    }

    /// Commit quorum: `f + 1` matching commits (each backed by a unique
    /// sequential identifier).
    #[inline]
    pub fn commit_quorum(&self) -> usize {
        self.f() + 1
    }

    /// Matching replies a client needs: `f + 1`.
    #[inline]
    pub fn reply_quorum(&self) -> usize {
        self.f() + 1
    }

    /// The primary of `view`.
    #[inline]
    pub fn primary(&self, view: View) -> ReplicaId {
        ReplicaId((view.0 % self.n as u64) as u32)
    }

    /// Iterator over all replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u32).map(ReplicaId)
    }

    /// `true` if `id` belongs to the cluster.
    pub fn contains(&self, id: ReplicaId) -> bool {
        (id.0 as usize) < self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        let c3 = HybridConfig::new(3).unwrap();
        assert_eq!((c3.f(), c3.commit_quorum(), c3.reply_quorum()), (1, 2, 2));
        let c5 = HybridConfig::new(5).unwrap();
        assert_eq!((c5.f(), c5.commit_quorum()), (2, 3));
    }

    #[test]
    fn fewer_replicas_than_pbft_for_same_f() {
        // The headline hybrid benefit: f=1 needs 3 replicas, not 4.
        let hybrid = HybridConfig::new(3).unwrap();
        let pbft = splitbft_types::ClusterConfig::new(4).unwrap();
        assert_eq!(hybrid.f(), pbft.f());
        assert!(hybrid.n() < pbft.n());
    }

    #[test]
    fn too_small_rejected() {
        assert!(HybridConfig::new(2).is_err());
    }

    #[test]
    fn primary_rotation() {
        let c = HybridConfig::new(3).unwrap();
        assert_eq!(c.primary(View(0)), ReplicaId(0));
        assert_eq!(c.primary(View(4)), ReplicaId(1));
    }
}
