//! The USIG (Unique Sequential Identifier Generator) — the trusted
//! counter at the heart of hybrid BFT protocols.
//!
//! A USIG lives inside a TEE and does exactly one thing: given a message
//! digest, it increments a monotonic counter and signs
//! `(replica, counter, digest)`. Because the counter never repeats and
//! never skips, a replica cannot assign the same counter value to two
//! different messages — non-equivocation by construction. Verifiers track
//! the last counter seen from each replica and reject gaps and repeats.
//!
//! The paper's Table 2 reports a Rust trusted counter at 439 LOC / 0.5 MB
//! as the comparison point for SplitBFT's compartment TCBs; this module
//! plus its enclave wrapper is our equivalent.
//!
//! [`FaultyUsig`] models the compromise SplitBFT is designed around: a
//! "trusted" counter that re-issues counter values, re-enabling
//! equivocation.

use splitbft_crypto::{digest_bytes, KeyPair};
use splitbft_tee::enclave::{Enclave, OcallSink};
use splitbft_types::wire::{Decode, Encode, Reader, WireError};
use splitbft_types::{Digest, PublicKey, ReplicaId, Signature};
use std::collections::BTreeMap;

/// Domain label mixed into USIG key derivation so counter keys are
/// unrelated to protocol signing keys.
const USIG_KEY_DOMAIN: u64 = 0x5516_C0DE;

/// Derives the deterministic USIG key pair of `replica` under
/// `master_seed`.
pub fn usig_keypair(master_seed: u64, replica: ReplicaId) -> KeyPair {
    KeyPair::from_seed(master_seed ^ USIG_KEY_DOMAIN ^ ((replica.0 as u64) << 32))
}

/// A unique sequential identifier: proof that the issuing replica's
/// trusted counter bound `counter` to `digest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsigUi {
    /// The counter value (starts at 1, increments by exactly 1).
    pub counter: u64,
    /// Signature by the replica's USIG key over
    /// `(replica, counter, digest)`.
    pub signature: Signature,
}

impl Encode for UsigUi {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.counter.encode(buf);
        self.signature.encode(buf);
    }
}
impl Decode for UsigUi {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(UsigUi { counter: u64::decode(r)?, signature: Signature::decode(r)? })
    }
}

fn ui_bytes(replica: ReplicaId, counter: u64, digest: &Digest) -> Vec<u8> {
    let mut buf = b"usig:".to_vec();
    replica.encode(&mut buf);
    counter.encode(&mut buf);
    digest.encode(&mut buf);
    buf
}

/// Errors from USIG verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsigError {
    /// The signature did not verify.
    BadSignature,
    /// The counter is not exactly `last + 1` — a gap (suppressed message)
    /// or a repeat (equivocation attempt).
    NonSequential {
        /// The counter the verifier expected next.
        expected: u64,
        /// The counter the message carried.
        got: u64,
    },
}

impl std::fmt::Display for UsigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UsigError::BadSignature => f.write_str("USIG signature invalid"),
            UsigError::NonSequential { expected, got } => {
                write!(f, "non-sequential USIG counter: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for UsigError {}

/// The interface of a trusted counter — implemented by the genuine
/// [`Usig`] and by [`FaultyUsig`] (the compromised-TEE model).
pub trait UsigTrait: Send {
    /// Binds the next counter value to `digest` and returns the UI.
    fn create_ui(&mut self, digest: &Digest) -> UsigUi;
    /// The current counter value (last issued).
    fn counter(&self) -> u64;
    /// Crash recovery: advances the counter to at least `counter`, so a
    /// restarted replica never re-issues a value it already used (which
    /// would be equivocation). The genuine counter only ever moves
    /// forward; rolling back is exactly the compromise [`FaultyUsig`]
    /// models.
    fn advance_to(&mut self, _counter: u64) {}
}

/// The genuine trusted counter.
#[derive(Debug)]
pub struct Usig {
    replica: ReplicaId,
    keypair: KeyPair,
    counter: u64,
}

impl Usig {
    /// Creates the counter for `replica` with its deterministic key.
    pub fn new(master_seed: u64, replica: ReplicaId) -> Self {
        Usig { replica, keypair: usig_keypair(master_seed, replica), counter: 0 }
    }
}

impl UsigTrait for Usig {
    fn create_ui(&mut self, digest: &Digest) -> UsigUi {
        self.counter += 1;
        let signature = self.keypair.sign(&ui_bytes(self.replica, self.counter, digest));
        UsigUi { counter: self.counter, signature }
    }

    fn counter(&self) -> u64 {
        self.counter
    }

    fn advance_to(&mut self, counter: u64) {
        self.counter = self.counter.max(counter);
    }
}

/// A compromised trusted counter: it can be rolled back, letting its host
/// issue two different messages under the same counter value — the exact
/// failure hybrid protocols assume away and SplitBFT does not.
#[derive(Debug)]
pub struct FaultyUsig {
    inner: Usig,
}

impl FaultyUsig {
    /// Wraps a genuine counter for `replica`.
    pub fn new(master_seed: u64, replica: ReplicaId) -> Self {
        FaultyUsig { inner: Usig::new(master_seed, replica) }
    }

    /// Rolls the counter back by `n` — the compromise primitive. The next
    /// [`UsigTrait::create_ui`] re-issues previously used values with
    /// *valid signatures*.
    pub fn rollback(&mut self, n: u64) {
        self.inner.counter = self.inner.counter.saturating_sub(n);
    }
}

impl UsigTrait for FaultyUsig {
    fn create_ui(&mut self, digest: &Digest) -> UsigUi {
        self.inner.create_ui(digest)
    }

    fn counter(&self) -> u64 {
        self.inner.counter()
    }

    fn advance_to(&mut self, counter: u64) {
        self.inner.advance_to(counter);
    }
}

/// Verifier-side state: the last counter accepted from each replica.
#[derive(Debug, Clone, Default)]
pub struct UsigVerifier {
    keys: BTreeMap<ReplicaId, PublicKey>,
    last_seen: BTreeMap<ReplicaId, u64>,
    /// Replicas whose UIs may arrive with a *forward* gap: set by
    /// [`UsigVerifier::resync`] after crash recovery, when this verifier
    /// provably missed messages issued while its replica was down.
    /// Backward movement (repeats — the equivocation vector) is still
    /// rejected; only "suppressed message" detection is waived, and only
    /// until the verifier re-anchors on the peer's live stream (the
    /// first exactly-sequential UI clears the waiver — a stale replayed
    /// message accepted during resync therefore cannot wedge the peer;
    /// the next live UI simply re-anchors further forward).
    gap_allowed: std::collections::BTreeSet<ReplicaId>,
}

impl UsigVerifier {
    /// Builds the verifier with every replica's USIG public key.
    pub fn new(master_seed: u64, replicas: impl IntoIterator<Item = ReplicaId>) -> Self {
        let keys = replicas
            .into_iter()
            .map(|r| (r, usig_keypair(master_seed, r).public_key()))
            .collect();
        UsigVerifier {
            keys,
            last_seen: BTreeMap::new(),
            gap_allowed: std::collections::BTreeSet::new(),
        }
    }

    /// Marks every peer's next UI as allowed to arrive with a forward
    /// counter gap. Called exactly once, after crash recovery restores
    /// this replica: the counters it saw before the crash are gone with
    /// its memory, so the strict `last + 1` window must re-anchor on the
    /// first live message from each peer. Monotonicity — the
    /// non-equivocation property — is preserved throughout.
    pub fn resync(&mut self) {
        self.gap_allowed = self.keys.keys().copied().collect();
    }

    /// Verifies a UI from `replica` over `digest` and advances the
    /// replica's counter window.
    ///
    /// # Errors
    ///
    /// [`UsigError::BadSignature`] or [`UsigError::NonSequential`]; on
    /// error no state is consumed, so retransmissions of the expected
    /// counter still verify.
    pub fn verify(
        &mut self,
        replica: ReplicaId,
        digest: &Digest,
        ui: &UsigUi,
    ) -> Result<(), UsigError> {
        let expected = self.last_seen.get(&replica).copied().unwrap_or(0) + 1;
        if ui.counter != expected {
            // After a resync, forward re-anchoring is allowed until the
            // first sequential UI proves we joined the live stream;
            // repeats and rollbacks never are.
            if !(ui.counter > expected && self.gap_allowed.contains(&replica)) {
                return Err(UsigError::NonSequential { expected, got: ui.counter });
            }
        }
        let Some(key) = self.keys.get(&replica) else {
            return Err(UsigError::BadSignature);
        };
        if !KeyPair::verify(key, &ui_bytes(replica, ui.counter, digest), &ui.signature) {
            return Err(UsigError::BadSignature);
        }
        if ui.counter == expected {
            // Anchored on the live stream: strict sequencing resumes.
            self.gap_allowed.remove(&replica);
        }
        self.last_seen.insert(replica, ui.counter);
        Ok(())
    }

    /// The last accepted counter from `replica`.
    pub fn last_seen(&self, replica: ReplicaId) -> u64 {
        self.last_seen.get(&replica).copied().unwrap_or(0)
    }
}

/// The USIG packaged as a TEE enclave: ecall id 1 = `create_ui` over the
/// 32-byte digest in the input. This is the "trusted counter" whose TCB
/// size the paper's Table 2 compares against SplitBFT's compartments.
#[derive(Debug)]
pub struct UsigEnclave {
    usig: Usig,
}

impl UsigEnclave {
    /// Ecall id for `create_ui`.
    pub const ECALL_CREATE_UI: u32 = 1;

    /// Loads a USIG for `replica` into the enclave.
    pub fn new(master_seed: u64, replica: ReplicaId) -> Self {
        UsigEnclave { usig: Usig::new(master_seed, replica) }
    }
}

impl Enclave for UsigEnclave {
    fn measurement(&self) -> [u8; 32] {
        digest_bytes(b"splitbft-usig-enclave-v1").0
    }

    fn handle_ecall(&mut self, id: u32, input: &[u8], _env: &mut dyn OcallSink) -> Vec<u8> {
        if id != Self::ECALL_CREATE_UI || input.len() != 32 {
            return Vec::new();
        }
        let mut digest = [0u8; 32];
        digest.copy_from_slice(input);
        let ui = self.usig.create_ui(&Digest::from_bytes(digest));
        ui.to_wire()
    }

    fn memory_usage(&self) -> usize {
        128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 5;

    fn digest(x: u8) -> Digest {
        Digest::from_bytes([x; 32])
    }

    #[test]
    fn sequential_uis_verify() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        for i in 1..=5u8 {
            let d = digest(i);
            let ui = usig.create_ui(&d);
            assert_eq!(ui.counter, i as u64);
            verifier.verify(ReplicaId(0), &d, &ui).unwrap();
        }
        assert_eq!(verifier.last_seen(ReplicaId(0)), 5);
    }

    #[test]
    fn gap_rejected() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let _skipped = usig.create_ui(&digest(1));
        let ui2 = usig.create_ui(&digest(2));
        assert_eq!(
            verifier.verify(ReplicaId(0), &digest(2), &ui2),
            Err(UsigError::NonSequential { expected: 1, got: 2 })
        );
    }

    #[test]
    fn replay_rejected() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let ui = usig.create_ui(&digest(1));
        verifier.verify(ReplicaId(0), &digest(1), &ui).unwrap();
        assert!(matches!(
            verifier.verify(ReplicaId(0), &digest(1), &ui),
            Err(UsigError::NonSequential { .. })
        ));
    }

    #[test]
    fn advance_to_never_rolls_back() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let _ = usig.create_ui(&digest(1));
        let _ = usig.create_ui(&digest(2));
        usig.advance_to(10);
        assert_eq!(usig.counter(), 10);
        usig.advance_to(3); // lower than current: no-op
        assert_eq!(usig.counter(), 10);
        assert_eq!(usig.create_ui(&digest(3)).counter, 11);
    }

    #[test]
    fn resync_allows_forward_gaps_until_anchored() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        // Counters 1..=4 issued while this verifier was "down".
        for i in 1..=4u8 {
            let _ = usig.create_ui(&digest(i));
        }
        verifier.resync();
        let d5 = digest(5);
        let ui5 = usig.create_ui(&d5);
        verifier.verify(ReplicaId(0), &d5, &ui5).unwrap();
        // A sequential follow-up anchors the window...
        let d6 = digest(6);
        let ui6 = usig.create_ui(&d6);
        verifier.verify(ReplicaId(0), &d6, &ui6).unwrap();
        // ...after which gaps are suppressed messages again.
        let _skipped = usig.create_ui(&digest(7));
        let d8 = digest(8);
        let ui8 = usig.create_ui(&d8);
        assert!(matches!(
            verifier.verify(ReplicaId(0), &d8, &ui8),
            Err(UsigError::NonSequential { .. })
        ));
    }

    #[test]
    fn stale_replay_during_resync_cannot_wedge_a_peer() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let d2 = digest(2);
        let (_ui1, ui2) = (usig.create_ui(&digest(1)), usig.create_ui(&d2));
        for i in 3..=9u8 {
            let _ = usig.create_ui(&digest(i)); // the peer's live stream is far ahead
        }
        verifier.resync();
        // An adversary replays the peer's old-but-genuine counter 2
        // first: it re-anchors low...
        verifier.verify(ReplicaId(0), &d2, &ui2).unwrap();
        // ...but the next *live* message still verifies (forward gap
        // remains allowed until a sequential anchor), so the peer is
        // not wedged.
        let d10 = digest(10);
        let ui10 = usig.create_ui(&d10);
        verifier.verify(ReplicaId(0), &d10, &ui10).unwrap();
        // Replays below the anchor stay rejected throughout.
        assert!(matches!(
            verifier.verify(ReplicaId(0), &d2, &ui2),
            Err(UsigError::NonSequential { .. })
        ));
    }

    #[test]
    fn resync_never_allows_replays() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let d = digest(1);
        let ui = usig.create_ui(&d);
        verifier.verify(ReplicaId(0), &d, &ui).unwrap();
        verifier.resync();
        // A replayed (non-forward) counter is still equivocation.
        assert!(matches!(
            verifier.verify(ReplicaId(0), &d, &ui),
            Err(UsigError::NonSequential { .. })
        ));
    }

    #[test]
    fn wrong_digest_rejected() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let ui = usig.create_ui(&digest(1));
        // Host tries to attach the UI to a different message.
        assert_eq!(
            verifier.verify(ReplicaId(0), &digest(9), &ui),
            Err(UsigError::BadSignature)
        );
    }

    #[test]
    fn cross_replica_uis_do_not_verify() {
        let mut usig0 = Usig::new(SEED, ReplicaId(0));
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(0), ReplicaId(1)]);
        let ui = usig0.create_ui(&digest(1));
        assert_eq!(
            verifier.verify(ReplicaId(1), &digest(1), &ui),
            Err(UsigError::BadSignature)
        );
    }

    #[test]
    fn faulty_usig_equivocates_with_valid_signatures() {
        // The attack hybrid protocols cannot survive: after rollback, two
        // *different* digests carry the same counter, and each verifies
        // against a fresh verifier (i.e., at a different replica).
        let mut usig = FaultyUsig::new(SEED, ReplicaId(0));
        let ui_a = usig.create_ui(&digest(1));
        usig.rollback(1);
        let ui_b = usig.create_ui(&digest(2));
        assert_eq!(ui_a.counter, ui_b.counter);

        let mut verifier_at_r1 = UsigVerifier::new(SEED, [ReplicaId(0)]);
        let mut verifier_at_r2 = UsigVerifier::new(SEED, [ReplicaId(0)]);
        assert!(verifier_at_r1.verify(ReplicaId(0), &digest(1), &ui_a).is_ok());
        assert!(verifier_at_r2.verify(ReplicaId(0), &digest(2), &ui_b).is_ok());
        // Two different messages, same counter, both accepted somewhere:
        // equivocation achieved.
    }

    #[test]
    fn usig_enclave_roundtrip() {
        use splitbft_tee::{CostModel, EnclaveHost, ExecMode};
        let mut host = EnclaveHost::new(
            UsigEnclave::new(SEED, ReplicaId(2)),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        );
        let d = digest(7);
        let reply = host.ecall(UsigEnclave::ECALL_CREATE_UI, d.as_bytes()).unwrap();
        let ui: UsigUi = splitbft_types::wire::decode(&reply.output).unwrap();
        assert_eq!(ui.counter, 1);
        let mut verifier = UsigVerifier::new(SEED, [ReplicaId(2)]);
        assert!(verifier.verify(ReplicaId(2), &d, &ui).is_ok());

        // Garbage ecalls return nothing.
        assert!(host.ecall(99, b"x").unwrap().output.is_empty());
    }

    #[test]
    fn ui_wire_roundtrip() {
        let mut usig = Usig::new(SEED, ReplicaId(0));
        let ui = usig.create_ui(&digest(1));
        splitbft_types::wire::roundtrip(&ui);
    }
}
