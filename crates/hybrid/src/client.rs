//! Client for the hybrid protocol: same reply-quorum logic as PBFT's
//! client, but against the `2f + 1` configuration.

use crate::config::HybridConfig;
use splitbft_crypto::{client_mac_key, MacKey};
use splitbft_types::{ClientId, Reply, ReplicaId, Request, RequestId, Timestamp};
use std::collections::BTreeMap;

/// Outcome of delivering a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridClientEvent {
    /// Waiting for more matching replies.
    Pending,
    /// Completed with this result.
    Completed(bytes::Bytes),
    /// Ignored (bad MAC, wrong request).
    Ignored,
}

/// A closed-loop client of the hybrid service.
#[derive(Debug)]
pub struct HybridClient {
    id: ClientId,
    mac: MacKey,
    config: HybridConfig,
    next_timestamp: Timestamp,
    in_flight: Option<(RequestId, BTreeMap<ReplicaId, bytes::Bytes>)>,
}

impl HybridClient {
    /// Creates client `id`.
    pub fn new(config: HybridConfig, id: ClientId, master_seed: u64) -> Self {
        HybridClient {
            id,
            mac: client_mac_key(master_seed, id),
            config,
            next_timestamp: Timestamp(1),
            in_flight: None,
        }
    }


    /// Resumes this client identity at `timestamp`. Replicas suppress
    /// duplicates by each client's last-seen timestamp, so a *new
    /// session* of a previously-used client id must start above every
    /// timestamp it ever issued — deployed clients use wall-clock time.
    pub fn starting_at(mut self, timestamp: Timestamp) -> Self {
        self.next_timestamp = timestamp;
        self
    }

    /// `true` if a request is outstanding.
    pub fn has_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Issues the next request.
    ///
    /// # Panics
    ///
    /// Panics if one is already in flight.
    pub fn issue(&mut self, op: bytes::Bytes) -> Request {
        assert!(self.in_flight.is_none(), "request already in flight");
        let id = RequestId { client: self.id, timestamp: self.next_timestamp };
        self.next_timestamp = self.next_timestamp.next();
        let auth = self.mac.tag(&Request::auth_bytes(id, &op, false));
        self.in_flight = Some((id, BTreeMap::new()));
        Request { id, op, encrypted: false, auth }
    }

    /// Delivers one reply.
    pub fn on_reply(&mut self, reply: &Reply) -> HybridClientEvent {
        let Some((request, replies)) = self.in_flight.as_mut() else {
            return HybridClientEvent::Ignored;
        };
        if reply.request != *request {
            return HybridClientEvent::Ignored;
        }
        let expected = self.mac.tag(&Reply::auth_bytes(
            reply.view,
            reply.request,
            reply.replica,
            &reply.result,
            reply.encrypted,
        ));
        if !splitbft_crypto::hmac::ct_eq(&expected, &reply.auth) {
            return HybridClientEvent::Ignored;
        }
        replies.insert(reply.replica, reply.result.clone());

        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in replies.values() {
            *counts.entry(result.as_ref()).or_insert(0) += 1;
        }
        if let Some((&result, _)) =
            counts.iter().find(|(_, &n)| n >= self.config.reply_quorum())
        {
            let result = bytes::Bytes::copy_from_slice(result);
            self.in_flight = None;
            return HybridClientEvent::Completed(result);
        }
        HybridClientEvent::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::View;

    const SEED: u64 = 3;

    fn reply(request: RequestId, replica: u32, result: &'static [u8]) -> Reply {
        let mac = client_mac_key(SEED, request.client);
        let result = Bytes::from_static(result);
        let auth =
            mac.tag(&Reply::auth_bytes(View(0), request, ReplicaId(replica), &result, false));
        Reply { view: View(0), request, replica: ReplicaId(replica), result, encrypted: false, auth }
    }

    #[test]
    fn completes_on_f_plus_1() {
        let cfg = HybridConfig::new(3).unwrap();
        let mut c = HybridClient::new(cfg, ClientId(0), SEED);
        let req = c.issue(Bytes::from_static(b"x"));
        assert_eq!(c.on_reply(&reply(req.id, 0, b"ok")), HybridClientEvent::Pending);
        assert_eq!(
            c.on_reply(&reply(req.id, 1, b"ok")),
            HybridClientEvent::Completed(Bytes::from_static(b"ok"))
        );
        assert!(!c.has_in_flight());
    }

    #[test]
    fn forged_reply_ignored() {
        let cfg = HybridConfig::new(3).unwrap();
        let mut c = HybridClient::new(cfg, ClientId(0), SEED);
        let req = c.issue(Bytes::from_static(b"x"));
        let mut forged = reply(req.id, 0, b"evil");
        forged.auth = [0u8; 32];
        assert_eq!(c.on_reply(&forged), HybridClientEvent::Ignored);
    }
}
