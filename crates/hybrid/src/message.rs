//! Messages of the hybrid (MinBFT-style) protocol.
//!
//! Two phases instead of PBFT's three: the primary's `Prepare` (with its
//! USIG identifier ordering the batch) and the backups' `Commit`s (each
//! carrying the sender's own USIG identifier). `f + 1` matching commits —
//! counting the prepare as the primary's commit — finalize the batch.

use crate::usig::UsigUi;
use splitbft_crypto::digest_of;
use splitbft_types::wire::{Decode, Encode, Reader, WireError};
use splitbft_types::{Digest, ReplicaId, RequestBatch, View};

/// The primary's ordering message: batch plus the UI that fixes its
/// position in the primary's counter sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridPrepare {
    /// The view (identifies the primary).
    pub view: View,
    /// The ordered batch.
    pub batch: RequestBatch,
    /// The primary's USIG identifier over the batch digest.
    pub ui: UsigUi,
}

impl HybridPrepare {
    /// The digest the primary's UI covers.
    pub fn batch_digest(&self) -> Digest {
        digest_of(&self.batch)
    }
}

impl Encode for HybridPrepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.batch.encode(buf);
        self.ui.encode(buf);
    }
}
impl Decode for HybridPrepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HybridPrepare {
            view: View::decode(r)?,
            batch: RequestBatch::decode(r)?,
            ui: UsigUi::decode(r)?,
        })
    }
}

/// A backup's acknowledgement: it accepted the primary's prepare with
/// counter `primary_counter` and binds its own UI to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridCommit {
    /// The view.
    pub view: View,
    /// The committing replica.
    pub replica: ReplicaId,
    /// The primary counter value being committed (the agreement slot).
    pub primary_counter: u64,
    /// Digest of the batch being committed.
    pub batch_digest: Digest,
    /// The committer's own USIG identifier (over the commit contents),
    /// making commits non-equivocating too.
    pub ui: UsigUi,
}

impl HybridCommit {
    /// The digest the committer's UI covers: the commit's identifying
    /// contents, *excluding* the UI itself.
    pub fn commit_digest(&self) -> Digest {
        let mut buf = b"hybrid-commit:".to_vec();
        self.view.encode(&mut buf);
        self.replica.encode(&mut buf);
        self.primary_counter.encode(&mut buf);
        self.batch_digest.encode(&mut buf);
        splitbft_crypto::digest_bytes(&buf)
    }
}

impl Encode for HybridCommit {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.replica.encode(buf);
        self.primary_counter.encode(buf);
        self.batch_digest.encode(buf);
        self.ui.encode(buf);
    }
}
impl Decode for HybridCommit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HybridCommit {
            view: View::decode(r)?,
            replica: ReplicaId::decode(r)?,
            primary_counter: u64::decode(r)?,
            batch_digest: Digest::decode(r)?,
            ui: UsigUi::decode(r)?,
        })
    }
}

/// Any hybrid-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridMessage {
    /// The primary's ordering message.
    Prepare(HybridPrepare),
    /// A backup's acknowledgement.
    Commit(HybridCommit),
}

impl HybridMessage {
    /// Flips one byte of the message's USIG signature — the chaos
    /// plane's `corrupt-mac` Byzantine mode. The UI no longer verifies,
    /// so honest receivers must reject the message; a cluster with such
    /// a replica proceeds exactly as if it were silent.
    pub fn corrupt_authenticator(&mut self) {
        let ui = match self {
            HybridMessage::Prepare(p) => &mut p.ui,
            HybridMessage::Commit(c) => &mut c.ui,
        };
        ui.signature.0[0] ^= 0xFF;
    }
}

impl Encode for HybridMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            HybridMessage::Prepare(p) => {
                buf.push(1);
                p.encode(buf);
            }
            HybridMessage::Commit(c) => {
                buf.push(2);
                c.encode(buf);
            }
        }
    }
}
impl Decode for HybridMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(HybridMessage::Prepare(HybridPrepare::decode(r)?)),
            2 => Ok(HybridMessage::Commit(HybridCommit::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "HybridMessage", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usig::{Usig, UsigTrait};
    use splitbft_types::wire::roundtrip;

    #[test]
    fn messages_roundtrip() {
        let mut usig = Usig::new(1, ReplicaId(0));
        let batch = RequestBatch::null();
        let ui = usig.create_ui(&digest_of(&batch));
        let prepare = HybridPrepare { view: View(0), batch, ui };
        roundtrip(&prepare);

        let commit = HybridCommit {
            view: View(0),
            replica: ReplicaId(1),
            primary_counter: 1,
            batch_digest: prepare.batch_digest(),
            ui,
        };
        roundtrip(&HybridMessage::Commit(commit));
    }

    #[test]
    fn commit_digest_binds_contents() {
        let mut usig = Usig::new(1, ReplicaId(0));
        let ui = usig.create_ui(&Digest::ZERO);
        let c1 = HybridCommit {
            view: View(0),
            replica: ReplicaId(1),
            primary_counter: 1,
            batch_digest: Digest::ZERO,
            ui,
        };
        let c2 = HybridCommit { primary_counter: 2, ..c1.clone() };
        assert_ne!(c1.commit_digest(), c2.commit_digest());
    }
}
