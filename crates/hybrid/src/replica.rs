//! The hybrid replica state machine (normal-case MinBFT).

use crate::config::HybridConfig;
use crate::message::{HybridCommit, HybridMessage, HybridPrepare};
use crate::usig::{UsigTrait, UsigVerifier};
use splitbft_app::Application;
use splitbft_crypto::{client_mac_key, digest_bytes, digest_of};
use splitbft_types::wire::{Decode, Encode, Reader};
use splitbft_types::{
    ClientId, Digest, DurableCheckpoint, DurableEvent, ProtocolError, ReplicaId, Reply, Request,
    RequestBatch, RequestId, SeqNum, Timestamp, View,
};
use std::collections::BTreeMap;

/// How many executions between durable snapshots. The hybrid has no
/// checkpoint *messages* (its log is implicitly bounded by sequential
/// execution), so the durability plane snapshots locally at this cadence
/// to bound WAL replay length and give state transfer a discrete,
/// cluster-wide agreed-upon point (every replica snapshots at the same
/// counter values).
const HYBRID_CHECKPOINT_INTERVAL: u64 = 64;

/// Effects requested by a [`HybridReplica`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridAction {
    /// Send to every other replica.
    Broadcast(HybridMessage),
    /// Deliver a reply to a client.
    SendReply {
        /// Destination client.
        to: ClientId,
        /// The authenticated reply.
        reply: Reply,
    },
    /// Persist an application blob.
    Persist(bytes::Bytes),
    /// Observability: the batch at this primary counter executed.
    Executed {
        /// The agreement slot (primary counter value).
        counter: u64,
    },
}

#[derive(Debug, Default)]
struct HybridSlot {
    batch: Option<RequestBatch>,
    digest: Option<Digest>,
    /// Committing replicas (the primary's prepare counts as its commit).
    committers: BTreeMap<ReplicaId, ()>,
}

/// A replica of the hybrid protocol.
///
/// Generic over the trusted counter so the fault-model experiments can
/// swap in a [`crate::usig::FaultyUsig`].
pub struct HybridReplica<A, U> {
    config: HybridConfig,
    id: ReplicaId,
    view: View,
    usig: U,
    verifier: UsigVerifier,
    auth_seed: u64,
    slots: BTreeMap<u64, HybridSlot>,
    last_exec: u64,
    app: A,
    last_replies: BTreeMap<ClientId, Reply>,
    /// Latest durable snapshot `(counter, state bytes)`, refreshed every
    /// [`HYBRID_CHECKPOINT_INTERVAL`] executions while durable events
    /// are enabled.
    last_snapshot: Option<(u64, Vec<u8>)>,
    /// Durable consensus events buffered for a durable runtime's WAL.
    durable: Vec<DurableEvent>,
    durable_enabled: bool,
}

impl<A: Application, U: UsigTrait> HybridReplica<A, U> {
    /// Creates replica `id` with its trusted counter `usig`.
    pub fn new(config: HybridConfig, id: ReplicaId, master_seed: u64, usig: U, app: A) -> Self {
        let verifier = UsigVerifier::new(master_seed, config.replicas());
        HybridReplica {
            config,
            id,
            view: View::initial(),
            usig,
            verifier,
            auth_seed: master_seed,
            slots: BTreeMap::new(),
            last_exec: 0,
            app,
            last_replies: BTreeMap::new(),
            last_snapshot: None,
            durable: Vec::new(),
            durable_enabled: false,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// `true` if this replica is the primary.
    pub fn is_primary(&self) -> bool {
        self.config.primary(self.view) == self.id
    }

    /// Highest executed slot (primary counter value).
    pub fn last_executed(&self) -> u64 {
        self.last_exec
    }

    /// Read access to the application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the trusted counter — used by the fault-model
    /// experiments to compromise it (e.g. roll a
    /// [`crate::usig::FaultyUsig`] back).
    pub fn usig_mut(&mut self) -> &mut U {
        &mut self.usig
    }

    /// Digest of the application state, for divergence checks in tests
    /// and experiments.
    pub fn state_digest(&self) -> Digest {
        splitbft_crypto::digest_bytes(&self.app.snapshot())
    }

    fn verify_request(&self, req: &Request) -> bool {
        let key = client_mac_key(self.auth_seed, req.client());
        key.verify(&Request::auth_bytes(req.id, &req.op, req.encrypted), &req.auth)
    }

    /// Primary: order a batch of client requests.
    pub fn on_client_batch(&mut self, requests: Vec<Request>) -> Vec<HybridAction> {
        let mut actions = Vec::new();
        if !self.is_primary() {
            return actions;
        }
        let fresh: Vec<Request> = requests
            .into_iter()
            .filter(|r| self.verify_request(r))
            .filter(|r| {
                self.last_replies
                    .get(&r.client())
                    .map_or(true, |cached| cached.request.timestamp < r.id.timestamp)
            })
            .collect();
        if fresh.is_empty() {
            return actions;
        }
        let batch = RequestBatch::new(fresh);
        let digest = digest_of(&batch);
        let ui = self.usig.create_ui(&digest);
        let counter = ui.counter;
        self.record(|| DurableEvent::CounterIssued { counter });

        let slot = self.slots.entry(counter).or_default();
        slot.batch = Some(batch.clone());
        slot.digest = Some(digest);
        slot.committers.insert(self.id, ());

        actions.push(HybridAction::Broadcast(HybridMessage::Prepare(HybridPrepare {
            view: self.view,
            batch,
            ui,
        })));
        actions.extend(self.try_execute());
        actions
    }

    /// Handles one protocol message.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; USIG violations surface as
    /// [`ProtocolError::BadAuthenticator`].
    pub fn on_message(&mut self, msg: HybridMessage) -> Result<Vec<HybridAction>, ProtocolError> {
        match msg {
            HybridMessage::Prepare(p) => self.handle_prepare(p),
            HybridMessage::Commit(c) => self.handle_commit(c),
        }
    }

    fn handle_prepare(&mut self, p: HybridPrepare) -> Result<Vec<HybridAction>, ProtocolError> {
        if p.view != self.view {
            return Err(ProtocolError::WrongView { got: p.view, current: self.view });
        }
        let primary = self.config.primary(p.view);
        if primary == self.id {
            return Err(ProtocolError::Other("primary received its own prepare".into()));
        }
        let digest = p.batch_digest();
        self.verifier
            .verify(primary, &digest, &p.ui)
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "USIG on prepare" })?;
        if !p.batch.requests.iter().all(|r| self.verify_request(r)) {
            return Err(ProtocolError::BadAuthenticator { kind: "request in hybrid batch" });
        }

        let counter = p.ui.counter;
        let slot = self.slots.entry(counter).or_default();
        slot.batch = Some(p.batch);
        slot.digest = Some(digest);
        slot.committers.insert(primary, ());

        // This backup's commit, sealed by its own counter.
        let mut commit = HybridCommit {
            view: self.view,
            replica: self.id,
            primary_counter: counter,
            batch_digest: digest,
            ui: crate::usig::UsigUi { counter: 0, signature: splitbft_types::Signature::ZERO },
        };
        commit.ui = self.usig.create_ui(&commit.commit_digest());
        let issued = commit.ui.counter;
        self.record(|| DurableEvent::CounterIssued { counter: issued });
        self.slots.entry(counter).or_default().committers.insert(self.id, ());

        let mut actions = vec![HybridAction::Broadcast(HybridMessage::Commit(commit))];
        actions.extend(self.try_execute());
        Ok(actions)
    }

    fn handle_commit(&mut self, c: HybridCommit) -> Result<Vec<HybridAction>, ProtocolError> {
        if c.view != self.view {
            return Err(ProtocolError::WrongView { got: c.view, current: self.view });
        }
        if !self.config.contains(c.replica) {
            return Err(ProtocolError::UnknownReplica(c.replica));
        }
        self.verifier
            .verify(c.replica, &c.commit_digest(), &c.ui)
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "USIG on commit" })?;

        let slot = self.slots.entry(c.primary_counter).or_default();
        // A commit only counts toward slots whose digest it matches;
        // commits for unknown slots park the digest for later comparison.
        match slot.digest {
            Some(d) if d != c.batch_digest => {
                return Err(ProtocolError::BadCertificate { kind: "hybrid commit digest" })
            }
            _ => {}
        }
        slot.committers.insert(c.replica, ());
        Ok(self.try_execute())
    }

    fn try_execute(&mut self) -> Vec<HybridAction> {
        let mut actions = Vec::new();
        loop {
            let next = self.last_exec + 1;
            let ready = self.slots.get(&next).map_or(false, |s| {
                s.batch.is_some() && s.committers.len() >= self.config.commit_quorum()
            });
            if !ready {
                break;
            }
            let batch = self.slots.get(&next).and_then(|s| s.batch.clone()).expect("checked");
            self.record(|| DurableEvent::Committed {
                seq: SeqNum(next),
                batch: batch.clone(),
            });
            for req in &batch.requests {
                let client = req.client();
                match self.last_replies.get(&client) {
                    Some(cached) if cached.request.timestamp == req.id.timestamp => {
                        actions.push(HybridAction::SendReply { to: client, reply: cached.clone() });
                        continue;
                    }
                    Some(cached) if cached.request.timestamp > req.id.timestamp => continue,
                    _ => {}
                }
                let result = self.app.execute(&req.op);
                let key = client_mac_key(self.auth_seed, client);
                let auth =
                    key.tag(&Reply::auth_bytes(self.view, req.id, self.id, &result, false));
                let reply = Reply {
                    view: self.view,
                    request: req.id,
                    replica: self.id,
                    result,
                    encrypted: false,
                    auth,
                };
                self.last_replies.insert(client, reply.clone());
                actions.push(HybridAction::SendReply { to: client, reply });
            }
            for blob in self.app.drain_persist() {
                actions.push(HybridAction::Persist(blob));
            }
            self.slots.remove(&next);
            self.last_exec = next;
            actions.push(HybridAction::Executed { counter: next });
            self.maybe_snapshot(next);
        }
        actions
    }

    // --- durability --------------------------------------------------------

    /// Records `event` if a durable runtime opted in (the closure keeps
    /// disabled replicas from even building the event).
    fn record(&mut self, event: impl FnOnce() -> DurableEvent) {
        if self.durable_enabled {
            self.durable.push(event());
        }
    }

    /// Takes the periodic durable snapshot at interval boundaries.
    fn maybe_snapshot(&mut self, executed: u64) {
        if !self.durable_enabled || executed % HYBRID_CHECKPOINT_INTERVAL != 0 {
            return;
        }
        self.last_snapshot = Some((executed, self.checkpoint_state_bytes()));
        self.durable.push(DurableEvent::StableCheckpoint { seq: SeqNum(executed) });
    }

    /// Canonical snapshot bytes: application snapshot plus the
    /// replica-independent core of the reply cache
    /// `(client, timestamp, result)` — identical on every correct
    /// replica at the same counter value, which is what lets a
    /// recovering replica demand `f + 1` peer agreement on the digest.
    fn checkpoint_state_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let snapshot = self.app.snapshot();
        (snapshot.len() as u32).encode(&mut buf);
        buf.extend_from_slice(&snapshot);
        let replies: Vec<(ClientId, Timestamp, bytes::Bytes)> = self
            .last_replies
            .iter()
            .map(|(c, r)| (*c, r.request.timestamp, r.result.clone()))
            .collect();
        replies.encode(&mut buf);
        buf
    }

    fn restore_checkpoint_state(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let mut r = Reader::new(bytes);
        let len = u32::decode(&mut r)? as usize;
        let snapshot = r.take(len)?.to_vec();
        let replies: Vec<(ClientId, Timestamp, bytes::Bytes)> = Vec::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(ProtocolError::CorruptState("trailing snapshot bytes".into()));
        }
        self.app
            .restore(&snapshot)
            .map_err(|e| ProtocolError::CorruptState(format!("snapshot restore failed: {e}")))?;
        self.last_replies = replies
            .into_iter()
            .map(|(client, timestamp, result)| {
                let request = RequestId { client, timestamp };
                let key = client_mac_key(self.auth_seed, client);
                let auth =
                    key.tag(&Reply::auth_bytes(self.view, request, self.id, &result, false));
                let reply = Reply {
                    view: self.view,
                    request,
                    replica: self.id,
                    result,
                    encrypted: false,
                    auth,
                };
                (client, reply)
            })
            .collect();
        Ok(())
    }

    /// Starts recording durable consensus events.
    pub fn enable_durable_events(&mut self) {
        self.durable_enabled = true;
    }

    /// Drains the durable events recorded since the last drain.
    pub fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        std::mem::take(&mut self.durable)
    }

    /// Replays one WAL event during crash recovery.
    ///
    /// `CounterIssued` is the safety-critical one: it advances the
    /// restored trusted counter past every value the pre-crash replica
    /// ever signed with, so the restart cannot equivocate — the paper's
    /// sealed-counter recovery. `Committed` re-executes batches beyond
    /// the last snapshot.
    pub fn replay_durable_event(&mut self, event: DurableEvent) {
        // Replay only happens during crash recovery, and recovery means
        // this replica's verifier windows are stale: re-anchor them on
        // the first live message from each peer (see
        // [`UsigVerifier::resync`]). Idempotent, and recovery precedes
        // networking, so repeating it per event is harmless.
        self.verifier.resync();
        match event {
            DurableEvent::CounterIssued { counter } => self.usig.advance_to(counter),
            DurableEvent::Committed { seq, batch } => {
                if seq.0 == self.last_exec + 1 {
                    self.execute_batch_quietly(&batch);
                    self.last_exec = seq.0;
                }
            }
            _ => {}
        }
    }

    /// Executes a replayed batch without emitting actions (replies are
    /// cached for duplicate suppression, but nobody is listening yet).
    fn execute_batch_quietly(&mut self, batch: &RequestBatch) {
        for req in &batch.requests {
            let client = req.client();
            if self
                .last_replies
                .get(&client)
                .is_some_and(|cached| cached.request.timestamp >= req.id.timestamp)
            {
                continue;
            }
            let result = self.app.execute(&req.op);
            let key = client_mac_key(self.auth_seed, client);
            let auth = key.tag(&Reply::auth_bytes(self.view, req.id, self.id, &result, false));
            let reply = Reply {
                view: self.view,
                request: req.id,
                replica: self.id,
                result,
                encrypted: false,
                auth,
            };
            self.last_replies.insert(client, reply);
        }
        let _ = self.app.drain_persist();
    }

    /// The latest durable snapshot, if one was taken.
    pub fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        let (seq, state) = self.last_snapshot.as_ref()?;
        Some(DurableCheckpoint {
            seq: SeqNum(*seq),
            digest: digest_bytes(state),
            state: bytes::Bytes::from(state.clone()),
        })
    }

    /// Restores from a snapshot produced by
    /// [`HybridReplica::durable_checkpoint`] — locally unsealed, or
    /// agreed on by `f + 1` peers (the hybrid has no self-authenticating
    /// checkpoint certificates, so peer agreement *is* the trust
    /// anchor). Re-anchors the USIG verifier windows afterwards: the
    /// counters this replica saw before crashing are gone with its
    /// memory.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CorruptState`] when the bytes do not hash to the
    /// claimed digest or fail to decode.
    pub fn restore_durable_checkpoint(
        &mut self,
        cp: &DurableCheckpoint,
    ) -> Result<(), ProtocolError> {
        if digest_bytes(&cp.state) != cp.digest {
            return Err(ProtocolError::CorruptState(
                "snapshot bytes do not hash to the claimed digest".into(),
            ));
        }
        if cp.seq.0 <= self.last_exec {
            return Ok(()); // already at or past the snapshot
        }
        self.restore_checkpoint_state(&cp.state)?;
        self.last_exec = cp.seq.0;
        self.slots = self.slots.split_off(&(cp.seq.0 + 1));
        self.last_snapshot = Some((cp.seq.0, cp.state.to_vec()));
        self.verifier.resync();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usig::{FaultyUsig, Usig};
    use bytes::Bytes;
    use splitbft_app::CounterApp;
    use splitbft_types::Timestamp;

    const SEED: u64 = 77;

    type R = HybridReplica<CounterApp, Usig>;

    fn cluster(n: usize) -> Vec<R> {
        let cfg = HybridConfig::new(n).unwrap();
        (0..n as u32)
            .map(|i| {
                HybridReplica::new(
                    cfg.clone(),
                    ReplicaId(i),
                    SEED,
                    Usig::new(SEED, ReplicaId(i)),
                    CounterApp::new(),
                )
            })
            .collect()
    }

    fn request(client: u32, ts: u64) -> Request {
        let id = splitbft_types::RequestId { client: ClientId(client), timestamp: Timestamp(ts) };
        let op = Bytes::from_static(b"inc");
        let key = client_mac_key(SEED, ClientId(client));
        let auth = key.tag(&Request::auth_bytes(id, &op, false));
        Request { id, op, encrypted: false, auth }
    }

    fn pump(replicas: &mut [R], mut inbox: Vec<(usize, HybridMessage)>) -> Vec<Reply> {
        let mut replies = Vec::new();
        while let Some((to, msg)) = inbox.pop() {
            let actions = replicas[to].on_message(msg).unwrap_or_default();
            for a in actions {
                match a {
                    HybridAction::Broadcast(m) => {
                        for (i, _) in replicas.iter().enumerate() {
                            if i != to {
                                inbox.push((i, m.clone()));
                            }
                        }
                    }
                    HybridAction::SendReply { reply, .. } => replies.push(reply),
                    _ => {}
                }
            }
        }
        replies
    }

    #[test]
    fn three_replicas_commit_and_execute() {
        let mut replicas = cluster(3);
        let actions = replicas[0].on_client_batch(vec![request(0, 1)]);
        let prepare = actions
            .iter()
            .find_map(|a| match a {
                HybridAction::Broadcast(m) => Some(m.clone()),
                _ => None,
            })
            .expect("prepare broadcast");
        let replies = pump(&mut replicas, vec![(1, prepare.clone()), (2, prepare)]);

        for r in &replicas {
            assert_eq!(r.last_executed(), 1, "replica {} executed", r.id());
            assert_eq!(r.app().value(), 1);
        }
        // Replies from all three replicas (primary executes on quorum of
        // commits arriving back).
        assert!(replies.len() >= 2);
    }

    #[test]
    fn forged_request_rejected() {
        let mut replicas = cluster(3);
        let mut req = request(0, 1);
        req.auth = [0; 32];
        let actions = replicas[0].on_client_batch(vec![req]);
        assert!(actions.is_empty());
    }

    #[test]
    fn equivocation_blocked_by_genuine_usig() {
        // With a genuine counter, the primary physically cannot produce
        // two prepares with the same counter: the second create_ui call
        // advances the counter, and backups reject the gap/out-of-order.
        let mut replicas = cluster(3);
        let a1 = replicas[0].on_client_batch(vec![request(0, 1)]);
        let p1 = a1.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        let a2 = replicas[0].on_client_batch(vec![request(1, 1)]);
        let p2 = a2.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        assert_ne!(p1.ui.counter, p2.ui.counter, "counters are unique");

        // Delivering p2 before p1 is rejected (gap); p1 then p2 is fine.
        assert!(replicas[1].on_message(HybridMessage::Prepare(p2.clone())).is_err());
        assert!(replicas[1].on_message(HybridMessage::Prepare(p1)).is_ok());
        assert!(replicas[1].on_message(HybridMessage::Prepare(p2)).is_ok());
    }

    #[test]
    fn compromised_usig_breaks_safety() {
        // The Table 1 scenario: the primary's "trusted" counter is
        // compromised and rolled back, producing two conflicting batches
        // under the same counter. Disjoint backups each accept one —
        // divergent execution, a safety violation PBFT-with-3f+1 would
        // have prevented.
        let cfg = HybridConfig::new(3).unwrap();
        let mut evil_primary = HybridReplica::new(
            cfg.clone(),
            ReplicaId(0),
            SEED,
            FaultyUsig::new(SEED, ReplicaId(0)),
            CounterApp::new(),
        );
        let mk_backup = |i: u32| {
            HybridReplica::new(
                cfg.clone(),
                ReplicaId(i),
                SEED,
                Usig::new(SEED, ReplicaId(i)),
                CounterApp::new(),
            )
        };
        let mut r1 = mk_backup(1);
        let mut r2 = mk_backup(2);

        let a1 = evil_primary.on_client_batch(vec![request(0, 1)]);
        let p_a = a1.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();

        // Roll the counter back and order a *different* batch under the
        // same counter value.
        evil_primary.usig.rollback(1);
        let a2 = evil_primary.on_client_batch(vec![request(1, 1)]);
        let p_b = a2.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        assert_eq!(p_a.ui.counter, p_b.ui.counter);
        assert_ne!(p_a.batch_digest(), p_b.batch_digest());

        // r1 sees batch A, r2 sees batch B; both execute immediately
        // (own commit + primary's prepare = f+1 = 2).
        r1.on_message(HybridMessage::Prepare(p_a)).unwrap();
        r2.on_message(HybridMessage::Prepare(p_b)).unwrap();
        assert_eq!(r1.last_executed(), 1);
        assert_eq!(r2.last_executed(), 1);
        // Divergent state at the same slot: safety violated.
        // (Both executed "inc" from different clients here, so check the
        // reply bindings rather than the counter value: the slot's batch
        // digests differed.)
        assert_ne!(
            r1.last_replies.keys().collect::<Vec<_>>(),
            r2.last_replies.keys().collect::<Vec<_>>(),
            "replicas executed different requests at the same slot"
        );
    }

    #[test]
    fn five_replica_cluster_needs_three_commits() {
        let mut replicas = cluster(5);
        let actions = replicas[0].on_client_batch(vec![request(0, 1)]);
        let prepare = actions.iter().find_map(|a| match a {
            HybridAction::Broadcast(m) => Some(m.clone()),
            _ => None,
        }).unwrap();

        // Deliver the prepare to one backup only: primary+r1 = 2 < 3.
        let HybridMessage::Prepare(_) = &prepare else { panic!() };
        let acts = replicas[1].on_message(prepare.clone()).unwrap();
        assert_eq!(replicas[1].last_executed(), 0, "2 of 3 commits is not enough");

        // Deliver r1's commit to nobody; give the prepare to r2: now r2
        // has primary+own = 2 < 3 as well.
        let _ = acts;
        replicas[2].on_message(prepare).unwrap();
        assert_eq!(replicas[2].last_executed(), 0);
    }
}
