//! The hybrid replica state machine (normal-case MinBFT).

use crate::config::HybridConfig;
use crate::message::{HybridCommit, HybridMessage, HybridPrepare};
use crate::usig::{UsigTrait, UsigVerifier};
use splitbft_app::Application;
use splitbft_crypto::{client_mac_key, digest_of};
use splitbft_types::{
    ClientId, Digest, ProtocolError, ReplicaId, Reply, Request, RequestBatch, View,
};
use std::collections::BTreeMap;

/// Effects requested by a [`HybridReplica`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridAction {
    /// Send to every other replica.
    Broadcast(HybridMessage),
    /// Deliver a reply to a client.
    SendReply {
        /// Destination client.
        to: ClientId,
        /// The authenticated reply.
        reply: Reply,
    },
    /// Persist an application blob.
    Persist(bytes::Bytes),
    /// Observability: the batch at this primary counter executed.
    Executed {
        /// The agreement slot (primary counter value).
        counter: u64,
    },
}

#[derive(Debug, Default)]
struct HybridSlot {
    batch: Option<RequestBatch>,
    digest: Option<Digest>,
    /// Committing replicas (the primary's prepare counts as its commit).
    committers: BTreeMap<ReplicaId, ()>,
}

/// A replica of the hybrid protocol.
///
/// Generic over the trusted counter so the fault-model experiments can
/// swap in a [`crate::usig::FaultyUsig`].
pub struct HybridReplica<A, U> {
    config: HybridConfig,
    id: ReplicaId,
    view: View,
    usig: U,
    verifier: UsigVerifier,
    auth_seed: u64,
    slots: BTreeMap<u64, HybridSlot>,
    last_exec: u64,
    app: A,
    last_replies: BTreeMap<ClientId, Reply>,
}

impl<A: Application, U: UsigTrait> HybridReplica<A, U> {
    /// Creates replica `id` with its trusted counter `usig`.
    pub fn new(config: HybridConfig, id: ReplicaId, master_seed: u64, usig: U, app: A) -> Self {
        let verifier = UsigVerifier::new(master_seed, config.replicas());
        HybridReplica {
            config,
            id,
            view: View::initial(),
            usig,
            verifier,
            auth_seed: master_seed,
            slots: BTreeMap::new(),
            last_exec: 0,
            app,
            last_replies: BTreeMap::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// `true` if this replica is the primary.
    pub fn is_primary(&self) -> bool {
        self.config.primary(self.view) == self.id
    }

    /// Highest executed slot (primary counter value).
    pub fn last_executed(&self) -> u64 {
        self.last_exec
    }

    /// Read access to the application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the trusted counter — used by the fault-model
    /// experiments to compromise it (e.g. roll a
    /// [`crate::usig::FaultyUsig`] back).
    pub fn usig_mut(&mut self) -> &mut U {
        &mut self.usig
    }

    /// Digest of the application state, for divergence checks in tests
    /// and experiments.
    pub fn state_digest(&self) -> Digest {
        splitbft_crypto::digest_bytes(&self.app.snapshot())
    }

    fn verify_request(&self, req: &Request) -> bool {
        let key = client_mac_key(self.auth_seed, req.client());
        key.verify(&Request::auth_bytes(req.id, &req.op, req.encrypted), &req.auth)
    }

    /// Primary: order a batch of client requests.
    pub fn on_client_batch(&mut self, requests: Vec<Request>) -> Vec<HybridAction> {
        let mut actions = Vec::new();
        if !self.is_primary() {
            return actions;
        }
        let fresh: Vec<Request> = requests
            .into_iter()
            .filter(|r| self.verify_request(r))
            .filter(|r| {
                self.last_replies
                    .get(&r.client())
                    .map_or(true, |cached| cached.request.timestamp < r.id.timestamp)
            })
            .collect();
        if fresh.is_empty() {
            return actions;
        }
        let batch = RequestBatch::new(fresh);
        let digest = digest_of(&batch);
        let ui = self.usig.create_ui(&digest);
        let counter = ui.counter;

        let slot = self.slots.entry(counter).or_default();
        slot.batch = Some(batch.clone());
        slot.digest = Some(digest);
        slot.committers.insert(self.id, ());

        actions.push(HybridAction::Broadcast(HybridMessage::Prepare(HybridPrepare {
            view: self.view,
            batch,
            ui,
        })));
        actions.extend(self.try_execute());
        actions
    }

    /// Handles one protocol message.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; USIG violations surface as
    /// [`ProtocolError::BadAuthenticator`].
    pub fn on_message(&mut self, msg: HybridMessage) -> Result<Vec<HybridAction>, ProtocolError> {
        match msg {
            HybridMessage::Prepare(p) => self.handle_prepare(p),
            HybridMessage::Commit(c) => self.handle_commit(c),
        }
    }

    fn handle_prepare(&mut self, p: HybridPrepare) -> Result<Vec<HybridAction>, ProtocolError> {
        if p.view != self.view {
            return Err(ProtocolError::WrongView { got: p.view, current: self.view });
        }
        let primary = self.config.primary(p.view);
        if primary == self.id {
            return Err(ProtocolError::Other("primary received its own prepare".into()));
        }
        let digest = p.batch_digest();
        self.verifier
            .verify(primary, &digest, &p.ui)
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "USIG on prepare" })?;
        if !p.batch.requests.iter().all(|r| self.verify_request(r)) {
            return Err(ProtocolError::BadAuthenticator { kind: "request in hybrid batch" });
        }

        let counter = p.ui.counter;
        let slot = self.slots.entry(counter).or_default();
        slot.batch = Some(p.batch);
        slot.digest = Some(digest);
        slot.committers.insert(primary, ());

        // This backup's commit, sealed by its own counter.
        let mut commit = HybridCommit {
            view: self.view,
            replica: self.id,
            primary_counter: counter,
            batch_digest: digest,
            ui: crate::usig::UsigUi { counter: 0, signature: splitbft_types::Signature::ZERO },
        };
        commit.ui = self.usig.create_ui(&commit.commit_digest());
        self.slots.entry(counter).or_default().committers.insert(self.id, ());

        let mut actions = vec![HybridAction::Broadcast(HybridMessage::Commit(commit))];
        actions.extend(self.try_execute());
        Ok(actions)
    }

    fn handle_commit(&mut self, c: HybridCommit) -> Result<Vec<HybridAction>, ProtocolError> {
        if c.view != self.view {
            return Err(ProtocolError::WrongView { got: c.view, current: self.view });
        }
        if !self.config.contains(c.replica) {
            return Err(ProtocolError::UnknownReplica(c.replica));
        }
        self.verifier
            .verify(c.replica, &c.commit_digest(), &c.ui)
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "USIG on commit" })?;

        let slot = self.slots.entry(c.primary_counter).or_default();
        // A commit only counts toward slots whose digest it matches;
        // commits for unknown slots park the digest for later comparison.
        match slot.digest {
            Some(d) if d != c.batch_digest => {
                return Err(ProtocolError::BadCertificate { kind: "hybrid commit digest" })
            }
            _ => {}
        }
        slot.committers.insert(c.replica, ());
        Ok(self.try_execute())
    }

    fn try_execute(&mut self) -> Vec<HybridAction> {
        let mut actions = Vec::new();
        loop {
            let next = self.last_exec + 1;
            let ready = self.slots.get(&next).map_or(false, |s| {
                s.batch.is_some() && s.committers.len() >= self.config.commit_quorum()
            });
            if !ready {
                break;
            }
            let batch = self.slots.get(&next).and_then(|s| s.batch.clone()).expect("checked");
            for req in &batch.requests {
                let client = req.client();
                match self.last_replies.get(&client) {
                    Some(cached) if cached.request.timestamp == req.id.timestamp => {
                        actions.push(HybridAction::SendReply { to: client, reply: cached.clone() });
                        continue;
                    }
                    Some(cached) if cached.request.timestamp > req.id.timestamp => continue,
                    _ => {}
                }
                let result = self.app.execute(&req.op);
                let key = client_mac_key(self.auth_seed, client);
                let auth =
                    key.tag(&Reply::auth_bytes(self.view, req.id, self.id, &result, false));
                let reply = Reply {
                    view: self.view,
                    request: req.id,
                    replica: self.id,
                    result,
                    encrypted: false,
                    auth,
                };
                self.last_replies.insert(client, reply.clone());
                actions.push(HybridAction::SendReply { to: client, reply });
            }
            for blob in self.app.drain_persist() {
                actions.push(HybridAction::Persist(blob));
            }
            self.slots.remove(&next);
            self.last_exec = next;
            actions.push(HybridAction::Executed { counter: next });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usig::{FaultyUsig, Usig};
    use bytes::Bytes;
    use splitbft_app::CounterApp;
    use splitbft_types::Timestamp;

    const SEED: u64 = 77;

    type R = HybridReplica<CounterApp, Usig>;

    fn cluster(n: usize) -> Vec<R> {
        let cfg = HybridConfig::new(n).unwrap();
        (0..n as u32)
            .map(|i| {
                HybridReplica::new(
                    cfg.clone(),
                    ReplicaId(i),
                    SEED,
                    Usig::new(SEED, ReplicaId(i)),
                    CounterApp::new(),
                )
            })
            .collect()
    }

    fn request(client: u32, ts: u64) -> Request {
        let id = splitbft_types::RequestId { client: ClientId(client), timestamp: Timestamp(ts) };
        let op = Bytes::from_static(b"inc");
        let key = client_mac_key(SEED, ClientId(client));
        let auth = key.tag(&Request::auth_bytes(id, &op, false));
        Request { id, op, encrypted: false, auth }
    }

    fn pump(replicas: &mut [R], mut inbox: Vec<(usize, HybridMessage)>) -> Vec<Reply> {
        let mut replies = Vec::new();
        while let Some((to, msg)) = inbox.pop() {
            let actions = replicas[to].on_message(msg).unwrap_or_default();
            for a in actions {
                match a {
                    HybridAction::Broadcast(m) => {
                        for (i, _) in replicas.iter().enumerate() {
                            if i != to {
                                inbox.push((i, m.clone()));
                            }
                        }
                    }
                    HybridAction::SendReply { reply, .. } => replies.push(reply),
                    _ => {}
                }
            }
        }
        replies
    }

    #[test]
    fn three_replicas_commit_and_execute() {
        let mut replicas = cluster(3);
        let actions = replicas[0].on_client_batch(vec![request(0, 1)]);
        let prepare = actions
            .iter()
            .find_map(|a| match a {
                HybridAction::Broadcast(m) => Some(m.clone()),
                _ => None,
            })
            .expect("prepare broadcast");
        let replies = pump(&mut replicas, vec![(1, prepare.clone()), (2, prepare)]);

        for r in &replicas {
            assert_eq!(r.last_executed(), 1, "replica {} executed", r.id());
            assert_eq!(r.app().value(), 1);
        }
        // Replies from all three replicas (primary executes on quorum of
        // commits arriving back).
        assert!(replies.len() >= 2);
    }

    #[test]
    fn forged_request_rejected() {
        let mut replicas = cluster(3);
        let mut req = request(0, 1);
        req.auth = [0; 32];
        let actions = replicas[0].on_client_batch(vec![req]);
        assert!(actions.is_empty());
    }

    #[test]
    fn equivocation_blocked_by_genuine_usig() {
        // With a genuine counter, the primary physically cannot produce
        // two prepares with the same counter: the second create_ui call
        // advances the counter, and backups reject the gap/out-of-order.
        let mut replicas = cluster(3);
        let a1 = replicas[0].on_client_batch(vec![request(0, 1)]);
        let p1 = a1.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        let a2 = replicas[0].on_client_batch(vec![request(1, 1)]);
        let p2 = a2.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        assert_ne!(p1.ui.counter, p2.ui.counter, "counters are unique");

        // Delivering p2 before p1 is rejected (gap); p1 then p2 is fine.
        assert!(replicas[1].on_message(HybridMessage::Prepare(p2.clone())).is_err());
        assert!(replicas[1].on_message(HybridMessage::Prepare(p1)).is_ok());
        assert!(replicas[1].on_message(HybridMessage::Prepare(p2)).is_ok());
    }

    #[test]
    fn compromised_usig_breaks_safety() {
        // The Table 1 scenario: the primary's "trusted" counter is
        // compromised and rolled back, producing two conflicting batches
        // under the same counter. Disjoint backups each accept one —
        // divergent execution, a safety violation PBFT-with-3f+1 would
        // have prevented.
        let cfg = HybridConfig::new(3).unwrap();
        let mut evil_primary = HybridReplica::new(
            cfg.clone(),
            ReplicaId(0),
            SEED,
            FaultyUsig::new(SEED, ReplicaId(0)),
            CounterApp::new(),
        );
        let mk_backup = |i: u32| {
            HybridReplica::new(
                cfg.clone(),
                ReplicaId(i),
                SEED,
                Usig::new(SEED, ReplicaId(i)),
                CounterApp::new(),
            )
        };
        let mut r1 = mk_backup(1);
        let mut r2 = mk_backup(2);

        let a1 = evil_primary.on_client_batch(vec![request(0, 1)]);
        let p_a = a1.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();

        // Roll the counter back and order a *different* batch under the
        // same counter value.
        evil_primary.usig.rollback(1);
        let a2 = evil_primary.on_client_batch(vec![request(1, 1)]);
        let p_b = a2.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        }).unwrap();
        assert_eq!(p_a.ui.counter, p_b.ui.counter);
        assert_ne!(p_a.batch_digest(), p_b.batch_digest());

        // r1 sees batch A, r2 sees batch B; both execute immediately
        // (own commit + primary's prepare = f+1 = 2).
        r1.on_message(HybridMessage::Prepare(p_a)).unwrap();
        r2.on_message(HybridMessage::Prepare(p_b)).unwrap();
        assert_eq!(r1.last_executed(), 1);
        assert_eq!(r2.last_executed(), 1);
        // Divergent state at the same slot: safety violated.
        // (Both executed "inc" from different clients here, so check the
        // reply bindings rather than the counter value: the slot's batch
        // digests differed.)
        assert_ne!(
            r1.last_replies.keys().collect::<Vec<_>>(),
            r2.last_replies.keys().collect::<Vec<_>>(),
            "replicas executed different requests at the same slot"
        );
    }

    #[test]
    fn five_replica_cluster_needs_three_commits() {
        let mut replicas = cluster(5);
        let actions = replicas[0].on_client_batch(vec![request(0, 1)]);
        let prepare = actions.iter().find_map(|a| match a {
            HybridAction::Broadcast(m) => Some(m.clone()),
            _ => None,
        }).unwrap();

        // Deliver the prepare to one backup only: primary+r1 = 2 < 3.
        let HybridMessage::Prepare(_) = &prepare else { panic!() };
        let acts = replicas[1].on_message(prepare.clone()).unwrap();
        assert_eq!(replicas[1].last_executed(), 0, "2 of 3 commits is not enough");

        // Deliver r1's commit to nobody; give the prepare to r2: now r2
        // has primary+own = 2 < 3 as well.
        let _ = acts;
        replicas[2].on_message(prepare).unwrap();
        assert_eq!(replicas[2].last_executed(), 0);
    }
}
