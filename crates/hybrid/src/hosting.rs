//! Hosting adapter: [`HybridReplica`] as a [`Protocol`].
//!
//! The hybrid baseline speaks its own two-phase message vocabulary
//! ([`HybridMessage`]), which is why [`Protocol::Message`] is an
//! associated type rather than a fixed `ConsensusMessage`: the same
//! runtimes host MinBFT-style clusters without any enum-wrapping.

use crate::message::HybridMessage;
use crate::replica::{HybridAction, HybridReplica};
use crate::usig::UsigTrait;
use splitbft_app::Application;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_types::{DurableCheckpoint, DurableEvent, ProtocolError, Request};

fn to_outputs(actions: Vec<HybridAction>) -> Vec<ProtocolOutput<HybridMessage>> {
    actions
        .into_iter()
        .filter_map(|action| match action {
            HybridAction::Broadcast(msg) => Some(ProtocolOutput::Broadcast(msg)),
            HybridAction::SendReply { to, reply } => Some(ProtocolOutput::Reply { to, reply }),
            // Persistence and observability have no network footprint.
            _ => None,
        })
        .collect()
}

impl<A, U> Protocol for HybridReplica<A, U>
where
    A: Application + 'static,
    U: UsigTrait + Send + 'static,
{
    type Message = HybridMessage;

    fn on_message(&mut self, msg: HybridMessage) -> Vec<ProtocolOutput<HybridMessage>> {
        // Unverifiable USIG certificates and malformed messages are
        // ignored, not fatal — byzantine peers may send anything.
        to_outputs(HybridReplica::on_message(self, msg).unwrap_or_default())
    }

    fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<HybridMessage>> {
        to_outputs(self.on_client_batch(requests))
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<HybridMessage>> {
        // The MinBFT view change is out of scope (see the crate docs);
        // timeouts are a no-op rather than an error.
        Vec::new()
    }

    fn progress(&self) -> u64 {
        self.last_executed()
    }

    fn has_pending_requests(&self) -> bool {
        // With no view change to fire, reporting pending requests would
        // only make runtimes call the no-op timeout handler; keep the
        // timer permanently quiet instead.
        false
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.enable_durable_events();
        HybridReplica::drain_durable_events(self)
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        HybridReplica::replay_durable_event(self, event)
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        HybridReplica::durable_checkpoint(self)
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        self.restore_durable_checkpoint(cp)
    }

    // `catch_up_messages` keeps the empty default: executed slots are
    // discarded, so lagging peers recover from the snapshot plus the
    // live message stream (re-requesting until they reconnect to it).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HybridClient;
    use crate::config::HybridConfig;
    use crate::usig::Usig;
    use splitbft_app::CounterApp;
    use splitbft_types::{ClientId, ReplicaId};

    #[test]
    fn hybrid_replica_hosts_as_protocol() {
        let config = HybridConfig::new(3).unwrap();
        let mut primary = HybridReplica::new(
            config.clone(),
            ReplicaId(0),
            42,
            Usig::new(42, ReplicaId(0)),
            CounterApp::new(),
        );
        let mut client = HybridClient::new(config, ClientId(1), 42);
        let request = client.issue(bytes::Bytes::from_static(b"inc"));
        let outputs = Protocol::on_client_requests(&mut primary, vec![request]);
        assert!(
            outputs.iter().any(|o| matches!(o, ProtocolOutput::Broadcast(_))),
            "primary should broadcast a Prepare"
        );
    }
}
