//! Fault-injection wrappers for enclaves.
//!
//! SplitBFT's whole point is that *enclaves themselves may fail*: "we do
//! assume that enclaves can fail and become byzantine". The robustness
//! experiments (paper Table 1) inject such faults. [`FaultyEnclave`] wraps
//! any [`Enclave`] and corrupts its observable behaviour according to a
//! [`FaultPlan`] — from the outside it is indistinguishable from a
//! compromised enclave, which is exactly the attacker model.
//!
//! Crash faults are injected at the host instead
//! ([`EnclaveHost::inject_crash`](crate::host::EnclaveHost::inject_crash)),
//! since a crash is visible to the environment while byzantine behaviour
//! is not. Protocol-aware equivocation (sending *different well-formed
//! messages* to different peers) is implemented at the protocol layer in
//! `splitbft-sim` and `splitbft-model`, where message semantics are known.

use crate::enclave::{Enclave, OcallSink};

/// The observable misbehaviours a wrapped enclave can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stop posting ocalls: the enclave silently drops all its outputs
    /// (an "exploited enclave could remain unresponsive to messages").
    MuteOcalls,
    /// Flip bits in every ocall payload (memory corruption of outputs).
    CorruptOcalls {
        /// XOR mask applied to every payload byte.
        xor: u8,
    },
    /// Return garbage from ecalls while still posting ocalls.
    CorruptReturns {
        /// XOR mask applied to every returned byte.
        xor: u8,
    },
    /// Swallow every ecall: no state change, no output, no ocalls
    /// (an enclave "delaying executing an operation" indefinitely).
    DropEcalls,
}

/// When a fault becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The kind of misbehaviour.
    pub kind: FaultKind,
    /// The fault activates after this many healthy ecalls (0 = from the
    /// start). Models latent compromises that trigger mid-protocol.
    pub after_ecalls: u64,
}

impl FaultPlan {
    /// A fault active from the first ecall.
    pub fn immediate(kind: FaultKind) -> Self {
        FaultPlan { kind, after_ecalls: 0 }
    }

    /// A fault activating after `n` healthy ecalls.
    pub fn after(kind: FaultKind, n: u64) -> Self {
        FaultPlan { kind, after_ecalls: n }
    }

    /// A plan that never activates — lets healthy enclaves be hosted
    /// through the same [`FaultyEnclave`] wrapper type as faulty ones.
    pub fn benign() -> Self {
        FaultPlan { kind: FaultKind::MuteOcalls, after_ecalls: u64::MAX }
    }
}

/// An [`Enclave`] wrapper that misbehaves according to a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyEnclave<E> {
    inner: E,
    plan: FaultPlan,
    ecalls_seen: u64,
}

impl<E: Enclave> FaultyEnclave<E> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultyEnclave { inner, plan, ecalls_seen: 0 }
    }

    /// `true` once the fault is active.
    pub fn is_active(&self) -> bool {
        self.ecalls_seen >= self.plan.after_ecalls
    }

    /// Access to the wrapped enclave.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Replaces the fault plan (arming or disarming the fault at
    /// runtime, as the robustness experiments do mid-protocol).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.ecalls_seen = 0;
    }
}

/// An ocall sink that applies a fault transformation before forwarding.
struct FaultSink<'a> {
    inner: &'a mut dyn OcallSink,
    kind: FaultKind,
}

impl OcallSink for FaultSink<'_> {
    fn ocall(&mut self, id: u32, data: &[u8]) {
        match self.kind {
            FaultKind::MuteOcalls => {}
            FaultKind::CorruptOcalls { xor } => {
                let corrupted: Vec<u8> = data.iter().map(|b| b ^ xor).collect();
                self.inner.ocall(id, &corrupted);
            }
            FaultKind::CorruptReturns { .. } | FaultKind::DropEcalls => {
                self.inner.ocall(id, data);
            }
        }
    }
}

impl<E: Enclave> Enclave for FaultyEnclave<E> {
    fn measurement(&self) -> [u8; 32] {
        // A compromised enclave still *measures* as the genuine code: the
        // exploit happened after attestation. This is the crux of the
        // paper's threat model — attestation does not save you from bugs.
        self.inner.measurement()
    }

    fn handle_ecall(&mut self, id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
        let active = self.is_active();
        self.ecalls_seen += 1;
        if !active {
            return self.inner.handle_ecall(id, input, env);
        }
        match self.plan.kind {
            FaultKind::DropEcalls => Vec::new(),
            kind => {
                let mut sink = FaultSink { inner: env, kind };
                let out = self.inner.handle_ecall(id, input, &mut sink);
                match kind {
                    FaultKind::CorruptReturns { xor } => {
                        out.into_iter().map(|b| b ^ xor).collect()
                    }
                    _ => out,
                }
            }
        }
    }

    fn memory_usage(&self) -> usize {
        self.inner.memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::OcallQueue;

    struct Echo;
    impl Enclave for Echo {
        fn measurement(&self) -> [u8; 32] {
            [0xAA; 32]
        }
        fn handle_ecall(&mut self, _id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
            env.ocall(1, input);
            input.to_vec()
        }
    }

    fn run(e: &mut dyn Enclave, input: &[u8]) -> (Vec<u8>, Vec<Vec<u8>>) {
        let mut q = OcallQueue::new();
        let out = e.handle_ecall(0, input, &mut q);
        (out, q.drain().into_iter().map(|o| o.data).collect())
    }

    #[test]
    fn mute_drops_ocalls_but_returns() {
        let mut e = FaultyEnclave::new(Echo, FaultPlan::immediate(FaultKind::MuteOcalls));
        let (out, ocalls) = run(&mut e, b"hi");
        assert_eq!(out, b"hi");
        assert!(ocalls.is_empty());
    }

    #[test]
    fn corrupt_ocalls_flips_bits() {
        let mut e = FaultyEnclave::new(
            Echo,
            FaultPlan::immediate(FaultKind::CorruptOcalls { xor: 0xFF }),
        );
        let (out, ocalls) = run(&mut e, &[0x00, 0x0F]);
        assert_eq!(out, &[0x00, 0x0F]);
        assert_eq!(ocalls[0], vec![0xFF, 0xF0]);
    }

    #[test]
    fn corrupt_returns_flips_output_only() {
        let mut e = FaultyEnclave::new(
            Echo,
            FaultPlan::immediate(FaultKind::CorruptReturns { xor: 0x01 }),
        );
        let (out, ocalls) = run(&mut e, &[0x10]);
        assert_eq!(out, &[0x11]);
        assert_eq!(ocalls[0], vec![0x10]);
    }

    #[test]
    fn drop_ecalls_swallows_everything() {
        let mut e = FaultyEnclave::new(Echo, FaultPlan::immediate(FaultKind::DropEcalls));
        let (out, ocalls) = run(&mut e, b"hi");
        assert!(out.is_empty());
        assert!(ocalls.is_empty());
    }

    #[test]
    fn deferred_fault_activates_after_threshold() {
        let mut e = FaultyEnclave::new(Echo, FaultPlan::after(FaultKind::MuteOcalls, 2));
        assert!(!e.is_active());
        let (_, ocalls) = run(&mut e, b"1");
        assert_eq!(ocalls.len(), 1);
        let (_, ocalls) = run(&mut e, b"2");
        assert_eq!(ocalls.len(), 1);
        // Third call: fault active.
        assert!(e.is_active());
        let (_, ocalls) = run(&mut e, b"3");
        assert!(ocalls.is_empty());
    }

    #[test]
    fn compromised_enclave_keeps_genuine_measurement() {
        let e = FaultyEnclave::new(Echo, FaultPlan::immediate(FaultKind::MuteOcalls));
        assert_eq!(e.measurement(), [0xAA; 32]);
    }
}
