//! A simulated trusted-execution substrate standing in for Intel SGX.
//!
//! The paper runs each compartment in an SGX enclave built with the
//! Teaclave SDK. This crate reproduces the *architecture* of that stack in
//! software so the rest of the system is written exactly as if it targeted
//! real enclaves:
//!
//! - [`enclave`] — the [`enclave::Enclave`] trait: code loaded
//!   into an enclave, entered only through *ecalls* and talking to the
//!   outside world only through *ocalls*. Enclaves are single-threaded, as
//!   in the paper ("we only allow a single thread to execute in each
//!   enclave").
//! - [`host`] — [`host::EnclaveHost`]: the untrusted side of
//!   the boundary. It serializes every crossing, charges the cost model,
//!   accounts copied bytes and EPC usage, and exposes transition
//!   statistics (the data behind the paper's Figure 4).
//! - [`cost`] — [`cost::CostModel`]: virtual-time costs of
//!   transitions (≈ 8,640 cycles each, after Weisse et al. (HotCalls)), byte
//!   copies, cryptographic operations and request execution. Calibrated
//!   against the paper's measurements; used by the discrete-event
//!   simulator.
//! - [`seal`] — SGX-style sealing: encrypt enclave secrets under a key
//!   derived from the platform and the enclave *measurement*, so only the
//!   same enclave code on the same platform can unseal.
//! - [`attest`] — simulated remote attestation: quotes over a measurement
//!   and report data, verified against the (simulated) platform
//!   certification authority. Clients use this to authenticate Execution
//!   enclaves before installing session keys.
//! - [`fault`] — fault-injection wrappers that make an enclave crash, go
//!   mute, or corrupt its outputs, used by the robustness experiments
//!   (paper Table 1).
//!
//! # Example
//!
//! ```
//! use splitbft_tee::enclave::{Enclave, OcallSink};
//! use splitbft_tee::host::{EnclaveHost, ExecMode};
//! use splitbft_tee::cost::CostModel;
//!
//! struct Echo;
//! impl Enclave for Echo {
//!     fn measurement(&self) -> [u8; 32] { [0xEC; 32] }
//!     fn handle_ecall(&mut self, _id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
//!         env.ocall(7, input);
//!         input.to_vec()
//!     }
//! }
//!
//! let mut host = EnclaveHost::new(Echo, ExecMode::Hardware, CostModel::paper_calibrated());
//! let reply = host.ecall(1, b"ping").expect("enclave is healthy");
//! assert_eq!(reply.output, b"ping");
//! assert_eq!(reply.ocalls.len(), 1);
//! assert_eq!(host.stats().ecalls, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod cost;
pub mod enclave;
pub mod fault;
pub mod host;
pub mod seal;

pub use attest::{AttestationError, PlatformAuthority, Quote};
pub use cost::CostModel;
pub use enclave::{Enclave, EnclaveError, Ocall, OcallSink};
pub use fault::{FaultKind, FaultPlan, FaultyEnclave};
pub use host::{EcallReply, EnclaveHost, ExecMode, TransitionStats};
pub use seal::{seal_data, unseal_data, SealError, SealingIdentity};
