//! Simulated remote attestation.
//!
//! In the paper, "at the start of the service, the client first attests to
//! the execution and preparation enclave verifying their genuineness and
//! SGX support", then installs a session key in the Execution enclave. We
//! reproduce the flow with a simulated platform certification authority
//! (standing in for Intel's quoting infrastructure): the authority signs
//! *quotes* binding an enclave measurement to enclave-chosen report data
//! (which carries the enclave's public keys), and verifiers check quotes
//! against the authority's public key and the expected measurement.

use splitbft_crypto::keys::KeyPair;
use splitbft_types::{PublicKey, Signature};

/// A signed attestation quote: "an enclave with this measurement, on a
/// genuine platform, presented this report data".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The attested enclave's measurement (MRENCLAVE).
    pub measurement: [u8; 32],
    /// Enclave-chosen data bound into the quote — SplitBFT enclaves put
    /// their signing and key-exchange public keys here.
    pub report_data: Vec<u8>,
    /// The platform authority's signature over measurement ‖ report data.
    pub signature: Signature,
}

/// Why a quote was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The signature does not verify against the authority key.
    BadSignature,
    /// The quote is genuine but attests a different enclave than expected.
    WrongMeasurement,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::BadSignature => f.write_str("quote signature invalid"),
            AttestationError::WrongMeasurement => {
                f.write_str("quote attests an unexpected enclave measurement")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

/// The simulated platform certification authority (Intel's quoting enclave
/// + attestation service, collapsed into one signer).
#[derive(Debug, Clone)]
pub struct PlatformAuthority {
    keypair: KeyPair,
}

impl PlatformAuthority {
    /// Creates the authority from a seed. All replicas in a simulated
    /// deployment share one authority, as all Azure SGX machines share
    /// Intel's.
    pub fn from_seed(seed: u64) -> Self {
        PlatformAuthority { keypair: KeyPair::from_seed(seed ^ 0xA77E57A77E57) }
    }

    /// The authority's public key, known to all verifiers.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    fn quote_bytes(measurement: &[u8; 32], report_data: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40 + report_data.len());
        buf.extend_from_slice(b"quote:");
        buf.extend_from_slice(measurement);
        buf.extend_from_slice(report_data);
        buf
    }

    /// Issues a quote for an enclave. In real SGX the hardware guarantees
    /// that `measurement` is the actual loaded code; the simulation trusts
    /// its caller (the `EnclaveHost`) for that.
    pub fn quote(&self, measurement: [u8; 32], report_data: Vec<u8>) -> Quote {
        let bytes = Self::quote_bytes(&measurement, &report_data);
        Quote { measurement, report_data, signature: self.keypair.sign(&bytes) }
    }

    /// Verifies a quote against the authority's public key and the
    /// verifier's expected measurement.
    ///
    /// # Errors
    ///
    /// [`AttestationError::BadSignature`] for forged quotes,
    /// [`AttestationError::WrongMeasurement`] for genuine quotes of the
    /// wrong enclave.
    pub fn verify(
        authority_key: &PublicKey,
        expected_measurement: &[u8; 32],
        quote: &Quote,
    ) -> Result<(), AttestationError> {
        let bytes = Self::quote_bytes(&quote.measurement, &quote.report_data);
        if !KeyPair::verify(authority_key, &bytes, &quote.signature) {
            return Err(AttestationError::BadSignature);
        }
        if &quote.measurement != expected_measurement {
            return Err(AttestationError::WrongMeasurement);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_verifies() {
        let authority = PlatformAuthority::from_seed(1);
        let quote = authority.quote([7u8; 32], b"exec-enclave-pk".to_vec());
        assert!(PlatformAuthority::verify(&authority.public_key(), &[7u8; 32], &quote).is_ok());
    }

    #[test]
    fn wrong_measurement_rejected() {
        let authority = PlatformAuthority::from_seed(1);
        let quote = authority.quote([7u8; 32], vec![]);
        assert_eq!(
            PlatformAuthority::verify(&authority.public_key(), &[8u8; 32], &quote),
            Err(AttestationError::WrongMeasurement)
        );
    }

    #[test]
    fn tampered_report_data_rejected() {
        let authority = PlatformAuthority::from_seed(1);
        let mut quote = authority.quote([7u8; 32], b"real-key".to_vec());
        quote.report_data = b"evil-key".to_vec();
        assert_eq!(
            PlatformAuthority::verify(&authority.public_key(), &[7u8; 32], &quote),
            Err(AttestationError::BadSignature)
        );
    }

    #[test]
    fn quote_from_other_authority_rejected() {
        let real = PlatformAuthority::from_seed(1);
        let fake = PlatformAuthority::from_seed(2);
        let quote = fake.quote([7u8; 32], vec![]);
        assert_eq!(
            PlatformAuthority::verify(&real.public_key(), &[7u8; 32], &quote),
            Err(AttestationError::BadSignature)
        );
    }

    #[test]
    fn measurement_swap_rejected() {
        // A genuine quote cannot be replayed for a different measurement:
        // the measurement is inside the signed bytes.
        let authority = PlatformAuthority::from_seed(1);
        let mut quote = authority.quote([7u8; 32], vec![1, 2, 3]);
        quote.measurement = [9u8; 32];
        assert_eq!(
            PlatformAuthority::verify(&authority.public_key(), &[9u8; 32], &quote),
            Err(AttestationError::BadSignature)
        );
    }
}
