//! The virtual-time cost model of the trusted-execution boundary.
//!
//! The paper's overhead analysis (§5, §6) attributes SplitBFT's cost to
//! (i) enclave transitions (≈ 8,640 cycles each, citing HotCalls, Weisse et al.),
//! (ii) copying data in and out of enclaves, and (iii) added
//! serialization. This module turns those into numbers the discrete-event
//! simulator and the host accounting can charge. The defaults are
//! calibrated against the paper's measurements on a 3.7 GHz Xeon E-2288G:
//! signature-heavy ecalls in the hundreds of microseconds, an unbatched
//! Execution ecall total around 340 µs, and a batched Preparation ecall
//! near 0.9 ms per 200-request batch.

/// Virtual-time costs for enclave and protocol operations, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// CPU frequency in GHz, used to convert cycle counts.
    pub cpu_ghz: f64,
    /// Cycles per enclave transition (one ecall = enter + exit, charged
    /// once with this total). Weisse et al. measure ≈ 8,640 cycles.
    pub transition_cycles: u64,
    /// Cost per byte copied across the boundary (in or out).
    pub copy_ns_per_byte: f64,
    /// Cost of serializing/deserializing one byte of message data.
    pub serialize_ns_per_byte: f64,
    /// Creating one signature (the paper uses 256-bit ed25519 via `ring`).
    pub sign_ns: u64,
    /// Verifying one signature.
    pub verify_ns: u64,
    /// Fixed cost of one HMAC-SHA2 computation.
    pub hmac_base_ns: u64,
    /// Per-byte cost of HMAC-SHA2.
    pub hmac_ns_per_byte: f64,
    /// Fixed per-event protocol handling (deserialization, log
    /// insertion, quorum bookkeeping) charged per handled message. The
    /// dominant calibration constant: with ed25519 verification it puts
    /// the Execution compartment's unbatched ecall total near the paper's
    /// 343 µs and the PBFT core near its ~5k op/s unbatched ceiling.
    pub handler_ns: u64,
    /// Admitting one client request into the Preparation enclave:
    /// copy-in, unmarshalling, HMAC verification. Dominates the batched
    /// Preparation ecall (≈ 0.9 ms per 200-request batch in the paper).
    pub request_admission_ns: u64,
    /// Executing one application operation (KVS put/get).
    pub exec_ns_per_op: u64,
    /// SplitBFT Execution-side per-request total: MAC re-check, AEAD
    /// decrypt, execute, encrypt + MAC the reply.
    pub exec_request_ns: u64,
    /// AEAD-decrypting one (small) client request inside Execution.
    pub decrypt_ns: u64,
    /// Sealing and persisting one blockchain block via ocall
    /// (`sgx_tprotected_fs` in the paper) — charged per block of 5
    /// requests in the blockchain application.
    pub block_seal_ns: u64,
    /// One-way network latency between replicas (same-region Azure VMs on
    /// 40 Gb Ethernet).
    pub net_one_way_ns: u64,
    /// Per-byte network serialization cost (bandwidth term).
    pub net_ns_per_byte: f64,
}

impl CostModel {
    /// The default model, calibrated to the paper's testbed (Intel Xeon
    /// E-2288G at 3.7 GHz, SGX SDK 2.16, same-region Azure networking).
    pub fn paper_calibrated() -> Self {
        CostModel {
            cpu_ghz: 3.7,
            transition_cycles: 8_640,
            copy_ns_per_byte: 0.6,
            serialize_ns_per_byte: 0.8,
            sign_ns: 25_000,
            verify_ns: 75_000,
            hmac_base_ns: 2_000,
            hmac_ns_per_byte: 8.0,
            handler_ns: 28_000,
            request_admission_ns: 3_500,
            exec_ns_per_op: 1_000,
            exec_request_ns: 1_800,
            decrypt_ns: 800,
            block_seal_ns: 110_000,
            net_one_way_ns: 60_000,
            net_ns_per_byte: 0.25,
        }
    }

    /// The same model with enclave transitions free — SGX *simulation
    /// mode*, which the paper measures to isolate transition overhead
    /// ("enclave transitions cause 20% of the overhead").
    pub fn simulation_mode() -> Self {
        CostModel { transition_cycles: 0, copy_ns_per_byte: 0.2, ..Self::paper_calibrated() }
    }

    /// Converts a cycle count to nanoseconds at the model's clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.cpu_ghz) as u64
    }

    /// The boundary cost of one ecall moving `bytes_in` in and `bytes_out`
    /// out: transition plus copy plus (de)serialization.
    pub fn ecall_boundary_ns(&self, bytes_in: usize, bytes_out: usize) -> u64 {
        let total = (bytes_in + bytes_out) as f64;
        self.cycles_to_ns(self.transition_cycles)
            + (total * self.copy_ns_per_byte) as u64
            + (total * self.serialize_ns_per_byte) as u64
    }

    /// The boundary cost of one ocall carrying `bytes` out of the enclave.
    pub fn ocall_boundary_ns(&self, bytes: usize) -> u64 {
        self.ecall_boundary_ns(bytes, 0)
    }

    /// Cost of HMAC over `len` bytes.
    pub fn hmac_ns(&self, len: usize) -> u64 {
        self.hmac_base_ns + (len as f64 * self.hmac_ns_per_byte) as u64
    }

    /// Network propagation + bandwidth delay for a message of `len` bytes.
    pub fn net_delay_ns(&self, len: usize) -> u64 {
        self.net_one_way_ns + (len as f64 * self.net_ns_per_byte) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_cost_matches_cited_measurement() {
        let m = CostModel::paper_calibrated();
        // 8,640 cycles at 3.7 GHz is roughly 2.3 µs.
        let ns = m.cycles_to_ns(m.transition_cycles);
        assert!((2_000..2_600).contains(&ns), "got {ns} ns");
    }

    #[test]
    fn simulation_mode_has_free_transitions() {
        let m = CostModel::simulation_mode();
        assert_eq!(m.cycles_to_ns(m.transition_cycles), 0);
        // But copies are still not entirely free.
        assert!(m.ecall_boundary_ns(1_000, 0) > 0);
    }

    #[test]
    fn boundary_cost_scales_with_bytes() {
        let m = CostModel::paper_calibrated();
        let small = m.ecall_boundary_ns(10, 10);
        let large = m.ecall_boundary_ns(20_000, 10);
        assert!(large > small);
        // A 20 KB batch copy costs tens of microseconds, not milliseconds.
        assert!(large < 100_000, "got {large} ns");
    }

    #[test]
    fn hmac_cost_scales_linearly() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.hmac_ns(0), m.hmac_base_ns);
        assert!(m.hmac_ns(1_000) > m.hmac_ns(10));
    }

    #[test]
    fn signature_costs_are_realistic_for_ed25519() {
        let m = CostModel::paper_calibrated();
        // Verification is slower than signing for ed25519.
        assert!(m.verify_ns > m.sign_ns);
        // Both in the tens of microseconds.
        assert!((10_000..200_000).contains(&m.sign_ns));
        assert!((10_000..200_000).contains(&m.verify_ns));
    }

    #[test]
    fn net_delay_has_latency_floor() {
        let m = CostModel::paper_calibrated();
        assert!(m.net_delay_ns(0) >= m.net_one_way_ns);
        assert!(m.net_delay_ns(1_000_000) > m.net_delay_ns(0));
    }
}
