//! SGX-style sealing: encrypting enclave secrets for untrusted storage.
//!
//! Real SGX derives a sealing key inside the CPU from the platform fuse key
//! and the enclave measurement (`MRENCLAVE` policy): only the *same enclave
//! code* on the *same platform* can unseal. We reproduce the key-derivation
//! structure with HMAC over a per-platform secret, and the
//! confidentiality/integrity with the AEAD from `splitbft-crypto`.
//!
//! SplitBFT uses sealing in two places: the blockchain application seals
//! blocks before ocall-ing them to untrusted persistent storage (the paper
//! uses `sgx_tprotected_fs`), and recovering enclaves unseal their secrets
//! on reboot (§4 "Enclave recovery").

use splitbft_crypto::aead::{open, seal, AeadError, AeadKey};
use splitbft_crypto::hmac::hmac_sha256;

/// What a sealing key is bound to: the platform plus the enclave
/// measurement (the SGX `MRENCLAVE` sealing policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealingIdentity {
    /// The per-platform root secret (SGX: fused into the CPU). In the
    /// simulation each replica host has its own.
    pub platform_secret: [u8; 32],
    /// The enclave measurement the key is bound to.
    pub measurement: [u8; 32],
}

impl SealingIdentity {
    /// Derives the sealing key for this identity.
    fn key(&self) -> AeadKey {
        let master = hmac_sha256(&self.platform_secret, &self.measurement);
        AeadKey::new(&master)
    }
}

/// Errors from [`unseal_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The sealed blob failed authentication: wrong platform, wrong
    /// enclave measurement, wrong nonce, or tampering.
    Unsealable(AeadError),
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Unsealable(e) => write!(f, "cannot unseal: {e}"),
        }
    }
}

impl std::error::Error for SealError {}

/// Seals `plaintext` for this identity. `nonce` must be unique per
/// identity (callers use a monotonic counter); `aad` binds context such as
/// a block height.
pub fn seal_data(id: &SealingIdentity, nonce: u64, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    seal(&id.key(), nonce, aad, plaintext)
}

/// Unseals a blob produced by [`seal_data`] under the same identity.
///
/// # Errors
///
/// [`SealError::Unsealable`] if the identity, nonce, or data do not match.
pub fn unseal_data(
    id: &SealingIdentity,
    nonce: u64,
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, SealError> {
    open(&id.key(), nonce, aad, sealed).map_err(SealError::Unsealable)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(platform: u8, measurement: u8) -> SealingIdentity {
        SealingIdentity { platform_secret: [platform; 32], measurement: [measurement; 32] }
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let id = ident(1, 2);
        let sealed = seal_data(&id, 0, b"block-0", b"secret state");
        assert_eq!(unseal_data(&id, 0, b"block-0", &sealed).unwrap(), b"secret state");
    }

    #[test]
    fn other_platform_cannot_unseal() {
        let sealed = seal_data(&ident(1, 2), 0, b"", b"secret");
        assert!(unseal_data(&ident(9, 2), 0, b"", &sealed).is_err());
    }

    #[test]
    fn other_enclave_cannot_unseal() {
        // Same platform, different enclave code (measurement): MRENCLAVE
        // policy denies access. This is what keeps compartments from
        // reading each other's sealed secrets.
        let sealed = seal_data(&ident(1, 2), 0, b"", b"secret");
        assert!(unseal_data(&ident(1, 3), 0, b"", &sealed).is_err());
    }

    #[test]
    fn nonce_and_aad_are_bound() {
        let id = ident(1, 2);
        let sealed = seal_data(&id, 5, b"height-5", b"block data");
        assert!(unseal_data(&id, 6, b"height-5", &sealed).is_err());
        assert!(unseal_data(&id, 5, b"height-6", &sealed).is_err());
        assert!(unseal_data(&id, 5, b"height-5", &sealed).is_ok());
    }

    #[test]
    fn tampered_blob_rejected() {
        let id = ident(1, 2);
        let mut sealed = seal_data(&id, 0, b"", b"block");
        sealed[0] ^= 1;
        assert!(matches!(
            unseal_data(&id, 0, b"", &sealed),
            Err(SealError::Unsealable(_))
        ));
    }
}
