//! The untrusted side of the enclave boundary.
//!
//! An [`EnclaveHost`] owns one enclave exclusively (reproducing the
//! single-threaded enclave configuration of the paper), funnels every entry
//! through [`EnclaveHost::ecall`], charges the [`CostModel`] for the
//! crossing, and keeps [`TransitionStats`] — the raw data behind the
//! paper's Figure 4 and its "ecalls sum up to 841 µs" analysis.

use crate::cost::CostModel;
use crate::enclave::{Enclave, EnclaveError, Ocall, OcallQueue};

/// Whether the (simulated) enclave pays hardware transition costs.
///
/// Mirrors the paper's evaluation, which runs SGX both in hardware mode and
/// in *simulation mode* to isolate the cost of enclave transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full cost accounting: transitions, copies, serialization.
    Hardware,
    /// Free transitions (SGX simulation mode); copies still charged at a
    /// reduced rate.
    Simulation,
}

/// Aggregate statistics of a host's boundary crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// Number of ecalls served.
    pub ecalls: u64,
    /// Number of ocalls posted by the enclave.
    pub ocalls: u64,
    /// Bytes copied into the enclave.
    pub bytes_in: u64,
    /// Bytes copied out of the enclave (returns + ocalls).
    pub bytes_out: u64,
    /// Total virtual boundary time charged, in nanoseconds.
    pub boundary_ns: u64,
    /// Peak observed enclave memory usage (EPC pressure), in bytes.
    pub peak_memory: u64,
}

/// The result of one successful ecall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcallReply {
    /// The enclave's return value, copied out.
    pub output: Vec<u8>,
    /// Ocalls the enclave posted during the call, in order.
    pub ocalls: Vec<Ocall>,
    /// Virtual boundary cost of this call (transition + copies), in
    /// nanoseconds. Handler compute time is charged separately by the
    /// simulator.
    pub boundary_ns: u64,
}

/// Owns one enclave and mediates all crossings into it.
#[derive(Debug)]
pub struct EnclaveHost<E> {
    enclave: E,
    mode: ExecMode,
    cost: CostModel,
    stats: TransitionStats,
    crashed: bool,
}

impl<E: Enclave> EnclaveHost<E> {
    /// Loads `enclave` and prepares the boundary with the given mode and
    /// cost model.
    pub fn new(enclave: E, mode: ExecMode, cost: CostModel) -> Self {
        let cost = match mode {
            ExecMode::Hardware => cost,
            ExecMode::Simulation => CostModel {
                transition_cycles: 0,
                copy_ns_per_byte: cost.copy_ns_per_byte * 0.3,
                ..cost
            },
        };
        EnclaveHost { enclave, mode, cost, stats: TransitionStats::default(), crashed: false }
    }

    /// The execution mode the host was created with.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// This enclave's measurement.
    pub fn measurement(&self) -> [u8; 32] {
        self.enclave.measurement()
    }

    /// Enters the enclave.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::Crashed`] if the enclave was crashed by fault
    /// injection (see [`EnclaveHost::inject_crash`]); a crashed enclave
    /// stays unavailable until [`EnclaveHost::recover`].
    pub fn ecall(&mut self, id: u32, input: &[u8]) -> Result<EcallReply, EnclaveError> {
        if self.crashed {
            return Err(EnclaveError::Crashed);
        }
        let mut queue = OcallQueue::new();
        let output = self.enclave.handle_ecall(id, input, &mut queue);
        let ocalls = queue.drain();

        let ocall_bytes: usize = ocalls.iter().map(|o| o.data.len()).sum();
        let mut boundary_ns = self.cost.ecall_boundary_ns(input.len(), output.len());
        for o in &ocalls {
            boundary_ns += self.cost.ocall_boundary_ns(o.data.len());
        }

        self.stats.ecalls += 1;
        self.stats.ocalls += ocalls.len() as u64;
        self.stats.bytes_in += input.len() as u64;
        self.stats.bytes_out += (output.len() + ocall_bytes) as u64;
        self.stats.boundary_ns += boundary_ns;
        self.stats.peak_memory = self.stats.peak_memory.max(self.enclave.memory_usage() as u64);

        Ok(EcallReply { output, ocalls, boundary_ns })
    }

    /// Crash-faults the enclave: subsequent ecalls fail until
    /// [`EnclaveHost::recover`]. Models the paper's "enclave is subject to
    /// sudden crashes triggered due to a compromised environment".
    pub fn inject_crash(&mut self) {
        self.crashed = true;
    }

    /// `true` if the enclave is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Reboots the enclave *logic* with a fresh instance (the enclave
    /// recovery path of the paper's §4 discussion; persistent secrets are
    /// recovered separately through sealing).
    pub fn recover(&mut self, fresh: E) {
        self.enclave = fresh;
        self.crashed = false;
    }

    /// Boundary statistics accumulated so far.
    pub fn stats(&self) -> TransitionStats {
        self.stats
    }

    /// Resets the statistics (used between measurement windows).
    pub fn reset_stats(&mut self) {
        self.stats = TransitionStats::default();
    }

    /// Shared access to the enclave for *read-only* inspection in tests
    /// and invariant checks. Production code must go through
    /// [`EnclaveHost::ecall`]; the model checker uses this to read enclave
    /// state when checking safety invariants.
    pub fn enclave(&self) -> &E {
        &self.enclave
    }

    /// Mutable access to the enclave, for fault injection and test
    /// setup only. Production traffic must go through
    /// [`EnclaveHost::ecall`] — mutating live enclave state from the
    /// "outside" would violate the trust boundary the simulation models.
    pub fn enclave_mut(&mut self) -> &mut E {
        &mut self.enclave
    }

    /// The cost model in effect (after mode adjustment).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::OcallSink;

    struct Echo {
        mem: usize,
    }
    impl Enclave for Echo {
        fn measurement(&self) -> [u8; 32] {
            [0xEC; 32]
        }
        fn handle_ecall(&mut self, id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
            if id == 9 {
                env.ocall(1, b"side-effect");
            }
            self.mem += input.len();
            input.to_vec()
        }
        fn memory_usage(&self) -> usize {
            self.mem
        }
    }

    fn host(mode: ExecMode) -> EnclaveHost<Echo> {
        EnclaveHost::new(Echo { mem: 0 }, mode, CostModel::paper_calibrated())
    }

    #[test]
    fn ecall_returns_output_and_ocalls() {
        let mut h = host(ExecMode::Hardware);
        let r = h.ecall(9, b"data").unwrap();
        assert_eq!(r.output, b"data");
        assert_eq!(r.ocalls.len(), 1);
        assert_eq!(r.ocalls[0].id, 1);
        assert!(r.boundary_ns > 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = host(ExecMode::Hardware);
        h.ecall(1, b"abc").unwrap();
        h.ecall(9, b"defg").unwrap();
        let s = h.stats();
        assert_eq!(s.ecalls, 2);
        assert_eq!(s.ocalls, 1);
        assert_eq!(s.bytes_in, 7);
        assert_eq!(s.bytes_out, 7 + "side-effect".len() as u64);
        assert!(s.boundary_ns > 0);
        assert_eq!(s.peak_memory, 7);

        h.reset_stats();
        assert_eq!(h.stats(), TransitionStats::default());
    }

    #[test]
    fn simulation_mode_is_cheaper_than_hardware() {
        let mut hw = host(ExecMode::Hardware);
        let mut sim = host(ExecMode::Simulation);
        let payload = vec![0u8; 1024];
        let hw_ns = hw.ecall(1, &payload).unwrap().boundary_ns;
        let sim_ns = sim.ecall(1, &payload).unwrap().boundary_ns;
        assert!(sim_ns < hw_ns, "sim {sim_ns} vs hw {hw_ns}");
    }

    #[test]
    fn crash_blocks_ecalls_until_recovery() {
        let mut h = host(ExecMode::Hardware);
        h.ecall(1, b"ok").unwrap();
        h.inject_crash();
        assert!(h.is_crashed());
        assert_eq!(h.ecall(1, b"x"), Err(EnclaveError::Crashed));
        h.recover(Echo { mem: 0 });
        assert!(h.ecall(1, b"back").is_ok());
        // Fresh instance: memory was reset.
        assert_eq!(h.enclave().memory_usage(), 4);
    }

    #[test]
    fn measurement_passthrough() {
        let h = host(ExecMode::Hardware);
        assert_eq!(h.measurement(), [0xEC; 32]);
    }
}
