//! The enclave abstraction: code that runs inside the trusted boundary.

use std::fmt;

/// An ocall: a request from enclave code to the untrusted environment
/// (send a message, persist a block, arm a timer, …).
///
/// Ocalls carry opaque bytes; the broker in `splitbft-core` defines the
/// typed protocol on top. Keeping the boundary byte-oriented mirrors the
/// SGX SDK (and lets the host charge copy costs accurately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ocall {
    /// Which untrusted service is being invoked.
    pub id: u32,
    /// The marshalled argument, copied out of the enclave.
    pub data: Vec<u8>,
}

/// The enclave side's handle to the untrusted world during an ecall.
///
/// Real SGX ocalls are synchronous; SplitBFT deliberately queues them
/// ("enclave handlers request I/O from the broker by posting ocalls into
/// its queue") so an ecall runs to completion without re-entering the
/// environment — principle P2. This trait models that queue.
pub trait OcallSink {
    /// Posts an ocall to the environment's queue.
    fn ocall(&mut self, id: u32, data: &[u8]);
}

/// Code loaded into a (simulated) enclave.
///
/// Implementations hold the compartment's safety-critical state. They are
/// entered only through [`handle_ecall`](Enclave::handle_ecall), one call
/// at a time — the host owns the enclave exclusively, reproducing the
/// paper's single-threaded enclave configuration.
pub trait Enclave: Send {
    /// The enclave *measurement* (SGX `MRENCLAVE`): a digest identifying
    /// the code loaded into the enclave. Sealing keys and attestation
    /// quotes are bound to it. Enclaves of the same compartment type share
    /// a measurement; different compartments have different ones.
    fn measurement(&self) -> [u8; 32];

    /// Handles one ecall: `id` selects the entry point, `input` is the
    /// marshalled argument (copied into the enclave), the return value is
    /// copied back out. Outbound work is posted through `env`.
    fn handle_ecall(&mut self, id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8>;

    /// Approximate bytes of enclave heap in use, for EPC accounting.
    /// Defaults to 0 for enclaves that do not track memory.
    fn memory_usage(&self) -> usize {
        0
    }
}

/// Errors surfaced by the host when an enclave cannot serve an ecall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The enclave has crashed (e.g. fault injection, or a previous panic)
    /// and must be rebuilt/recovered before further use.
    Crashed,
    /// The enclave was destroyed by the host.
    Destroyed,
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::Crashed => f.write_str("enclave has crashed"),
            EnclaveError::Destroyed => f.write_str("enclave was destroyed"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// A buffering [`OcallSink`] collecting posted ocalls, used by hosts and
/// tests.
#[derive(Debug, Default)]
pub struct OcallQueue {
    calls: Vec<Ocall>,
}

impl OcallQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the queued ocalls in posting order.
    pub fn drain(&mut self) -> Vec<Ocall> {
        std::mem::take(&mut self.calls)
    }

    /// Number of queued ocalls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

impl OcallSink for OcallQueue {
    fn ocall(&mut self, id: u32, data: &[u8]) {
        self.calls.push(Ocall { id, data: data.to_vec() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Enclave for Doubler {
        fn measurement(&self) -> [u8; 32] {
            [1u8; 32]
        }
        fn handle_ecall(&mut self, _id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
            env.ocall(1, input);
            env.ocall(2, input);
            input.repeat(2)
        }
    }

    #[test]
    fn ocall_queue_preserves_order() {
        let mut q = OcallQueue::new();
        let mut e = Doubler;
        let out = e.handle_ecall(0, b"ab", &mut q);
        assert_eq!(out, b"abab");
        assert_eq!(q.len(), 2);
        let calls = q.drain();
        assert_eq!(calls[0], Ocall { id: 1, data: b"ab".to_vec() });
        assert_eq!(calls[1], Ocall { id: 2, data: b"ab".to_vec() });
        assert!(q.is_empty());
    }

    #[test]
    fn default_memory_usage_is_zero() {
        assert_eq!(Doubler.memory_usage(), 0);
    }

    #[test]
    fn error_display() {
        assert_eq!(EnclaveError::Crashed.to_string(), "enclave has crashed");
        assert_eq!(EnclaveError::Destroyed.to_string(), "enclave was destroyed");
    }
}
