//! Property tests for the broker's committed-certificate suffix ring.
//!
//! The load-bearing invariant: **GC never drops a certificate newer
//! than the last stable (sealed) checkpoint.** A peer state transfer
//! built on the ring is only sound if everything above the checkpoint
//! a peer can restore is still servable from the log path; dropping a
//! newer certificate would strand peers between the checkpoint stream
//! and the suffix. The ring enforces it structurally — GC only removes
//! slots at or below the stable mark, and capacity pressure refuses
//! *new* slots instead of evicting retained ones.

use proptest::prelude::*;
use splitbft_core::suffix::SuffixRing;
use splitbft_types::{
    Commit, ConsensusMessage, Digest, PrePrepare, ReplicaId, Request, RequestBatch, RequestId,
    SeqNum, Signature, Signed, SignerId, Timestamp, View,
};
use std::collections::BTreeSet;

fn request(ts: u64) -> Request {
    Request {
        id: RequestId { client: splitbft_types::ClientId(1), timestamp: Timestamp(ts) },
        op: bytes::Bytes::from_static(b"inc"),
        encrypted: false,
        auth: [0u8; 32],
    }
}

/// A slot's committed proposal; the digest is the *recomputed* batch
/// digest, matching what the ring keys proposals by.
fn pre_prepare(seq: u64) -> (ConsensusMessage, Digest) {
    let batch = RequestBatch::single(request(seq));
    let digest = splitbft_crypto::digest_of(&batch);
    let pp = PrePrepare { view: View(0), seq: SeqNum(seq), digest, batch };
    (
        ConsensusMessage::PrePrepare(Signed::new(
            pp,
            SignerId::Replica(ReplicaId(0)),
            Signature::ZERO,
        )),
        digest,
    )
}

fn commit(seq: u64, digest: Digest, replica: u32) -> ConsensusMessage {
    let c = Commit { view: View(0), seq: SeqNum(seq), digest, replica: ReplicaId(replica) };
    ConsensusMessage::Commit(Signed::new(
        c,
        SignerId::Replica(ReplicaId(replica)),
        Signature::ZERO,
    ))
}

/// Harvest + commit one full certificate for `seq` (proposal plus three
/// votes), the way the broker does under live traffic.
fn commit_slot(ring: &mut SuffixRing, seq: u64) {
    let (pp, digest) = pre_prepare(seq);
    ring.observe(&pp, View(0));
    for replica in 0..3u32 {
        ring.observe(&commit(seq, digest, replica), View(0));
    }
    ring.mark_committed(SeqNum(seq), digest);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random interleavings of commits and checkpoint GCs: after every
    // operation, every certificate committed above the current stable
    // mark is still held in full, and nothing at or below it survives.
    #[test]
    fn gc_never_drops_a_certificate_newer_than_the_stable_checkpoint(
        ops in collection::vec((any::<u8>(), 1..80u64), 1..150),
    ) {
        let mut ring = SuffixRing::new(512);
        // Model: committed slots that must remain servable.
        let mut committed: BTreeSet<u64> = BTreeSet::new();
        let mut stable: u64 = 0;

        for (kind, seq) in ops {
            match kind % 3 {
                0 | 2 => {
                    commit_slot(&mut ring, seq);
                    if seq > stable {
                        committed.insert(seq);
                    }
                }
                _ => {
                    if seq > stable {
                        stable = seq;
                    }
                    ring.gc(SeqNum(seq));
                    committed.retain(|s| *s > stable);
                }
            }

            prop_assert_eq!(ring.stable(), SeqNum(stable));
            // Everything newer than stable survives, in full.
            for &live in &committed {
                prop_assert!(
                    ring.holds_committed(SeqNum(live)),
                    "certificate for slot {} (stable {}) was dropped", live, stable
                );
            }
            // Nothing at or below stable is ever served.
            let served = ring.messages_from(SeqNum(0));
            for msg in &served {
                let seq = match msg {
                    ConsensusMessage::PrePrepare(pp) => pp.payload.seq.0,
                    ConsensusMessage::Commit(c) => c.payload.seq.0,
                    other => panic!("ring served a foreign message: {other:?}"),
                };
                prop_assert!(seq > stable, "served slot {} at/below stable {}", seq, stable);
            }
        }
    }

    // The served suffix is exactly the committed slots above the
    // requester's progress, each proposal leading its votes.
    #[test]
    fn served_suffix_covers_committed_slots_above_have_seq(
        slots in collection::vec(1..60u64, 1..40),
        have in 0..60u64,
    ) {
        let mut ring = SuffixRing::new(512);
        let unique: BTreeSet<u64> = slots.into_iter().collect();
        for &seq in &unique {
            commit_slot(&mut ring, seq);
        }
        let served = ring.messages_from(SeqNum(have));
        let expect: Vec<u64> = unique.iter().copied().filter(|s| *s > have).collect();
        let proposals: Vec<u64> = served
            .iter()
            .filter_map(|m| match m {
                ConsensusMessage::PrePrepare(pp) => Some(pp.payload.seq.0),
                _ => None,
            })
            .collect();
        prop_assert_eq!(proposals, expect);
        // Each proposal travels with its full vote set.
        let votes = served
            .iter()
            .filter(|m| matches!(m, ConsensusMessage::Commit(_)))
            .count();
        prop_assert_eq!(votes, unique.iter().filter(|s| **s > have).count() * 3);
    }
}

#[test]
fn capacity_pressure_refuses_new_slots_instead_of_evicting() {
    let mut ring = SuffixRing::new(4);
    for seq in 1..=4u64 {
        commit_slot(&mut ring, seq);
    }
    assert_eq!(ring.len(), 4);
    // A fifth slot is refused outright...
    commit_slot(&mut ring, 5);
    assert!(!ring.holds_committed(SeqNum(5)), "over-capacity slot was admitted");
    // ...and every retained certificate is untouched.
    for seq in 1..=4u64 {
        assert!(ring.holds_committed(SeqNum(seq)), "retained slot {seq} was evicted");
    }
    // GC frees capacity; new slots are admitted again.
    ring.gc(SeqNum(2));
    commit_slot(&mut ring, 6);
    assert!(ring.holds_committed(SeqNum(6)));
    assert!(!ring.holds_committed(SeqNum(2)), "GC'd slot still served");
}

#[test]
fn latest_new_view_survives_gc_and_leads_the_suffix() {
    use splitbft_types::NewView;
    let new_view = |view: u64| {
        ConsensusMessage::NewView(Signed::new(
            NewView { view: View(view), view_changes: Vec::new(), pre_prepares: Vec::new() },
            SignerId::Replica(ReplicaId(1)),
            Signature::ZERO,
        ))
    };
    let mut ring = SuffixRing::new(16);
    ring.observe(&new_view(2), View(0));
    ring.observe(&new_view(1), View(0)); // older: must not regress the retained one
    // A forged far-future NewView (unverifiable at the broker layer)
    // must not displace the real latest one from the suffix head.
    ring.observe(&new_view(u64::MAX), View(0));
    ring.observe(&new_view(1_000), View(2));
    commit_slot(&mut ring, 9);
    ring.gc(SeqNum(5));

    let served = ring.messages_from(SeqNum(0));
    assert_eq!(
        served.first(),
        Some(&new_view(2)),
        "the latest NewView must lead the suffix (a view-stranded peer rejects \
         everything else until it processes one)"
    );
    assert!(served.contains(&{
        let (pp, _) = pre_prepare(9);
        pp
    }));
}

#[test]
fn far_future_garbage_cannot_poison_the_ring() {
    // The broker harvests pre-verification, so a byzantine peer can
    // spray unverifiable messages at arbitrary sequence numbers. Only
    // the horizon (stable, stable + cap] is admitted: far-future
    // garbage — which no stable checkpoint would ever GC — is refused
    // outright, in-horizon junk merely occupies seq numbers the next
    // checkpoint sweeps away, and real slots are never crowded out.
    let mut ring = SuffixRing::new(8);
    // Far future: refused, occupies nothing, forever.
    let (pp_far, digest_far) = pre_prepare(1_000_000);
    ring.observe(&pp_far, View(0));
    ring.observe(&commit(1_000_000, digest_far, 0), View(0));
    assert_eq!(ring.len(), 0, "far-future garbage was admitted");

    // Junk occupying most of the horizon never blocks real slots.
    for seq in 3..=8u64 {
        let (pp, _) = pre_prepare(seq);
        ring.observe(&pp, View(0));
    }
    for seq in 1..=2u64 {
        commit_slot(&mut ring, seq);
        assert!(
            ring.holds_committed(SeqNum(seq)),
            "real slot {seq} was crowded out by junk"
        );
    }
    assert!(ring.len() <= 8, "ring exceeded its structural bound");

    // GC sweeps junk with everything else; the horizon follows stable.
    ring.gc(SeqNum(8));
    assert!(ring.is_empty());
    commit_slot(&mut ring, 9);
    assert!(ring.holds_committed(SeqNum(9)), "post-GC horizon did not advance");

    // Per-slot proposal flood: distinct-digest forgeries for one slot
    // are capped, and the genuine (committed) proposal still wins when
    // it was among the retained candidates.
    let mut ring = SuffixRing::new(8);
    let (real, real_digest) = pre_prepare(3);
    ring.observe(&real, View(0));
    for junk in 0..64u64 {
        let batch = RequestBatch::single(request(junk + 100));
        let digest = splitbft_crypto::digest_of(&batch);
        let forged = ConsensusMessage::PrePrepare(Signed::new(
            PrePrepare { view: View(0), seq: SeqNum(3), digest, batch },
            SignerId::Replica(ReplicaId(3)),
            Signature::ZERO,
        ));
        ring.observe(&forged, View(0));
    }
    for r in 0..3u32 {
        ring.observe(&commit(3, real_digest, r), View(0));
    }
    ring.mark_committed(SeqNum(3), real_digest);
    assert!(
        ring.holds_committed(SeqNum(3)),
        "proposal flood displaced the genuine committed proposal"
    );
}

#[test]
fn view_spanning_slots_serve_the_latest_view_copies() {
    // A slot in flight across a view change gets re-proposed (same
    // batch, same recomputed digest) in the new view. The ring must
    // serve the *new-view* proposal and votes — a recovering peer,
    // moved to the new view by the NewView heading the suffix, rejects
    // old-view copies as WrongView.
    let in_view = |seq: u64, view: u64| {
        let batch = RequestBatch::single(request(seq));
        let digest = splitbft_crypto::digest_of(&batch);
        let pp = PrePrepare { view: View(view), seq: SeqNum(seq), digest, batch };
        (
            ConsensusMessage::PrePrepare(Signed::new(
                pp,
                SignerId::Replica(ReplicaId(0)),
                Signature::ZERO,
            )),
            digest,
        )
    };
    let commit_in_view = |seq: u64, digest: Digest, replica: u32, view: u64| {
        ConsensusMessage::Commit(Signed::new(
            Commit { view: View(view), seq: SeqNum(seq), digest, replica: ReplicaId(replica) },
            SignerId::Replica(ReplicaId(replica)),
            Signature::ZERO,
        ))
    };

    let mut ring = SuffixRing::new(16);
    let (pp_v0, digest) = in_view(5, 0);
    ring.observe(&pp_v0, View(0));
    for r in 0..3u32 {
        ring.observe(&commit_in_view(5, digest, r, 0), View(0));
    }
    // View change: the same slot re-proposed and re-voted in view 1.
    let (pp_v1, _) = in_view(5, 1);
    ring.observe(&pp_v1, View(0));
    for r in 0..3u32 {
        ring.observe(&commit_in_view(5, digest, r, 1), View(0));
    }
    ring.mark_committed(SeqNum(5), digest);

    let served = ring.messages_from(SeqNum(0));
    assert!(served.contains(&pp_v1), "new-view proposal must be served");
    assert!(!served.contains(&pp_v0), "old-view proposal must be replaced");
    for msg in &served {
        if let ConsensusMessage::Commit(c) = msg {
            assert_eq!(c.payload.view, View(1), "old-view vote survived the view change");
        }
    }
    // An out-of-order stale copy arriving late never regresses the slot.
    ring.observe(&pp_v0, View(0));
    assert!(!ring.messages_from(SeqNum(0)).contains(&pp_v0));
}

#[test]
fn byzantine_substitute_proposals_never_shadow_the_committed_batch() {
    let mut ring = SuffixRing::new(16);
    let (good, good_digest) = pre_prepare(7);
    // A forged proposal for the same slot with a different batch.
    let forged_batch = RequestBatch::single(request(999));
    let forged_digest = splitbft_crypto::digest_of(&forged_batch);
    let forged = ConsensusMessage::PrePrepare(Signed::new(
        PrePrepare { view: View(0), seq: SeqNum(7), digest: forged_digest, batch: forged_batch },
        SignerId::Replica(ReplicaId(3)),
        Signature::ZERO,
    ));
    ring.observe(&forged, View(0));
    ring.observe(&good, View(0));
    for replica in 0..3u32 {
        ring.observe(&commit(7, good_digest, replica), View(0));
        ring.observe(&commit(7, forged_digest, replica), View(0));
    }
    ring.mark_committed(SeqNum(7), good_digest);

    let served = ring.messages_from(SeqNum(0));
    assert!(served.contains(&good), "committed proposal must be served");
    assert!(!served.contains(&forged), "forged proposal leaked into the suffix");
    assert!(
        served.iter().all(|m| !matches!(
            m,
            ConsensusMessage::Commit(c) if c.payload.digest == forged_digest
        )),
        "votes for the losing digest leaked into the suffix"
    );
}
