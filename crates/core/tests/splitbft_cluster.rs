//! End-to-end tests of SplitBFT over a deterministic in-memory message
//! pump: normal operation through all three compartments, the
//! confidential client path with attestation, checkpointing, view
//! changes, and — the point of the paper — safety under faulty enclaves
//! and hostile environments.

use bytes::Bytes;
use splitbft_app::{Application, CounterApp, KeyValueStore, KvOp};
use splitbft_core::{ReplicaEvent, SplitBftClient, SplitBftReplica, SplitClientEvent};
use splitbft_tee::attest::PlatformAuthority;
use splitbft_tee::fault::{FaultKind, FaultPlan};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{
    ClientId, ClusterConfig, CompartmentKind, ConsensusMessage, ReplicaId, Reply, Request, SeqNum,
    View,
};
use std::collections::VecDeque;

const SEED: u64 = 2024;

struct Cluster<A: Application> {
    replicas: Vec<SplitBftReplica<A>>,
    queues: Vec<VecDeque<ConsensusMessage>>,
    replies: Vec<Reply>,
    persisted: Vec<Bytes>,
    down: Vec<bool>,
}

impl<A: Application> Cluster<A> {
    fn new(n: usize, interval: u64, mk: impl Fn() -> A) -> Self {
        let cfg = ClusterConfig::new(n).unwrap().with_checkpoint_interval(interval);
        let replicas = (0..n as u32)
            .map(|i| {
                SplitBftReplica::new(
                    cfg.clone(),
                    ReplicaId(i),
                    SEED,
                    mk(),
                    ExecMode::Hardware,
                    CostModel::paper_calibrated(),
                )
            })
            .collect();
        Cluster {
            replicas,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            replies: Vec::new(),
            persisted: Vec::new(),
            down: vec![false; n],
        }
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    fn handle_events(&mut self, from: usize, events: Vec<ReplicaEvent>) {
        for event in events {
            match event {
                ReplicaEvent::Broadcast(msg) => {
                    for to in 0..self.n() {
                        if to != from && !self.down[to] {
                            self.queues[to].push_back(msg.clone());
                        }
                    }
                }
                ReplicaEvent::Reply { reply, .. } => self.replies.push(reply),
                ReplicaEvent::Persist(blob) => self.persisted.push(blob),
                _ => {}
            }
        }
    }

    fn run(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.n() {
                if self.down[i] {
                    self.queues[i].clear();
                    continue;
                }
                while let Some(msg) = self.queues[i].pop_front() {
                    progressed = true;
                    let events = self.replicas[i].on_network_message(msg);
                    self.handle_events(i, events);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn submit(&mut self, primary: usize, requests: Vec<Request>) {
        let events = self.replicas[primary].on_client_batch(requests);
        self.handle_events(primary, events);
        self.run();
    }

    fn timeout_all_up(&mut self) {
        for i in 0..self.n() {
            if !self.down[i] {
                let events = self.replicas[i].on_view_timeout();
                self.handle_events(i, events);
            }
        }
        self.run();
    }
}

fn plain_request(client: u32, ts: u64, op: Bytes) -> Request {
    splitbft_pbft::make_request(SEED, ClientId(client), splitbft_types::Timestamp(ts), op)
}

#[test]
fn plaintext_request_executes_on_all_replicas() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);

    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(1), "replica {} executed", r.id());
        assert_eq!(r.app().value(), 1);
    }
    assert_eq!(cluster.replies.len(), 4);
}

#[test]
fn state_stays_consistent_across_many_requests() {
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    for i in 0..25u64 {
        let op = KvOp::put(format!("k{}", i % 5).as_bytes(), &i.to_le_bytes()).encode_op();
        cluster.submit(0, vec![plain_request(0, i + 1, op)]);
    }
    let digest = cluster.replicas[0].state_digest();
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(25));
        assert_eq!(r.state_digest(), digest, "divergence at {}", r.id());
    }
}

#[test]
fn confidential_client_roundtrip_with_attestation() {
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    let authority = PlatformAuthority::from_seed(7);
    let cfg = ClusterConfig::new(4).unwrap();
    let mut client = SplitBftClient::new(cfg, ClientId(5), SEED, 99);

    // Attestation: verify each Execution enclave's quote, install the
    // session key.
    for i in 0..4 {
        let quote = cluster.replicas[i].attestation_quote(&authority);
        let (dh_pub, wrapped) = client
            .attest_execution_enclave(&authority.public_key(), &quote)
            .expect("genuine quote verifies");
        let events = cluster.replicas[i].install_session_key(ClientId(5), dh_pub, wrapped);
        assert!(
            !events.iter().any(|e| matches!(e, ReplicaEvent::Rejected { .. })),
            "session key install rejected: {events:?}"
        );
    }

    // Issue an encrypted PUT, then an encrypted GET.
    let put = client.issue(&KvOp::put(b"secret-key", b"secret-value").encode_op());
    assert!(put.encrypted);
    cluster.submit(0, vec![put]);
    let mut done = false;
    let replies = std::mem::take(&mut cluster.replies);
    for reply in &replies {
        if let SplitClientEvent::Completed(result) = client.on_reply(reply) {
            assert_eq!(result, Bytes::new(), "PUT returns previous value (empty)");
            done = true;
            break;
        }
    }
    assert!(done, "PUT completed");

    let get = client.issue(&KvOp::get(b"secret-key").encode_op());
    cluster.submit(0, vec![get]);
    let mut result = None;
    let replies = std::mem::take(&mut cluster.replies);
    for reply in &replies {
        if let SplitClientEvent::Completed(r) = client.on_reply(reply) {
            result = Some(r);
            break;
        }
    }
    assert_eq!(result, Some(Bytes::from_static(b"secret-value")));
}

#[test]
fn confidentiality_environment_never_sees_plaintext() {
    // Capture every byte that crosses the network and the broker: the
    // secret must never appear anywhere outside the enclaves.
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    let authority = PlatformAuthority::from_seed(7);
    let cfg = ClusterConfig::new(4).unwrap();
    let mut client = SplitBftClient::new(cfg, ClientId(5), SEED, 99);
    for i in 0..4 {
        let quote = cluster.replicas[i].attestation_quote(&authority);
        let (dh_pub, wrapped) =
            client.attest_execution_enclave(&authority.public_key(), &quote).unwrap();
        cluster.replicas[i].install_session_key(ClientId(5), dh_pub, wrapped);
    }

    const SECRET: &[u8] = b"TOP-SECRET-PAYLOAD";
    let put = client.issue(&KvOp::put(b"k", SECRET).encode_op());

    // The request bytes on the wire do not contain the secret.
    let wire = splitbft_types::wire::encode(&put);
    assert!(!wire.windows(SECRET.len()).any(|w| w == SECRET));

    cluster.submit(0, vec![put]);

    // Neither do any replies (they are encrypted too).
    for reply in &cluster.replies {
        let bytes = splitbft_types::wire::encode(reply);
        assert!(!bytes.windows(SECRET.len()).any(|w| w == SECRET));
    }
    // But the client can read its result.
    let replies = std::mem::take(&mut cluster.replies);
    let mut completed = false;
    for reply in &replies {
        if let SplitClientEvent::Completed(_) = client.on_reply(reply) {
            completed = true;
            break;
        }
    }
    assert!(completed);
}

#[test]
fn checkpoints_garbage_collect_all_compartments() {
    let mut cluster = Cluster::new(4, 4, CounterApp::new);
    for i in 0..9u64 {
        cluster.submit(0, vec![plain_request(0, i + 1, Bytes::from_static(b"inc"))]);
    }
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(9));
        assert_eq!(r.app().value(), 9);
    }
    // All three compartments should have seen the stable checkpoint at 8
    // (verified indirectly: further requests keep executing, and the
    // window has moved — submit enough to cross the old window).
    for i in 9..20u64 {
        cluster.submit(0, vec![plain_request(0, i + 1, Bytes::from_static(b"inc"))]);
    }
    for r in &cluster.replicas {
        assert_eq!(r.app().value(), 20);
    }
}

#[test]
fn view_change_moves_all_compartments_to_view_one() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);

    cluster.down[0] = true;
    cluster.timeout_all_up();

    for i in 1..4 {
        let (prep_v, conf_v, exec_v) = cluster.replicas[i].views();
        assert_eq!(conf_v, View(1), "replica {i} confirmation view");
        assert_eq!(prep_v, View(1), "replica {i} preparation view");
        assert_eq!(exec_v, View(1), "replica {i} execution view");
    }

    // New primary (r1) orders fresh work.
    cluster.submit(1, vec![plain_request(0, 2, Bytes::from_static(b"inc"))]);
    for i in 1..4 {
        assert_eq!(cluster.replicas[i].app().value(), 2, "replica {i}");
    }
}

#[test]
fn staggered_timeouts_converge_through_the_join_rule() {
    // The divergence chaos testing exposed: with the primary dead,
    // replica 1's timer fires *twice* before its first ViewChange
    // reaches anyone (its Confirmation walks to view 2), while replicas
    // 2 and 3 fire once (view 1). Without the join rule the cluster can
    // wedge: r1's Confirmation refuses view-1 work, leaving only 2f
    // commit voters. With it, the stragglers' next timeout plus r1's
    // retained view-2 vote converge everyone on a common view.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);
    cluster.down[0] = true;

    // r1 times out twice back to back; nothing is delivered in between
    // (messages sit in the peers' queues until `run`).
    let events = cluster.replicas[1].on_view_timeout();
    cluster.handle_events(1, events);
    let events = cluster.replicas[1].on_view_timeout();
    cluster.handle_events(1, events);
    // r2 and r3 time out once.
    for i in [2usize, 3] {
        let events = cluster.replicas[i].on_view_timeout();
        cluster.handle_events(i, events);
    }
    cluster.run();

    // A second timeout round for whoever is still behind (the live
    // cluster's timer keeps ticking); the join rule must fold everyone
    // into one view rather than letting targets leapfrog forever.
    for _ in 0..2 {
        let views: Vec<View> =
            (1..4).map(|i| cluster.replicas[i].views().1).collect();
        if views.iter().all(|v| *v == views[0])
            && !cluster.replicas[1].has_pending_requests()
        {
            break;
        }
        cluster.timeout_all_up();
    }

    let conf_views: Vec<View> = (1..4).map(|i| cluster.replicas[i].views().1).collect();
    assert!(
        conf_views.iter().all(|v| *v == conf_views[0]),
        "confirmation views diverged permanently: {conf_views:?}"
    );

    // And the converged view is *live*: its primary orders fresh work.
    let primary = (conf_views[0].0 as usize) % 4;
    assert_ne!(primary, 0, "view 0's primary is down");
    cluster.submit(primary, vec![plain_request(0, 2, Bytes::from_static(b"inc"))]);
    for i in 1..4 {
        assert_eq!(
            cluster.replicas[i].app().value(),
            2,
            "replica {i} did not execute in the converged view"
        );
    }
}

#[test]
fn confirmation_joins_a_view_change_on_f_plus_one_votes() {
    // Direct compartment-level check that the join rule is live (not
    // silently dead behind signature verification): two peer
    // Confirmation enclaves vote for view 1; the third, which never
    // timed out itself, must join on the f + 1 = 2nd vote.
    use splitbft_core::{CompartmentInput, CompartmentOutput, ConfirmationCompartment};
    let cfg = ClusterConfig::new(4).unwrap();
    let mut confs: Vec<ConfirmationCompartment> =
        (0..4u32).map(|i| ConfirmationCompartment::new(cfg.clone(), ReplicaId(i), SEED)).collect();

    let vote_of = |outputs: Vec<CompartmentOutput>| {
        outputs
            .into_iter()
            .find_map(|o| match o {
                CompartmentOutput::Broadcast(msg @ ConsensusMessage::ViewChange(_)) => Some(msg),
                _ => None,
            })
            .expect("timeout must broadcast a ViewChange")
    };
    let vote1 = vote_of(confs[1].handle(CompartmentInput::ViewTimeout));
    let vote2 = vote_of(confs[2].handle(CompartmentInput::ViewTimeout));

    assert_eq!(confs[3].view(), View(0));
    confs[3].handle(CompartmentInput::Message(vote1));
    assert_eq!(confs[3].view(), View(0), "one vote may be byzantine — no join yet");
    let outputs = confs[3].handle(CompartmentInput::Message(vote2));
    assert_eq!(confs[3].view(), View(1), "f + 1 votes must trigger the join");
    assert!(
        outputs.iter().any(|o| matches!(
            o,
            CompartmentOutput::Broadcast(ConsensusMessage::ViewChange(vc))
                if vc.payload.new_view == View(1) && vc.payload.replica == ReplicaId(3)
        )),
        "joining must contribute this compartment's own vote"
    );
}

#[test]
fn f_muted_prep_enclaves_do_not_stop_the_cluster() {
    // One Preparation enclave (f = 1) goes mute: its replica stops
    // voting Prepare, but 2f prepares from the other backups suffice.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.replicas[2].arm_fault(
        CompartmentKind::Preparation,
        FaultPlan::immediate(FaultKind::MuteOcalls),
    );
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);
    for i in [0usize, 1, 3] {
        assert_eq!(cluster.replicas[i].app().value(), 1, "replica {i} executed");
    }
}

#[test]
fn f_muted_conf_enclaves_do_not_stop_the_cluster() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.replicas[3].arm_fault(
        CompartmentKind::Confirmation,
        FaultPlan::immediate(FaultKind::MuteOcalls),
    );
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);
    for i in 0..3 {
        assert_eq!(cluster.replicas[i].app().value(), 1, "replica {i} executed");
    }
}

#[test]
fn one_faulty_enclave_per_compartment_type_on_different_replicas() {
    // The paper's Figure 1 scenario: failures in different compartments
    // on multiple replicas — one faulty enclave of each type, each on a
    // different replica — and the system still makes progress safely.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.replicas[1].arm_fault(
        CompartmentKind::Preparation,
        FaultPlan::immediate(FaultKind::MuteOcalls),
    );
    cluster.replicas[2].arm_fault(
        CompartmentKind::Confirmation,
        FaultPlan::immediate(FaultKind::MuteOcalls),
    );
    cluster.replicas[3].arm_fault(
        CompartmentKind::Execution,
        FaultPlan::immediate(FaultKind::DropEcalls),
    );
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);

    // Replica 0 (fully healthy) must have executed; replicas with a
    // healthy Execution enclave likewise. Replica 3's execution is dead
    // but nobody else is affected.
    for i in 0..3 {
        assert_eq!(cluster.replicas[i].app().value(), 1, "replica {i} executed");
    }
    assert_eq!(cluster.replicas[3].app().value(), 0);

    // Clients still reach their f+1 reply quorum.
    let matching = cluster
        .replies
        .iter()
        .filter(|r| r.result == Bytes::copy_from_slice(&1u64.to_le_bytes()))
        .count();
    assert!(matching >= 2, "reply quorum reachable with {matching} replies");
}

#[test]
fn corrupting_exec_enclave_cannot_forge_accepted_replies() {
    // A byzantine Execution enclave flips bits in everything it emits.
    // Clients verify reply MACs, so the corrupted replica's replies are
    // ignored and the quorum comes from the three healthy ones.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.replicas[1].arm_fault(
        CompartmentKind::Execution,
        FaultPlan::immediate(FaultKind::CorruptOcalls { xor: 0x55 }),
    );
    let cfg = ClusterConfig::new(4).unwrap();
    let mut client = SplitBftClient::new(cfg, ClientId(0), SEED, 1).with_plaintext();
    let req = client.issue(b"inc");
    cluster.submit(0, vec![req]);

    let replies = std::mem::take(&mut cluster.replies);
    let mut completed = None;
    for reply in &replies {
        if let SplitClientEvent::Completed(result) = client.on_reply(reply) {
            completed = Some(result);
            break;
        }
    }
    assert_eq!(
        completed,
        Some(Bytes::copy_from_slice(&1u64.to_le_bytes())),
        "client gets the correct result despite the corrupted replica"
    );
}

#[test]
fn hostile_broker_dropping_messages_cannot_break_safety() {
    // A compromised environment on replica 3 delivers only every third
    // message. Liveness for r3 may suffer; safety must not: any replica
    // that executes a slot executes the same batch.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    let mut drop_counter = 0usize;
    for i in 0..10u64 {
        let events =
            cluster.replicas[0].on_client_batch(vec![plain_request(0, i + 1, Bytes::from_static(b"inc"))]);
        cluster.handle_events(0, events);
        // Custom pump: filter r3's deliveries.
        loop {
            let mut progressed = false;
            for r in 0..4 {
                while let Some(msg) = cluster.queues[r].pop_front() {
                    progressed = true;
                    if r == 3 {
                        drop_counter += 1;
                        if drop_counter % 3 != 0 {
                            continue; // hostile broker drops it
                        }
                    }
                    let events = cluster.replicas[r].on_network_message(msg);
                    cluster.handle_events(r, events);
                }
            }
            if !progressed {
                break;
            }
        }
    }
    // Healthy replicas executed everything.
    for i in 0..3 {
        assert_eq!(cluster.replicas[i].app().value(), 10, "replica {i}");
    }
    // r3 executed a prefix — never a divergent value.
    let v3 = cluster.replicas[3].app().value();
    assert!(v3 <= 10);
    let executed3 = cluster.replicas[3].last_executed().0;
    assert_eq!(v3, executed3, "r3's state matches its executed prefix");
}

#[test]
fn blockchain_blocks_are_sealed_before_persistence() {
    use splitbft_app::Blockchain;
    let mut cluster = Cluster::new(4, 128, Blockchain::new);
    // 5 transactions close one block on every replica.
    for i in 0..5u64 {
        cluster.submit(0, vec![plain_request(0, i + 1, Bytes::from_static(b"tx-data-10"))]);
    }
    for r in &cluster.replicas {
        assert_eq!(r.app().height(), 1, "replica {} built a block", r.id());
    }
    // Four replicas each persisted one sealed block.
    assert_eq!(cluster.persisted.len(), 4);
    for blob in &cluster.persisted {
        // Sealed: the raw transaction bytes are not visible.
        assert!(!blob.windows(10).any(|w| w == b"tx-data-10"));
    }
}

#[test]
fn exponential_backoff_converges_under_interleaved_timeouts() {
    // The budget doubles per escalation and caps at 8× — PBFT's doubling
    // view-change timer expressed in ticks. Pinned here so a regression
    // back to the fixed 2-stall budget fails loudly.
    assert_eq!(splitbft_pbft::stall_budget(0), 2);
    assert_eq!(splitbft_pbft::stall_budget(1), 4);
    assert_eq!(splitbft_pbft::stall_budget(2), 8);
    assert_eq!(splitbft_pbft::stall_budget(3), 16);
    assert_eq!(splitbft_pbft::stall_budget(9), 16, "budget growth is capped");

    // Convergence under *interleaved* timers: with the primary dead,
    // replica 1's clock runs double speed, replica 3's half speed, and
    // messages only flow at round boundaries. With a fixed re-broadcast
    // budget the fast replica escalates at a constant rate and can
    // leapfrog the stragglers' targets round after round; exponential
    // backoff makes every further hop strictly cheaper to catch, so the
    // views must fold together within a bounded number of rounds.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![plain_request(0, 1, Bytes::from_static(b"inc"))]);
    cluster.down[0] = true;

    let mut converged = false;
    for round in 0..12 {
        for _ in 0..2 {
            let events = cluster.replicas[1].on_view_timeout();
            cluster.handle_events(1, events);
        }
        let events = cluster.replicas[2].on_view_timeout();
        cluster.handle_events(2, events);
        if round % 2 == 0 {
            let events = cluster.replicas[3].on_view_timeout();
            cluster.handle_events(3, events);
        }
        cluster.run();

        let views: Vec<View> = (1..4).map(|i| cluster.replicas[i].views().1).collect();
        if views.iter().all(|v| *v == views[0]) && !cluster.replicas[1].has_pending_requests() {
            converged = true;
            break;
        }
    }
    assert!(converged, "confirmation views failed to converge within 12 interleaved rounds");

    // The converged view must be live. If its primary happens to be the
    // dead replica 0, the cluster's own timers move it along first.
    for _ in 0..4 {
        let view = cluster.replicas[1].views().1;
        if (view.0 as usize) % 4 != 0 && !cluster.replicas[1].has_pending_requests() {
            break;
        }
        cluster.timeout_all_up();
    }
    let view = cluster.replicas[1].views().1;
    let primary = (view.0 as usize) % 4;
    assert_ne!(primary, 0, "converged view's primary is the dead replica");
    cluster.submit(primary, vec![plain_request(0, 2, Bytes::from_static(b"inc"))]);
    for i in 1..4 {
        assert_eq!(
            cluster.replicas[i].app().value(),
            2,
            "replica {i} did not execute in the converged view"
        );
    }
}
