//! The untrusted **broker** and the assembled SplitBFT replica.
//!
//! The broker is the shim layer of §5: it owns the three enclave hosts,
//! "intercepts incoming messages and sends them to the corresponding
//! enclave using ecalls", drains the enclaves' ocall queues, and pushes
//! outbound traffic to the network. It also implements the message
//! *duplication* of §3.2: every incoming `PrePrepare`, `Checkpoint` and
//! `NewView` is delivered to multiple compartments' private input logs.
//!
//! The broker is untrusted: "this layer can be compromised, causing
//! liveness issues ... However, confidentiality and integrity are not
//! affected". The robustness tests exercise that by wrapping the broker
//! in hostile variants (dropping, duplicating, cross-wiring messages)
//! and checking that safety invariants still hold.

use crate::adapter::EnclaveAdapter;
use crate::conf::ConfirmationCompartment;
use crate::ecall::{CompartmentInput, CompartmentOutput, ECALL_HANDLE, OCALL_OUTPUT};
use crate::exec::ExecutionCompartment;
use crate::prep::PreparationCompartment;
use crate::suffix::SuffixRing;
use bytes::Bytes;
use splitbft_app::Application;
use splitbft_tee::attest::{PlatformAuthority, Quote};
use splitbft_tee::fault::{FaultPlan, FaultyEnclave};
use splitbft_tee::host::{EnclaveHost, ExecMode, TransitionStats};
use splitbft_tee::CostModel;
use splitbft_types::wire::{decode, encode};
use splitbft_types::{
    CheckpointCertificate, ClientId, ClusterConfig, CompartmentKind, ConsensusMessage, Digest,
    DurableCheckpoint, DurableEvent, ProtocolError, ReplicaId, Reply, Request, RequestBatch,
    RequestId, SeqNum, View,
};
use std::collections::{BTreeMap, VecDeque};

/// An event surfaced by the broker to the hosting runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaEvent {
    /// Send this message to every other replica.
    Broadcast(ConsensusMessage),
    /// Deliver a reply to a client.
    Reply {
        /// The destination client.
        to: ClientId,
        /// The reply.
        reply: Reply,
    },
    /// Persist a sealed blob to untrusted storage.
    Persist(Bytes),
    /// A compartment observed a commit.
    Committed {
        /// Which compartment reported it.
        kind: CompartmentKind,
        /// The slot.
        seq: SeqNum,
        /// The committed digest.
        digest: Digest,
    },
    /// The Execution compartment executed a request.
    Executed {
        /// The slot.
        seq: SeqNum,
        /// The request.
        request: RequestId,
    },
    /// A compartment stabilized a checkpoint.
    StableCheckpoint {
        /// Which compartment.
        kind: CompartmentKind,
        /// The stable slot.
        seq: SeqNum,
    },
    /// A compartment moved to a new view.
    EnteredView {
        /// Which compartment.
        kind: CompartmentKind,
        /// The new view.
        view: View,
    },
    /// A compartment rejected an input (normal under byzantine peers).
    Rejected {
        /// Which compartment.
        kind: CompartmentKind,
        /// Why.
        reason: String,
    },
    /// An ecall bounced off a crashed enclave.
    EnclaveCrashed {
        /// Which compartment.
        kind: CompartmentKind,
    },
}

/// One boundary crossing, recorded for the Figure 4 style analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcallRecord {
    /// The compartment entered.
    pub kind: CompartmentKind,
    /// Bytes copied in.
    pub bytes_in: usize,
    /// Virtual boundary cost charged by the host (transition + copies).
    pub boundary_ns: u64,
}

/// Per-compartment fault plans for robustness experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompartmentFaults {
    /// Fault plan for the Preparation enclave.
    pub preparation: Option<FaultPlan>,
    /// Fault plan for the Confirmation enclave.
    pub confirmation: Option<FaultPlan>,
    /// Fault plan for the Execution enclave.
    pub execution: Option<FaultPlan>,
}

type Hosted<C> = EnclaveHost<FaultyEnclave<EnclaveAdapter<C>>>;

/// A complete SplitBFT replica: three enclaves plus the untrusted broker.
pub struct SplitBftReplica<A: Application> {
    id: ReplicaId,
    config: ClusterConfig,
    prep: Hosted<PreparationCompartment>,
    conf: Hosted<ConfirmationCompartment>,
    exec: Hosted<ExecutionCompartment<A>>,
    trace: Vec<EcallRecord>,
    /// Highest not-yet-executed request timestamp per client, kept by the
    /// broker so a request-aware view-change timer can detect a stalled
    /// primary. The broker cannot verify request MACs (it must not hold
    /// client keys — a compromised broker with forging power would break
    /// the integrity model), so unauthenticated spam can arm the timer;
    /// that only costs liveness, which a compromised broker may take
    /// anyway per the paper's threat model.
    pending: BTreeMap<ClientId, splitbft_types::Timestamp>,
    /// Batches seen in `PrePrepare`s, keyed by slot and then by the
    /// batch's *recomputed* digest, kept until their slot commits so
    /// the broker can WAL the full batch at the commit point. Keying by
    /// our own digest (not the PrePrepare's claimed one) means a
    /// byzantine proposal can never substitute the batch recorded for a
    /// commit — the commit event's digest selects the matching bytes.
    /// GC'd at each stable checkpoint.
    seen_batches: BTreeMap<SeqNum, BTreeMap<Digest, RequestBatch>>,
    /// Durable consensus events buffered for a durable runtime's WAL
    /// (empty and free unless [`SplitBftReplica::enable_durable_events`]
    /// was called).
    durable: Vec<DurableEvent>,
    durable_enabled: bool,
    /// Committed-certificate suffix ring serving the log path of peer
    /// state transfer (see [`crate::suffix`]). Harvested alongside the
    /// WAL batches, so it is also gated on `durable_enabled` — pure
    /// in-memory hosting pays nothing for it.
    suffix: SuffixRing,
}

impl<A: Application> SplitBftReplica<A> {
    /// Assembles replica `id` in the given execution mode.
    pub fn new(
        config: ClusterConfig,
        id: ReplicaId,
        master_seed: u64,
        app: A,
        mode: ExecMode,
        cost: CostModel,
    ) -> Self {
        Self::with_faults(config, id, master_seed, app, mode, cost, CompartmentFaults::default())
    }

    /// Assembles a replica whose enclaves misbehave per `faults` — the
    /// Table 1 robustness scenarios.
    #[allow(clippy::too_many_arguments)]
    pub fn with_faults(
        config: ClusterConfig,
        id: ReplicaId,
        master_seed: u64,
        app: A,
        mode: ExecMode,
        cost: CostModel,
        faults: CompartmentFaults,
    ) -> Self {
        let wrap = |plan: Option<FaultPlan>| plan.unwrap_or_else(FaultPlan::benign);
        let prep = EnclaveHost::new(
            FaultyEnclave::new(
                EnclaveAdapter::new(PreparationCompartment::new(
                    config.clone(),
                    id,
                    master_seed,
                )),
                wrap(faults.preparation),
            ),
            mode,
            cost.clone(),
        );
        let conf = EnclaveHost::new(
            FaultyEnclave::new(
                EnclaveAdapter::new(ConfirmationCompartment::new(
                    config.clone(),
                    id,
                    master_seed,
                )),
                wrap(faults.confirmation),
            ),
            mode,
            cost.clone(),
        );
        let exec = EnclaveHost::new(
            FaultyEnclave::new(
                EnclaveAdapter::new(ExecutionCompartment::new(
                    config.clone(),
                    id,
                    master_seed,
                    app,
                )),
                wrap(faults.execution),
            ),
            mode,
            cost,
        );
        SplitBftReplica {
            id,
            config,
            prep,
            conf,
            exec,
            trace: Vec::new(),
            pending: BTreeMap::new(),
            seen_batches: BTreeMap::new(),
            durable: Vec::new(),
            durable_enabled: false,
            suffix: SuffixRing::default(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// §3.2 message duplication: which compartments receive each message
    /// type.
    fn route(msg: &ConsensusMessage) -> &'static [CompartmentKind] {
        use CompartmentKind::*;
        match msg {
            // Duplicated into all three input logs.
            ConsensusMessage::PrePrepare(_) => &[Preparation, Confirmation, Execution],
            ConsensusMessage::Checkpoint(_) => &[Preparation, Confirmation, Execution],
            ConsensusMessage::NewView(_) => &[Preparation, Confirmation, Execution],
            // Single-compartment events.
            ConsensusMessage::Prepare(_) => &[Confirmation],
            ConsensusMessage::Commit(_) => &[Execution],
            // ViewChange also feeds Confirmation's join rule: f + 1
            // distinct votes for a higher view make it join that view
            // change instead of diverging one view per local timeout.
            ConsensusMessage::ViewChange(_) => &[Preparation, Confirmation],
        }
    }

    fn ecall_into(
        &mut self,
        kind: CompartmentKind,
        input: &CompartmentInput,
        events: &mut Vec<ReplicaEvent>,
        loopback: &mut VecDeque<(CompartmentKind, ConsensusMessage)>,
    ) {
        let bytes = encode(input);
        let reply = match kind {
            CompartmentKind::Preparation => self.prep.ecall(ECALL_HANDLE, &bytes),
            CompartmentKind::Confirmation => self.conf.ecall(ECALL_HANDLE, &bytes),
            CompartmentKind::Execution => self.exec.ecall(ECALL_HANDLE, &bytes),
        };
        let reply = match reply {
            Ok(reply) => reply,
            Err(_) => {
                events.push(ReplicaEvent::EnclaveCrashed { kind });
                return;
            }
        };
        self.trace.push(EcallRecord {
            kind,
            bytes_in: bytes.len(),
            boundary_ns: reply.boundary_ns,
        });
        for ocall in reply.ocalls {
            if ocall.id != OCALL_OUTPUT {
                continue;
            }
            // Ocall payloads from a possibly-compromised enclave are
            // untrusted bytes; garbage is dropped.
            let Ok(output) = decode::<CompartmentOutput>(&ocall.data) else { continue };
            match output {
                CompartmentOutput::Broadcast(msg) => {
                    events.push(ReplicaEvent::Broadcast(msg.clone()));
                    loopback.push_back((kind, msg));
                }
                CompartmentOutput::SendReply { to, reply } => {
                    events.push(ReplicaEvent::Reply { to, reply });
                }
                CompartmentOutput::Persist(blob) => events.push(ReplicaEvent::Persist(blob)),
                CompartmentOutput::Committed { seq, digest } => {
                    events.push(ReplicaEvent::Committed { kind, seq, digest });
                }
                CompartmentOutput::Executed { seq, request } => {
                    events.push(ReplicaEvent::Executed { seq, request });
                }
                CompartmentOutput::StableCheckpoint { seq } => {
                    events.push(ReplicaEvent::StableCheckpoint { kind, seq });
                }
                CompartmentOutput::EnteredView(view) => {
                    events.push(ReplicaEvent::EnteredView { kind, view });
                }
                CompartmentOutput::Rejected { reason } => {
                    events.push(ReplicaEvent::Rejected { kind, reason });
                }
            }
        }
    }

    /// Routes one message (from the network or looped back from a local
    /// enclave) into every subscribed compartment except its local
    /// originator, then drains the cascade of follow-up messages.
    fn dispatch(
        &mut self,
        origin: Option<CompartmentKind>,
        msg: ConsensusMessage,
    ) -> Vec<ReplicaEvent> {
        let mut events = Vec::new();
        let mut loopback: VecDeque<(CompartmentKind, ConsensusMessage)> = VecDeque::new();
        // First hop: deliver to every routed compartment except the local
        // originator (none when the message came from the network).
        let first_targets: Vec<CompartmentKind> = Self::route(&msg)
            .iter()
            .copied()
            .filter(|k| Some(*k) != origin)
            .collect();
        let input = CompartmentInput::Message(msg);
        for kind in first_targets {
            self.ecall_into(kind, &input, &mut events, &mut loopback);
        }
        // Follow-ups produced by local enclaves cascade until quiescent.
        while let Some((from, m)) = loopback.pop_front() {
            let targets: Vec<CompartmentKind> =
                Self::route(&m).iter().copied().filter(|k| *k != from).collect();
            let input = CompartmentInput::Message(m);
            for kind in targets {
                self.ecall_into(kind, &input, &mut events, &mut loopback);
            }
        }
        events
    }

    /// Delivers a message received from the network.
    pub fn on_network_message(&mut self, msg: ConsensusMessage) -> Vec<ReplicaEvent> {
        self.note_batch_of(&msg);
        let events = self.dispatch(None, msg);
        self.observe_execution(&events);
        self.harvest_durable(&events);
        events
    }

    /// Delivers a batch of client requests to the Preparation enclave
    /// (the batcher lives in the runtime, per P1).
    pub fn on_client_batch(&mut self, requests: Vec<Request>) -> Vec<ReplicaEvent> {
        for req in &requests {
            let entry = self.pending.entry(req.client()).or_insert(req.id.timestamp);
            if *entry < req.id.timestamp {
                *entry = req.id.timestamp;
            }
        }
        let mut events = Vec::new();
        let mut loopback = VecDeque::new();
        let input = CompartmentInput::ClientBatch(requests);
        self.ecall_into(CompartmentKind::Preparation, &input, &mut events, &mut loopback);
        while let Some((from, m)) = loopback.pop_front() {
            let targets: Vec<CompartmentKind> =
                Self::route(&m).iter().copied().filter(|k| *k != from).collect();
            let input = CompartmentInput::Message(m);
            for kind in targets {
                self.ecall_into(kind, &input, &mut events, &mut loopback);
            }
        }
        self.observe_execution(&events);
        self.harvest_durable(&events);
        events
    }

    /// The environment's view-change timer fired: notify Confirmation.
    pub fn on_view_timeout(&mut self) -> Vec<ReplicaEvent> {
        // One stall buys one failover attempt; retransmitting clients
        // re-arm the timer if the next primary stalls too.
        self.pending.clear();
        let mut events = Vec::new();
        let mut loopback = VecDeque::new();
        let input = CompartmentInput::ViewTimeout;
        self.ecall_into(CompartmentKind::Confirmation, &input, &mut events, &mut loopback);
        while let Some((from, m)) = loopback.pop_front() {
            let targets: Vec<CompartmentKind> =
                Self::route(&m).iter().copied().filter(|k| *k != from).collect();
            let input = CompartmentInput::Message(m);
            for kind in targets {
                self.ecall_into(kind, &input, &mut events, &mut loopback);
            }
        }
        self.harvest_durable(&events);
        events
    }

    /// `true` while a client request has been seen by the broker but not
    /// yet reported executed by the Execution compartment.
    pub fn has_pending_requests(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drops pending markers covered by `Executed` events in `events`.
    fn observe_execution(&mut self, events: &[ReplicaEvent]) {
        for event in events {
            if let ReplicaEvent::Executed { request, .. } = event {
                if self.pending.get(&request.client).is_some_and(|t| *t <= request.timestamp) {
                    self.pending.remove(&request.client);
                }
            }
        }
    }

    // --- durability --------------------------------------------------------

    /// Remembers the batch of a passing `PrePrepare` so the commit point
    /// can be WAL'd with its full batch (commits carry only the digest),
    /// and harvests `PrePrepare`/`Commit`/`NewView` traffic into the
    /// suffix ring serving lagging peers. The ring recomputes the batch
    /// digest anyway, so `seen_batches` reuses it — one hash per
    /// proposal, not two.
    fn note_batch_of(&mut self, msg: &ConsensusMessage) {
        if !self.durable_enabled {
            return;
        }
        // The Execution compartment's view bounds which NewViews the
        // ring may retain (see suffix::NEW_VIEW_SLACK).
        let current_view = self.exec.enclave().inner().inner().view();
        let digest = self.suffix.observe(msg, current_view);
        if let (ConsensusMessage::PrePrepare(pp), Some(digest)) = (msg, digest) {
            self.seen_batches
                .entry(pp.payload.seq)
                .or_default()
                .insert(digest, pp.payload.batch.clone());
        }
    }

    /// Translates compartment events into durable WAL records. The
    /// Execution compartment is the authority: its commit points carry
    /// the replayable batches, its stable checkpoints set the GC point,
    /// and its view entries track the replicated view variable.
    fn harvest_durable(&mut self, events: &[ReplicaEvent]) {
        if !self.durable_enabled {
            return;
        }
        for event in events {
            match event {
                ReplicaEvent::Broadcast(msg) => self.note_batch_of(msg),
                ReplicaEvent::Committed { kind: CompartmentKind::Execution, seq, digest } => {
                    // Only the batch whose bytes hash to the committed
                    // digest may enter the WAL for this slot; the suffix
                    // ring freezes to the same digest.
                    self.suffix.mark_committed(*seq, *digest);
                    let batch = self
                        .seen_batches
                        .remove(seq)
                        .and_then(|mut by_digest| by_digest.remove(digest));
                    if let Some(batch) = batch {
                        self.durable.push(DurableEvent::Committed { seq: *seq, batch });
                    }
                }
                ReplicaEvent::StableCheckpoint { kind: CompartmentKind::Execution, seq } => {
                    self.seen_batches = self.seen_batches.split_off(&SeqNum(seq.0 + 1));
                    self.suffix.gc(*seq);
                    self.durable.push(DurableEvent::StableCheckpoint { seq: *seq });
                }
                ReplicaEvent::EnteredView { kind: CompartmentKind::Execution, view } => {
                    self.durable.push(DurableEvent::EnteredView { view: *view });
                }
                _ => {}
            }
        }
    }

    /// Starts recording durable consensus events (see
    /// [`SplitBftReplica::drain_durable_events`]).
    pub fn enable_durable_events(&mut self) {
        self.durable_enabled = true;
    }

    /// Drains the durable events recorded since the last drain.
    pub fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        std::mem::take(&mut self.durable)
    }

    /// Replays one WAL event during crash recovery: committed batches
    /// are re-executed inside the Execution enclave; everything else is
    /// either hybrid-specific or a GC marker.
    pub fn replay_durable_event(&mut self, event: DurableEvent) {
        if let DurableEvent::Committed { seq, batch } = event {
            let mut events = Vec::new();
            let mut loopback = VecDeque::new();
            let input = CompartmentInput::ReplayCommitted { seq, batch };
            self.ecall_into(CompartmentKind::Execution, &input, &mut events, &mut loopback);
            // Replay produces no network traffic; local follow-ups
            // (e.g. a checkpoint vote) are dropped with the events.
        }
    }

    /// The Execution compartment's stable checkpoint certificate,
    /// serialized for sealing and peer state transfer. `None` at
    /// genesis.
    pub fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        let cert = self.exec.enclave().inner().inner().stable_proof();
        let digest = cert.state_digest()?;
        Some(DurableCheckpoint { seq: cert.seq(), digest, state: encode(cert).into() })
    }

    /// Restores compartment state from a checkpoint certificate by
    /// feeding its `2f + 1` signed `Checkpoint`s through the normal
    /// message path: every compartment re-verifies them exactly like
    /// network input, so corrupt or forged certificates cannot take
    /// effect.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CorruptState`] when the bytes do not decode,
    /// do not match the claimed `(seq, digest)`, or fail to move the
    /// Execution compartment to the certified state.
    pub fn restore_durable_checkpoint(
        &mut self,
        cp: &DurableCheckpoint,
    ) -> Result<(), ProtocolError> {
        let cert: CheckpointCertificate = decode(&cp.state)
            .map_err(|e| ProtocolError::CorruptState(format!("checkpoint decode: {e}")))?;
        if cert.seq() != cp.seq || cert.state_digest() != Some(cp.digest) {
            return Err(ProtocolError::CorruptState(
                "checkpoint certificate does not match its claimed seq/digest".into(),
            ));
        }
        if self.last_executed() >= cp.seq {
            return Ok(()); // already at or past the certified state
        }
        for signed in &cert.checkpoints {
            let _ = self.dispatch(None, ConsensusMessage::Checkpoint(signed.clone()));
        }
        if self.last_executed() < cp.seq {
            return Err(ProtocolError::CorruptState(
                "checkpoint certificate was rejected by the compartments".into(),
            ));
        }
        Ok(())
    }

    /// Retained messages letting a peer at `have_seq` catch up above
    /// the stable checkpoint through its normal verifying message path:
    /// for every committed slot the suffix ring still holds, the
    /// committed `PrePrepare` plus its `Commit` votes (see
    /// [`crate::suffix`]). Empty until durable hosting enables
    /// harvesting.
    pub fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<ConsensusMessage> {
        self.suffix.messages_from(have_seq)
    }

    /// Read access to the suffix ring (tests and diagnostics).
    pub fn suffix_ring(&self) -> &SuffixRing {
        &self.suffix
    }

    /// Installs a client session key in the Execution enclave (the tail
    /// of the attestation handshake).
    pub fn install_session_key(
        &mut self,
        client: ClientId,
        client_dh_public: u64,
        wrapped_key: Vec<u8>,
    ) -> Vec<ReplicaEvent> {
        let mut events = Vec::new();
        let mut loopback = VecDeque::new();
        let input = CompartmentInput::InstallSessionKey { client, client_dh_public, wrapped_key };
        self.ecall_into(CompartmentKind::Execution, &input, &mut events, &mut loopback);
        events
    }

    /// Produces the Execution enclave's attestation quote (report data =
    /// its DH public value), signed by the platform authority.
    pub fn attestation_quote(&self, authority: &PlatformAuthority) -> Quote {
        let dh = self.exec.enclave().inner().inner().dh_public_value();
        authority.quote(self.exec.measurement(), dh.to_le_bytes().to_vec())
    }

    // --- inspection & fault injection --------------------------------------

    /// The Execution compartment's last executed slot.
    pub fn last_executed(&self) -> SeqNum {
        self.exec.enclave().inner().inner().last_executed()
    }

    /// The Execution compartment's state digest (divergence checks).
    pub fn state_digest(&self) -> Digest {
        self.exec.enclave().inner().inner().state_digest()
    }

    /// Read access to the replicated application.
    pub fn app(&self) -> &A {
        self.exec.enclave().inner().inner().app()
    }

    /// Each compartment's current view `(prep, conf, exec)`.
    pub fn views(&self) -> (View, View, View) {
        (
            self.prep.enclave().inner().inner().view(),
            self.conf.enclave().inner().inner().view(),
            self.exec.enclave().inner().inner().view(),
        )
    }

    /// Boundary statistics of one compartment's host.
    pub fn stats(&self, kind: CompartmentKind) -> TransitionStats {
        match kind {
            CompartmentKind::Preparation => self.prep.stats(),
            CompartmentKind::Confirmation => self.conf.stats(),
            CompartmentKind::Execution => self.exec.stats(),
        }
    }

    /// Drains the per-ecall trace (Figure 4 analysis).
    pub fn drain_trace(&mut self) -> Vec<EcallRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Crash-faults one enclave (host-visible failure; recovery is a
    /// separate reboot path).
    pub fn crash_enclave(&mut self, kind: CompartmentKind) {
        match kind {
            CompartmentKind::Preparation => self.prep.inject_crash(),
            CompartmentKind::Confirmation => self.conf.inject_crash(),
            CompartmentKind::Execution => self.exec.inject_crash(),
        }
    }

    /// Arms a byzantine fault plan on one enclave at runtime.
    pub fn arm_fault(&mut self, kind: CompartmentKind, plan: FaultPlan) {
        match kind {
            CompartmentKind::Preparation => self.prep.enclave_mut().set_plan(plan),
            CompartmentKind::Confirmation => self.conf.enclave_mut().set_plan(plan),
            CompartmentKind::Execution => self.exec.enclave_mut().set_plan(plan),
        }
    }
}

impl<A: Application> std::fmt::Debug for SplitBftReplica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitBftReplica")
            .field("id", &self.id)
            .field("views", &self.views())
            .field("last_exec", &self.last_executed())
            .finish_non_exhaustive()
    }
}
