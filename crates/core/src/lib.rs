//! SplitBFT — compartmentalized Byzantine fault tolerance with trusted
//! execution.
//!
//! This crate is the paper's primary contribution: PBFT decomposed into
//! three independently-failing compartments, each hosted in its own
//! (simulated) enclave, glued together by an untrusted broker, with
//! request/reply confidentiality end-to-end between clients and the
//! Execution compartment.
//!
//! # Architecture
//!
//! ```text
//!                       ┌──────────────── replica ────────────────┐
//!   clients ── requests │ broker (untrusted): batching, timers,   │
//!      ▲                │   network I/O, ecall/ocall queues       │
//!      │                │   │         │             │             │
//!      │                │ ┌─▼──────┐ ┌▼──────────┐ ┌▼───────────┐ │
//!      │                │ │ Prep.  │ │ Confirm.  │ │ Execution  │ │
//!      │                │ │enclave │ │ enclave   │ │ enclave    │ │
//!      └─ encrypted ────┼─┤(order) │ │(certify)  │ │(run app,   │ │
//!         replies       │ └────────┘ └───────────┘ │ checkpoint)│ │
//!                       │                          └────────────┘ │
//!                       └──────────────────────────────────────────┘
//! ```
//!
//! - [`prep::PreparationCompartment`] — ordering: `PrePrepare`/`Prepare`,
//!   view-change validation, `NewView` issuance and full re-validation.
//! - [`conf::ConfirmationCompartment`] — prepare certificates → `Commit`,
//!   `ViewChange` origination.
//! - [`exec::ExecutionCompartment`] — commit certificates → execution,
//!   encrypted replies, checkpoint generation, sealed persistence.
//! - [`replica::SplitBftReplica`] — the broker assembling the three
//!   enclave hosts, with §3.2's message duplication and fault injection
//!   hooks.
//! - [`client::SplitBftClient`] — attestation, session keys, encrypted
//!   requests, `f + 1` reply quorums.
//!
//! Quorum state transitions (P5) mean up to `f` enclaves *per
//! compartment type* may fail byzantine — on top of a fully compromised
//! environment on every replica — without endangering safety; see the
//! robustness tests and `splitbft-model`.
//!
//! # Example
//!
//! ```
//! use splitbft_app::KeyValueStore;
//! use splitbft_core::{ReplicaEvent, SplitBftReplica};
//! use splitbft_tee::{CostModel, ExecMode};
//! use splitbft_types::{ClusterConfig, ReplicaId};
//!
//! let cfg = ClusterConfig::new(4).unwrap();
//! let replica = SplitBftReplica::new(
//!     cfg,
//!     ReplicaId(0),
//!     42,
//!     KeyValueStore::new(),
//!     ExecMode::Hardware,
//!     CostModel::paper_calibrated(),
//! );
//! assert_eq!(replica.id(), ReplicaId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod client;
pub mod conf;
pub mod ecall;
pub mod exec;
pub mod hosting;
pub mod prep;
pub mod replica;
pub mod scheme;
pub mod suffix;

pub use adapter::{Compartment, EnclaveAdapter};
pub use client::{SplitBftClient, SplitClientEvent};
pub use conf::ConfirmationCompartment;
pub use ecall::{CompartmentInput, CompartmentOutput};
pub use exec::ExecutionCompartment;
pub use prep::PreparationCompartment;
pub use replica::{CompartmentFaults, EcallRecord, ReplicaEvent, SplitBftReplica};
pub use scheme::{compartment_measurement, enclave_signer, SPLITBFT_SCHEME};
pub use suffix::{SuffixRing, DEFAULT_SUFFIX_CAP};
