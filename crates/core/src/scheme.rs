//! SplitBFT's signer scheme and enclave measurements.
//!
//! In SplitBFT every protocol message is signed by an individual
//! *enclave*, not by a replica: a `Prepare` must come from a Preparation
//! enclave, a `Commit` from a Confirmation enclave, a `Checkpoint` from an
//! Execution enclave. Binding message types to compartment types is what
//! lets a receiving compartment ignore a compromised sibling enclave on
//! the same replica — its key simply cannot produce the messages this
//! compartment consumes.

use splitbft_crypto::digest_bytes;
use splitbft_pbft::SignerScheme;
use splitbft_types::{CompartmentKind, EnclaveId, ReplicaId, SignerId};

/// The expected signer of each message type under SplitBFT.
pub const SPLITBFT_SCHEME: SignerScheme = SignerScheme {
    proposer: |r: ReplicaId| SignerId::Enclave(EnclaveId::new(r, CompartmentKind::Preparation)),
    preparer: |r: ReplicaId| SignerId::Enclave(EnclaveId::new(r, CompartmentKind::Preparation)),
    confirmer: |r: ReplicaId| SignerId::Enclave(EnclaveId::new(r, CompartmentKind::Confirmation)),
    executor: |r: ReplicaId| SignerId::Enclave(EnclaveId::new(r, CompartmentKind::Execution)),
};

/// The signer identity of one enclave.
pub fn enclave_signer(replica: ReplicaId, kind: CompartmentKind) -> SignerId {
    SignerId::Enclave(EnclaveId::new(replica, kind))
}

/// All enclave signer identities of a cluster plus nothing else — the
/// registry population for a SplitBFT deployment.
pub fn all_enclave_signers(n: usize) -> impl Iterator<Item = SignerId> {
    (0..n as u32).flat_map(|r| {
        CompartmentKind::ALL
            .into_iter()
            .map(move |kind| enclave_signer(ReplicaId(r), kind))
    })
}

/// The enclave *measurement* of a compartment type. Enclaves of the same
/// compartment share code and hence a measurement; different compartments
/// share nothing (the paper's diversity argument), so their measurements
/// differ.
pub fn compartment_measurement(kind: CompartmentKind) -> [u8; 32] {
    let label: &[u8] = match kind {
        CompartmentKind::Preparation => b"splitbft-preparation-enclave-v1",
        CompartmentKind::Confirmation => b"splitbft-confirmation-enclave-v1",
        CompartmentKind::Execution => b"splitbft-execution-enclave-v1",
    };
    digest_bytes(label).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_routes_to_the_right_compartment() {
        let r = ReplicaId(2);
        assert_eq!(
            (SPLITBFT_SCHEME.preparer)(r),
            enclave_signer(r, CompartmentKind::Preparation)
        );
        assert_eq!(
            (SPLITBFT_SCHEME.confirmer)(r),
            enclave_signer(r, CompartmentKind::Confirmation)
        );
        assert_eq!(
            (SPLITBFT_SCHEME.executor)(r),
            enclave_signer(r, CompartmentKind::Execution)
        );
    }

    #[test]
    fn all_signers_enumerates_3n_enclaves() {
        let signers: Vec<_> = all_enclave_signers(4).collect();
        assert_eq!(signers.len(), 12);
        let unique: std::collections::BTreeSet<_> = signers.iter().collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn measurements_differ_per_compartment() {
        let m: Vec<_> = CompartmentKind::ALL.iter().map(|k| compartment_measurement(*k)).collect();
        assert_ne!(m[0], m[1]);
        assert_ne!(m[1], m[2]);
        assert_ne!(m[0], m[2]);
    }
}
