//! The **Execution compartment**: collects a quorum of confirmations,
//! executes authenticated requests, replies to clients, and generates
//! checkpoints (paper §3.2).
//!
//! Event handlers hosted here: (4) commit-certificate collection →
//! execute + `Reply`, (8) checkpoint generation — co-located with (4)
//! per principle P3 because both touch the application state — plus the
//! duplicated checkpoint GC handler (9) and `NewView` application (7').
//!
//! This is the *confidentiality* compartment: client operations arrive
//! encrypted under per-client session keys installed during attestation
//! and are decrypted only here; results are encrypted before leaving.
//! "Confidentiality is maintained as long as all enclaves of type
//! Execution are correct" (§2).

use crate::ecall::{CompartmentInput, CompartmentOutput};
use crate::scheme::{compartment_measurement, enclave_signer, SPLITBFT_SCHEME};
use bytes::Bytes;
use splitbft_app::Application;
use splitbft_crypto::aead::{open, seal, AeadKey};
use splitbft_crypto::sig::{dh_public, dh_shared};
use splitbft_crypto::{client_mac_key, digest_bytes, digest_of, KeyPair, KeyRegistry};
use splitbft_pbft::verify::verify_signed_from;
use splitbft_pbft::CheckpointTracker;
use splitbft_tee::seal::SealingIdentity;
use splitbft_types::wire::{Decode, Encode, Reader};
use splitbft_types::{
    Checkpoint, ClientId, ClusterConfig, CompartmentKind, Commit, ConsensusMessage, Digest,
    NewView, PrePrepare, ProtocolError, ReplicaId, Reply, Request, RequestBatch, SeqNum, Signed,
    SignerId, Timestamp, View,
};
use std::collections::BTreeMap;

/// AAD label binding request ciphertexts (shared with the client).
pub const REQ_AAD: &[u8] = b"splitbft-request";
/// AAD label binding reply ciphertexts (shared with the client).
pub const REPLY_AAD: &[u8] = b"splitbft-reply";
/// Wrapping nonce for session-key installation.
const WRAP_NONCE: u64 = 0;

/// Derives the Execution enclave's Diffie–Hellman secret. In real SGX
/// this would be generated inside the enclave at startup; the simulation
/// derives it so provisioning code can compute the matching public value
/// for the attestation quote.
pub fn exec_dh_secret(master_seed: u64, replica: ReplicaId) -> u64 {
    let d = digest_bytes(&[b"exec-dh".as_slice(), &master_seed.to_le_bytes(), &replica.0.to_le_bytes()].concat());
    u64::from_le_bytes(d.0[..8].try_into().expect("8 bytes"))
}

#[derive(Debug, Default)]
struct ExecSlot {
    /// Candidate full-request proposals by digest (forwarded
    /// `PrePrepare`s; commits carry only the hash).
    proposals: BTreeMap<Digest, Signed<PrePrepare>>,
    /// Commit votes by sender.
    commits: BTreeMap<ReplicaId, Signed<Commit>>,
}

/// The Execution compartment state machine, generic over the replicated
/// [`Application`].
pub struct ExecutionCompartment<A> {
    config: ClusterConfig,
    replica: ReplicaId,
    signer: SignerId,
    keypair: KeyPair,
    registry: KeyRegistry,
    auth_seed: u64,

    /// This compartment's copy of the replicated view variable.
    view: View,
    /// The `in_exec` log.
    slots: BTreeMap<SeqNum, ExecSlot>,
    /// Private checkpoint tracker.
    checkpoints: CheckpointTracker,
    /// Highest executed slot.
    last_exec: SeqNum,
    /// The application state — the paper notes this dominates the
    /// Execution TCB.
    app: A,
    /// Cached last reply per client.
    last_replies: BTreeMap<ClientId, Reply>,
    /// Per-client session keys installed through attestation.
    session_keys: BTreeMap<ClientId, AeadKey>,
    /// This enclave's key-exchange secret.
    dh_secret: u64,
    /// Sealing identity for persisted blobs (SGX sealing, MRENCLAVE
    /// policy) and the monotonic seal nonce.
    seal_identity: SealingIdentity,
    seal_nonce: u64,
}

impl<A: Application> ExecutionCompartment<A> {
    /// Creates the Execution enclave logic for `replica`, hosting `app`.
    pub fn new(config: ClusterConfig, replica: ReplicaId, master_seed: u64, app: A) -> Self {
        let signer = enclave_signer(replica, CompartmentKind::Execution);
        let registry =
            KeyRegistry::with_signers(master_seed, crate::scheme::all_enclave_signers(config.n()));
        let keypair = KeyPair::for_signer(master_seed, signer);
        let dh_secret = exec_dh_secret(master_seed, replica);
        let platform = digest_bytes(&[b"platform".as_slice(), &replica.0.to_le_bytes()].concat());
        ExecutionCompartment {
            config,
            replica,
            signer,
            keypair,
            registry,
            auth_seed: master_seed,
            view: View::initial(),
            slots: BTreeMap::new(),
            checkpoints: CheckpointTracker::new(),
            last_exec: SeqNum::zero(),
            app,
            last_replies: BTreeMap::new(),
            session_keys: BTreeMap::new(),
            dh_secret,
            seal_identity: SealingIdentity {
                platform_secret: platform.0,
                measurement: compartment_measurement(CompartmentKind::Execution),
            },
            seal_nonce: 0,
        }
    }

    /// This compartment's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Highest executed slot.
    pub fn last_executed(&self) -> SeqNum {
        self.last_exec
    }

    /// Read access to the application (inspection in tests/examples).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Digest of the canonical checkpointable state.
    pub fn state_digest(&self) -> Digest {
        digest_bytes(&self.checkpoint_state_bytes())
    }

    /// Proof of the current stable checkpoint (genesis initially). The
    /// broker serializes this for sealed persistence and peer state
    /// transfer — only Execution holds the application state, so only
    /// its certificate carries a restorable snapshot.
    pub fn stable_proof(&self) -> &splitbft_types::CheckpointCertificate {
        self.checkpoints.stable_proof()
    }

    /// The enclave's DH public value, placed in its attestation quote.
    pub fn dh_public_value(&self) -> u64 {
        dh_public(self.dh_secret)
    }

    /// Number of installed client session keys.
    pub fn session_key_count(&self) -> usize {
        self.session_keys.len()
    }

    /// Approximate heap usage for EPC accounting.
    pub fn memory_usage(&self) -> usize {
        self.slots.len() * 1024
            + self.app.memory_usage()
            + self.last_replies.len() * 128
            + self.session_keys.len() * 96
    }

    fn in_window(&self, seq: SeqNum) -> bool {
        let low = self.checkpoints.stable_seq();
        seq > low && seq.0 <= low.0 + self.config.window
    }

    /// The single event-handler entry point.
    pub fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        let result = match input {
            CompartmentInput::Message(ConsensusMessage::PrePrepare(pp)) => {
                self.on_pre_prepare(pp)
            }
            CompartmentInput::Message(ConsensusMessage::Commit(c)) => self.on_commit(c),
            CompartmentInput::Message(ConsensusMessage::Checkpoint(c)) => self.on_checkpoint(c),
            CompartmentInput::Message(ConsensusMessage::NewView(nv)) => self.on_new_view(nv),
            CompartmentInput::InstallSessionKey { client, client_dh_public, wrapped_key } => {
                self.on_install_session_key(client, client_dh_public, &wrapped_key)
            }
            CompartmentInput::ReplayCommitted { seq, batch } => Ok(self.replay_committed(seq, &batch)),
            other => Err(ProtocolError::Other(format!("not an Execution event: {other:?}"))),
        };
        match result {
            Ok(outputs) => outputs,
            Err(e) => vec![CompartmentOutput::Rejected { reason: e.to_string() }],
        }
    }

    /// Forwarded proposals: Execution needs the full requests since
    /// `Commit`s carry only the batch hash (§3.2). Validity of the
    /// *contents* is established by the digest binding: the batch must
    /// hash to a digest that later gathers a commit quorum.
    fn on_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let seq = pp.payload.seq;
        if !self.in_window(seq) {
            let low = self.checkpoints.stable_seq();
            return Err(ProtocolError::OutOfWindow {
                seq,
                low,
                high: SeqNum(low.0 + self.config.window),
            });
        }
        if digest_of(&pp.payload.batch) != pp.payload.digest {
            return Err(ProtocolError::BadCertificate { kind: "pre-prepare digest" });
        }
        let digest = pp.payload.digest;
        self.slots.entry(seq).or_default().proposals.insert(digest, pp);
        Ok(self.try_execute())
    }

    /// Handler (4): collect the commit quorum.
    fn on_commit(&mut self, c: Signed<Commit>) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let seq = c.payload.seq;
        if c.payload.view != self.view {
            return Err(ProtocolError::WrongView { got: c.payload.view, current: self.view });
        }
        // Early drop: commits for already-executed slots are redundant;
        // skip signature verification.
        if seq <= self.last_exec {
            return Ok(Vec::new());
        }
        verify_signed_from(&self.registry, &c, (SPLITBFT_SCHEME.confirmer)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        if !self.in_window(seq) {
            let low = self.checkpoints.stable_seq();
            return Err(ProtocolError::OutOfWindow {
                seq,
                low,
                high: SeqNum(low.0 + self.config.window),
            });
        }
        self.slots.entry(seq).or_default().commits.insert(c.payload.replica, c);
        Ok(self.try_execute())
    }

    /// A slot is executable once `2f + 1` commits from distinct
    /// Confirmation enclaves agree on (view, digest) *and* the full batch
    /// with that digest is present.
    fn committed_digest(&self, seq: SeqNum) -> Option<Digest> {
        let slot = self.slots.get(&seq)?;
        let mut counts: BTreeMap<(View, Digest), usize> = BTreeMap::new();
        for c in slot.commits.values() {
            *counts.entry((c.payload.view, c.payload.digest)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .find(|(_, n)| *n >= self.config.quorum())
            .map(|((_, d), _)| d)
            .filter(|d| slot.proposals.contains_key(d))
    }

    fn try_execute(&mut self) -> Vec<CompartmentOutput> {
        let mut outputs = Vec::new();
        loop {
            let next = self.last_exec.next();
            let Some(digest) = self.committed_digest(next) else { break };
            let batch = self
                .slots
                .get(&next)
                .and_then(|s| s.proposals.get(&digest))
                .map(|pp| pp.payload.batch.clone())
                .expect("committed_digest checked presence");
            outputs.push(CompartmentOutput::Committed { seq: next, digest });

            for req in &batch.requests {
                outputs.extend(self.execute_request(next, req));
            }
            // Sealed persistence of application blobs (blockchain blocks):
            // one ocall per blob, as in the paper's evaluation.
            for blob in self.app.drain_persist() {
                let nonce = self.seal_nonce;
                self.seal_nonce += 1;
                let sealed = splitbft_tee::seal::seal_data(
                    &self.seal_identity,
                    nonce,
                    b"splitbft-block",
                    &blob,
                );
                outputs.push(CompartmentOutput::Persist(Bytes::from(sealed)));
            }
            self.slots.remove(&next);
            self.last_exec = next;

            if next.0 % self.config.checkpoint_interval == 0 {
                outputs.extend(self.emit_checkpoint(next));
            }
        }
        outputs
    }

    /// Crash recovery: re-executes a batch whose commit point was made
    /// durable before the crash. Strictly sequential and quorum-free —
    /// the WAL record *is* the evidence the quorum existed — and emits
    /// only the execution-observability outputs (the broker discards
    /// them during replay anyway).
    fn replay_committed(&mut self, seq: SeqNum, batch: &RequestBatch) -> Vec<CompartmentOutput> {
        if seq != self.last_exec.next() {
            return Vec::new(); // stale or gapped record: replay skips it
        }
        let mut outputs = Vec::new();
        for req in &batch.requests {
            outputs.extend(self.execute_request(seq, req));
        }
        for blob in self.app.drain_persist() {
            let nonce = self.seal_nonce;
            self.seal_nonce += 1;
            let sealed =
                splitbft_tee::seal::seal_data(&self.seal_identity, nonce, b"splitbft-block", &blob);
            outputs.push(CompartmentOutput::Persist(Bytes::from(sealed)));
        }
        self.slots.remove(&seq);
        self.last_exec = seq;
        outputs
    }

    fn execute_request(&mut self, seq: SeqNum, req: &Request) -> Vec<CompartmentOutput> {
        let client = req.client();
        let mut outputs = Vec::new();
        match self.last_replies.get(&client) {
            Some(cached) if cached.request.timestamp == req.id.timestamp => {
                return vec![CompartmentOutput::SendReply { to: client, reply: cached.clone() }];
            }
            Some(cached) if cached.request.timestamp > req.id.timestamp => return outputs,
            _ => {}
        }
        // Re-verify the client MAC inside the trusted boundary: the
        // Preparation compartment checked it, but per the fault model a
        // faulty Preparation enclave could have laundered a forged
        // request into the batch. Corrupt requests execute as no-ops
        // (§4: "the Execution Compartment will detect this and execute a
        // no-op instead").
        let mac = client_mac_key(self.auth_seed, client);
        let authentic =
            mac.verify(&Request::auth_bytes(req.id, &req.op, req.encrypted), &req.auth);

        let (plaintext, session) = if !authentic {
            (None, None)
        } else if req.encrypted {
            match self.session_keys.get(&client) {
                Some(key) => (
                    open(key, req.id.timestamp.0, REQ_AAD, &req.op).ok(),
                    Some(key.clone()),
                ),
                None => (None, None),
            }
        } else {
            (Some(req.op.to_vec()), None)
        };

        let result = match plaintext {
            Some(op) => self.app.execute(&op),
            None => Bytes::from_static(splitbft_app::NOOP_RESULT),
        };

        // Encrypt the result for the client when a session exists; the
        // deterministic nonce (the request timestamp) makes every correct
        // replica produce the same ciphertext, so reply quorums match.
        let (result, encrypted) = match session {
            Some(key) => (
                Bytes::from(seal(&key, req.id.timestamp.0, REPLY_AAD, &result)),
                true,
            ),
            None => (result, false),
        };
        let auth = mac.tag(&Reply::auth_bytes(self.view, req.id, self.replica, &result, encrypted));
        let reply =
            Reply { view: self.view, request: req.id, replica: self.replica, result, encrypted, auth };
        self.last_replies.insert(client, reply.clone());
        outputs.push(CompartmentOutput::Executed { seq, request: req.id });
        outputs.push(CompartmentOutput::SendReply { to: client, reply });
        outputs
    }

    // --- checkpointing -----------------------------------------------------

    /// Canonical checkpoint state: application snapshot plus the
    /// replica-independent reply cache (client, timestamp, result).
    fn checkpoint_state_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let snapshot = self.app.snapshot();
        (snapshot.len() as u32).encode(&mut buf);
        buf.extend_from_slice(&snapshot);
        let replies: Vec<(ClientId, Timestamp, Bytes)> = self
            .last_replies
            .iter()
            .map(|(c, r)| (*c, r.request.timestamp, r.result.clone()))
            .collect();
        replies.encode(&mut buf);
        buf
    }

    fn restore_checkpoint_state(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let mut r = Reader::new(bytes);
        let len = u32::decode(&mut r)? as usize;
        let snapshot = r.take(len)?.to_vec();
        let replies: Vec<(ClientId, Timestamp, Bytes)> = Vec::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(ProtocolError::Other("trailing checkpoint bytes".into()));
        }
        self.app
            .restore(&snapshot)
            .map_err(|e| ProtocolError::Other(format!("snapshot restore failed: {e}")))?;
        self.last_replies = replies
            .into_iter()
            .map(|(client, timestamp, result)| {
                let request = splitbft_types::RequestId { client, timestamp };
                let mac = client_mac_key(self.auth_seed, client);
                // Restored results may be ciphertexts from the encrypted
                // path; mark them non-encrypted for the resend MAC — the
                // result bytes are replayed verbatim either way.
                let auth =
                    mac.tag(&Reply::auth_bytes(self.view, request, self.replica, &result, false));
                (
                    client,
                    Reply {
                        view: self.view,
                        request,
                        replica: self.replica,
                        result,
                        encrypted: false,
                        auth,
                    },
                )
            })
            .collect();
        Ok(())
    }

    /// Handler (8): generate the periodic checkpoint. Only Execution
    /// holds the application state, so only it originates `Checkpoint`s.
    fn emit_checkpoint(&mut self, seq: SeqNum) -> Vec<CompartmentOutput> {
        let state = self.checkpoint_state_bytes();
        let ckpt = Checkpoint {
            seq,
            state_digest: digest_bytes(&state),
            replica: self.replica,
            snapshot: state.into(),
        };
        let signed = self.keypair.sign_payload(ckpt, self.signer);
        let mut outputs = Vec::new();
        if let Some(cert) = self.checkpoints.insert(signed.clone(), &self.config) {
            outputs.extend(self.apply_stable(cert.seq()));
        }
        outputs.push(CompartmentOutput::Broadcast(ConsensusMessage::Checkpoint(signed)));
        outputs
    }

    /// Duplicated handler (9).
    fn on_checkpoint(
        &mut self,
        c: Signed<Checkpoint>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        verify_signed_from(&self.registry, &c, (SPLITBFT_SCHEME.executor)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        let mut outputs = Vec::new();
        if let Some(cert) = self.checkpoints.insert(c, &self.config) {
            let seq = cert.seq();
            // State transfer if this enclave fell behind.
            if self.last_exec < seq {
                if let Some(snapshot) = splitbft_pbft::verify::certified_snapshot(&cert) {
                    if self.restore_checkpoint_state(snapshot).is_ok() {
                        self.last_exec = seq;
                    }
                }
            }
            outputs.extend(self.apply_stable(seq));
        }
        Ok(outputs)
    }

    fn apply_stable(&mut self, seq: SeqNum) -> Vec<CompartmentOutput> {
        self.slots = self.slots.split_off(&SeqNum(seq.0 + 1));
        vec![CompartmentOutput::StableCheckpoint { seq }]
    }

    /// Handler (7'): apply the checkpoint and the view from a `NewView`;
    /// the re-issued `PrePrepare`s are adopted as candidate proposals but
    /// not validated (commit quorums will vouch for them).
    fn on_new_view(
        &mut self,
        nv: Signed<NewView>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let target = nv.payload.view;
        if target <= self.view {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        let primary = target.primary(&self.config);
        verify_signed_from(&self.registry, &nv, (SPLITBFT_SCHEME.proposer)(primary))?;

        let mut voters = std::collections::BTreeSet::new();
        for vc in &nv.payload.view_changes {
            if vc.payload.new_view != target {
                continue;
            }
            if verify_signed_from(
                &self.registry,
                vc,
                (SPLITBFT_SCHEME.confirmer)(vc.payload.replica),
            )
            .is_ok()
            {
                voters.insert(vc.payload.replica);
            }
        }
        if voters.len() < self.config.quorum() {
            return Err(ProtocolError::BadCertificate { kind: "NewView view-change quorum" });
        }

        if let Some(ckpt) = nv.payload.max_checkpoint() {
            splitbft_pbft::verify::verify_checkpoint_certificate(
                &self.registry,
                ckpt,
                &self.config,
                &SPLITBFT_SCHEME,
            )?;
            let seq = ckpt.seq();
            if seq > self.checkpoints.stable_seq() {
                if self.last_exec < seq {
                    if let Some(snapshot) = splitbft_pbft::verify::certified_snapshot(ckpt) {
                        if self.restore_checkpoint_state(snapshot).is_ok() {
                            self.last_exec = seq;
                        }
                    }
                }
                self.checkpoints.install_certificate(ckpt.clone());
                self.apply_stable(seq);
            }
        }

        self.view = target;
        self.slots.clear();
        for pp in nv.payload.pre_prepares {
            if pp.payload.view == target
                && self.in_window(pp.payload.seq)
                && digest_of(&pp.payload.batch) == pp.payload.digest
            {
                self.slots
                    .entry(pp.payload.seq)
                    .or_default()
                    .proposals
                    .insert(pp.payload.digest, pp);
            }
        }
        Ok(vec![CompartmentOutput::EnteredView(target)])
    }

    // --- attestation / session keys ----------------------------------------

    /// Installs a client session key wrapped under the DH shared secret
    /// (the tail end of the attestation handshake).
    fn on_install_session_key(
        &mut self,
        client: ClientId,
        client_dh_public: u64,
        wrapped_key: &[u8],
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let shared = dh_shared(self.dh_secret, client_dh_public);
        let wrap_key = AeadKey::new(&digest_bytes(&shared.to_le_bytes()).0);
        let mut aad = b"session-key:".to_vec();
        client.encode(&mut aad);
        let key_bytes = open(&wrap_key, WRAP_NONCE, &aad, wrapped_key)
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "wrapped session key" })?;
        let key_bytes: [u8; 32] = key_bytes
            .try_into()
            .map_err(|_| ProtocolError::BadAuthenticator { kind: "session key length" })?;
        self.session_keys.insert(client, AeadKey::new(&key_bytes));
        Ok(Vec::new())
    }
}

impl<A: Application> std::fmt::Debug for ExecutionCompartment<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionCompartment")
            .field("replica", &self.replica)
            .field("view", &self.view)
            .field("last_exec", &self.last_exec)
            .finish_non_exhaustive()
    }
}
