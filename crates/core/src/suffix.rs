//! The broker's committed-certificate **suffix ring** — the log path of
//! peer state transfer.
//!
//! The three compartments discard a slot's messages once it executes,
//! which kept the broker honest about memory but left lagging peers
//! only the (slow) checkpoint stream to catch up on: a replica a few
//! dozen slots behind had to wait for the next stable checkpoint even
//! though every peer had just processed exactly the messages it needs.
//!
//! The ring closes that gap at the broker layer. As consensus traffic
//! flows through the (untrusted) broker it *harvests* each slot's
//! `PrePrepare` and its `Commit` votes verbatim; when the Execution
//! compartment reports the slot committed, the entry is frozen to the
//! committed digest — only the proposal whose batch actually hashes to
//! the committed digest and the votes for that digest are retained, so
//! a byzantine proposal can never plant a substitute. Stable
//! checkpoints garbage-collect everything at or below them, and only
//! the horizon `(stable, stable + cap]` is ever admitted — which both
//! bounds the ring structurally at `cap` slots and refuses far-future
//! garbage no checkpoint would ever GC. GC is the only thing that ever
//! drops a committed certificate, and it only drops at or below the
//! stable sequence number.
//!
//! [`SuffixRing::messages_from`] serves the retained suffix to a peer
//! over `STATE_RESPONSE`: the peer replays the messages through its
//! normal verifying `on_message` path, so nothing here is trusted — a
//! corrupt ring (the broker is compromisable by design) costs liveness
//! only, never safety.

use splitbft_types::{ConsensusMessage, Digest, ReplicaId, SeqNum, View};
use std::collections::BTreeMap;

/// Default capacity (= admission-horizon length): comfortably above
/// any watermark window the compartments accept (256 by default), so
/// horizon refusal never touches legitimate traffic.
pub const DEFAULT_SUFFIX_CAP: usize = 512;

/// Most candidate proposals retained per slot. Honest traffic has one
/// per digest per view (two during an equivocation being resolved); a
/// byzantine flood of distinct-digest forgeries for one slot is capped
/// here instead of growing the per-slot map without bound.
pub const MAX_SLOT_PROPOSALS: usize = 8;

/// How far above the broker's current view a harvested `NewView` may
/// claim to be. Legitimate view changes advance in small steps (the
/// stall backoff re-broadcasts before escalating), so anything further
/// is an unverifiable forgery that must not displace the real latest
/// `NewView` from the head of the served suffix.
pub const NEW_VIEW_SLACK: u64 = 16;

/// One slot's harvested messages.
#[derive(Debug, Clone, Default)]
struct SuffixSlot {
    /// Proposals keyed by the *recomputed* digest of their batch (never
    /// the digest the message claims), so the commit point can select
    /// the batch that actually committed.
    pre_prepares: BTreeMap<Digest, ConsensusMessage>,
    /// Commit votes by sender, pruned to the committed digest once the
    /// slot commits.
    commits: BTreeMap<ReplicaId, ConsensusMessage>,
    /// Set (with the committed digest) when Execution reports the slot
    /// committed; only committed slots are served.
    committed: Option<Digest>,
}

/// A bounded ring of committed slot certificates (proposal + commit
/// votes) retained for peer catch-up. See the module docs.
#[derive(Debug, Clone)]
pub struct SuffixRing {
    slots: BTreeMap<SeqNum, SuffixSlot>,
    /// Highest garbage-collected stable checkpoint; nothing at or below
    /// it is retained or ever re-admitted.
    stable: SeqNum,
    cap: usize,
    /// The highest-view `NewView` observed, retained across GC: a peer
    /// that was down during a view change rejects every message of the
    /// new view until it processes this (self-certifying) message, so
    /// it leads every served suffix.
    latest_new_view: Option<(splitbft_types::View, ConsensusMessage)>,
}

impl SuffixRing {
    /// An empty ring retaining at most `cap` slots.
    pub fn new(cap: usize) -> Self {
        SuffixRing {
            slots: BTreeMap::new(),
            stable: SeqNum(0),
            cap: cap.max(1),
            latest_new_view: None,
        }
    }

    /// Harvests one message flowing through the broker (inbound from
    /// the network or broadcast by a local compartment). Only
    /// `PrePrepare`, `Commit`, and `NewView` are retained; slots at or
    /// below the stable checkpoint or beyond the horizon are refused,
    /// and a `NewView` claiming more than [`NEW_VIEW_SLACK`] above
    /// `current_view` (the broker's Execution-compartment view) is an
    /// unverifiable forgery and ignored.
    ///
    /// Returns the recomputed batch digest when `msg` is a
    /// `PrePrepare` — it is computed here anyway, so the broker can
    /// reuse it instead of hashing the batch a second time.
    pub fn observe(&mut self, msg: &ConsensusMessage, current_view: View) -> Option<Digest> {
        match msg {
            ConsensusMessage::PrePrepare(pp) => {
                let seq = pp.payload.seq;
                let view = pp.payload.view;
                let digest = splitbft_crypto::digest_of(&pp.payload.batch);
                let Some(slot) = self.admit(seq) else { return Some(digest) };
                // Committed slots are frozen: the digest decided.
                if slot.committed.is_some() {
                    return Some(digest);
                }
                // Latest view wins: a slot whose agreement spans a view
                // change gets re-proposed (same batch, same digest) in
                // the new view, and a recovering peer — moved to that
                // view by the NewView leading the suffix — rejects the
                // old-view copy as WrongView. Serving stale views would
                // defeat the log path exactly under primary kills.
                match slot.pre_prepares.get(&digest) {
                    Some(ConsensusMessage::PrePrepare(held))
                        if held.payload.view >= view => {}
                    _ if slot.pre_prepares.len() >= MAX_SLOT_PROPOSALS
                        && !slot.pre_prepares.contains_key(&digest) =>
                    {
                        // Flood guard: keep the candidates already held
                        // rather than let distinct-digest forgeries grow
                        // the slot without bound.
                    }
                    _ => {
                        slot.pre_prepares.insert(digest, msg.clone());
                    }
                }
                Some(digest)
            }
            ConsensusMessage::Commit(c) => {
                let seq = c.payload.seq;
                let view = c.payload.view;
                let voter = c.payload.replica;
                let vote_digest = c.payload.digest;
                let Some(slot) = self.admit(seq) else { return None };
                if slot.committed.is_some_and(|d| d != vote_digest) {
                    return None; // vote for a digest that lost: useless to peers
                }
                // Same latest-view-wins rule per voter.
                match slot.commits.get(&voter) {
                    Some(ConsensusMessage::Commit(held)) if held.payload.view >= view => {}
                    _ => {
                        slot.commits.insert(voter, msg.clone());
                    }
                }
                None
            }
            ConsensusMessage::NewView(nv) => {
                let view = nv.payload.view;
                if view.0 <= current_view.0.saturating_add(NEW_VIEW_SLACK)
                    && self.latest_new_view.as_ref().is_none_or(|(v, _)| view > *v)
                {
                    self.latest_new_view = Some((view, msg.clone()));
                }
                None
            }
            _ => None,
        }
    }

    /// Looks up (or creates, horizon permitting) the slot for `seq`.
    ///
    /// Messages are harvested *before* compartment verification (the
    /// broker is untrusted and cannot verify), so admission is hardened
    /// against byzantine poisoning: only seqs in the **horizon**
    /// `(stable, stable + cap]` are admitted. No legitimate watermark
    /// window reaches beyond it (the compartments' window is smaller
    /// than any sane cap), far-future garbage — which no stable
    /// checkpoint would ever GC — is refused outright, and since every
    /// retained slot lives inside a cap-sized interval the ring is
    /// *structurally* bounded at `cap` slots: junk can at worst occupy
    /// in-horizon seq numbers, which the next stable checkpoint sweeps
    /// away, never crowd out a real slot or outlive GC.
    fn admit(&mut self, seq: SeqNum) -> Option<&mut SuffixSlot> {
        if seq <= self.stable || seq.0 > self.stable.0 + self.cap as u64 {
            return None;
        }
        Some(self.slots.entry(seq).or_default())
    }

    /// Freezes `seq` to its committed `digest` (reported by the
    /// Execution compartment): the matching proposal and votes are
    /// retained, everything else for the slot is dropped.
    pub fn mark_committed(&mut self, seq: SeqNum, digest: Digest) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        slot.committed = Some(digest);
        slot.pre_prepares.retain(|d, _| *d == digest);
        slot.commits.retain(|_, msg| {
            matches!(msg, ConsensusMessage::Commit(c) if c.payload.digest == digest)
        });
    }

    /// Garbage-collects at a stable checkpoint: every slot at or below
    /// `stable` is dropped; **nothing above it ever is** (the property
    /// the ring's tests pin down).
    pub fn gc(&mut self, stable: SeqNum) {
        if stable <= self.stable {
            return;
        }
        self.stable = stable;
        self.slots = self.slots.split_off(&SeqNum(stable.0 + 1));
    }

    /// Most slots served per [`SuffixRing::messages_from`] call. Catch-up
    /// is *chunked*: a deeply lagging peer gets the first window above
    /// its progress, executes it, and its next (guarded) state-request
    /// round carries a higher `have_seq` — incremental transfer instead
    /// of one giant response that drowns the recovering core loop.
    /// Shared with PBFT's catch-up so both protocols pace recovery
    /// identically.
    pub const SERVE_CHUNK_SLOTS: usize = splitbft_pbft::CATCH_UP_CHUNK_SLOTS;

    /// The retained catch-up suffix for a peer whose progress is
    /// `have_seq`: for up to [`Self::SERVE_CHUNK_SLOTS`] *committed*
    /// slots above `max(have_seq, stable)`, the committed proposal
    /// followed by its commit votes, in slot order — led by the latest
    /// retained `NewView`, which a view-stranded peer needs before it
    /// will accept anything else. Slots missing their proposal are
    /// skipped (the peer cannot execute a digest-only slot).
    pub fn messages_from(&self, have_seq: SeqNum) -> Vec<ConsensusMessage> {
        let from = have_seq.max(self.stable);
        let mut msgs = Vec::new();
        if let Some((_, nv)) = &self.latest_new_view {
            msgs.push(nv.clone());
        }
        let mut served = 0usize;
        for (_, slot) in self.slots.range(SeqNum(from.0 + 1)..) {
            if served >= Self::SERVE_CHUNK_SLOTS {
                break;
            }
            let Some(digest) = slot.committed else { continue };
            let Some(pp) = slot.pre_prepares.get(&digest) else { continue };
            msgs.push(pp.clone());
            msgs.extend(slot.commits.values().cloned());
            served += 1;
        }
        msgs
    }

    /// Number of retained slots (committed or still collecting).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no slot is retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The stable checkpoint the ring last GC'd at.
    pub fn stable(&self) -> SeqNum {
        self.stable
    }

    /// `true` if `seq` is retained as a committed certificate (both the
    /// committed proposal and at least one vote are present).
    pub fn holds_committed(&self, seq: SeqNum) -> bool {
        self.slots.get(&seq).is_some_and(|slot| {
            slot.committed
                .is_some_and(|d| slot.pre_prepares.contains_key(&d) && !slot.commits.is_empty())
        })
    }
}

impl Default for SuffixRing {
    fn default() -> Self {
        SuffixRing::new(DEFAULT_SUFFIX_CAP)
    }
}
