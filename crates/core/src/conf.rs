//! The **Confirmation compartment**: confirms that a request was prepared
//! by a quorum (paper §3.2).
//!
//! Event handlers hosted here: (3) prepare-certificate collection →
//! `Commit`, (5) view-change initiation on primary suspicion — co-located
//! with (3) per principle P3 because a `ViewChange` carries the prepare
//! certificates from `in_conf` — plus the duplicated checkpoint handler
//! (9) and the `NewView` checkpoint/view application (7').
//!
//! Per principle P5, this compartment changes state only on a *quorum*:
//! one `PrePrepare` and `2f` matching `Prepare`s, all signed by distinct
//! Preparation enclaves. A single faulty Preparation enclave (even the
//! primary's) cannot make it commit to anything.

use crate::ecall::{CompartmentInput, CompartmentOutput};
use crate::scheme::{enclave_signer, SPLITBFT_SCHEME};
use splitbft_crypto::{KeyPair, KeyRegistry};
use splitbft_pbft::verify::{verify_signed_from, verify_view_change};
use splitbft_pbft::CheckpointTracker;
use splitbft_types::{
    Checkpoint, ClusterConfig, CompartmentKind, Commit, ConsensusMessage, Digest, NewView,
    PrePrepare, Prepare, PrepareCertificate, ProtocolError, ReplicaId, SeqNum, Signed, SignerId,
    View, ViewChange,
};
use std::collections::BTreeMap;

/// One agreement slot as Confirmation sees it. A byzantine primary
/// Preparation enclave may equivocate, so multiple candidate proposals
/// (by digest) are retained; only a quorum of matching prepares elevates
/// one of them.
#[derive(Debug, Default)]
struct ConfSlot {
    /// Candidate proposals by digest (forwarded `PrePrepare`s).
    proposals: BTreeMap<Digest, Signed<PrePrepare>>,
    /// Prepare votes by sender.
    prepares: BTreeMap<ReplicaId, Signed<Prepare>>,
    /// This compartment already emitted its `Commit` for the slot.
    commit_sent: bool,
}

/// The Confirmation compartment state machine.
pub struct ConfirmationCompartment {
    config: ClusterConfig,
    replica: ReplicaId,
    signer: SignerId,
    keypair: KeyPair,
    registry: KeyRegistry,

    /// This compartment's copy of the replicated view variable. Advanced
    /// when *sending* a `ViewChange` (handler 5) and when applying a
    /// `NewView` (7').
    view: View,
    /// The `in_conf` log.
    slots: BTreeMap<SeqNum, ConfSlot>,
    /// Private checkpoint tracker.
    checkpoints: CheckpointTracker,
    /// Prepare certificates formed here, carried into `ViewChange`s.
    prepared_certs: BTreeMap<SeqNum, PrepareCertificate>,
    /// `true` between sending a `ViewChange` for `view` and applying the
    /// matching `NewView`.
    awaiting_new_view: bool,
    /// Consecutive timeouts spent awaiting the same `NewView`. While
    /// below the current [`stall_budget`] the compartment
    /// *re-broadcasts* its current `ViewChange` instead of targeting the
    /// next view — the backoff that stops one fast-ticking replica from
    /// leapfrogging a view ahead of the cluster forever (each hop resets
    /// the others' quorum hunt, so unbounded divergence is a real wedge,
    /// not a theoretical one).
    stalled_timeouts: u32,
    /// Consecutive view hops without applying a `NewView`; exponent of
    /// the [`stall_budget`], mirroring the PBFT baseline's exponential
    /// view-change backoff. Resets when a `NewView` lands.
    view_change_escalations: u32,
    /// Peer `ViewChange` votes by target view — the PBFT *join rule*'s
    /// evidence: once `f + 1` distinct replicas vote for a view above
    /// ours, at least one correct replica timed out, so this
    /// compartment joins that view change instead of walking its own
    /// view up one step per timeout (which can diverge forever when
    /// timeouts interleave across replicas).
    join_votes: BTreeMap<View, std::collections::BTreeSet<ReplicaId>>,
}

/// Distinct future target views tracked for the join rule. Correct
/// replicas advance one view per timeout, so legitimate targets cluster
/// just above the current view; anything further is byzantine noise.
const MAX_JOIN_TARGETS: usize = 16;

/// Re-broadcast budget per escalation, imported from the PBFT baseline
/// so both stacks damp view-change escalation at the same exponential
/// cadence — convergence under interleaved timeouts depends on it.
use splitbft_pbft::stall_budget;

impl ConfirmationCompartment {
    /// Creates the Confirmation enclave logic for `replica`.
    pub fn new(config: ClusterConfig, replica: ReplicaId, master_seed: u64) -> Self {
        let signer = enclave_signer(replica, CompartmentKind::Confirmation);
        let registry =
            KeyRegistry::with_signers(master_seed, crate::scheme::all_enclave_signers(config.n()));
        let keypair = KeyPair::for_signer(master_seed, signer);
        ConfirmationCompartment {
            config,
            replica,
            signer,
            keypair,
            registry,
            view: View::initial(),
            slots: BTreeMap::new(),
            checkpoints: CheckpointTracker::new(),
            prepared_certs: BTreeMap::new(),
            awaiting_new_view: false,
            stalled_timeouts: 0,
            view_change_escalations: 0,
            join_votes: BTreeMap::new(),
        }
    }

    /// This compartment's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Approximate heap usage for EPC accounting.
    pub fn memory_usage(&self) -> usize {
        self.slots.len() * 768 + self.prepared_certs.len() * 1024
    }

    fn in_window(&self, seq: SeqNum) -> bool {
        let low = self.checkpoints.stable_seq();
        seq > low && seq.0 <= low.0 + self.config.window
    }

    /// The single event-handler entry point.
    pub fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        let result = match input {
            CompartmentInput::Message(ConsensusMessage::PrePrepare(pp)) => {
                self.on_pre_prepare(pp)
            }
            CompartmentInput::Message(ConsensusMessage::Prepare(p)) => self.on_prepare(p),
            CompartmentInput::Message(ConsensusMessage::Checkpoint(c)) => self.on_checkpoint(c),
            CompartmentInput::Message(ConsensusMessage::NewView(nv)) => self.on_new_view(nv),
            CompartmentInput::Message(ConsensusMessage::ViewChange(vc)) => {
                self.on_view_change_vote(vc)
            }
            CompartmentInput::ViewTimeout => Ok(self.on_view_timeout()),
            other => Err(ProtocolError::Other(format!("not a Confirmation event: {other:?}"))),
        };
        match result {
            Ok(outputs) => outputs,
            Err(e) => vec![CompartmentOutput::Rejected { reason: e.to_string() }],
        }
    }

    /// The broker forwards every `PrePrepare` here (§3.2: duplicated into
    /// `in_conf`). Only the signature and window are checked — the batch
    /// contents are the Preparation compartment's business; a quorum of
    /// prepares is what gives the digest authority (P5).
    fn on_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let view = pp.payload.view;
        let seq = pp.payload.seq;
        if view != self.view {
            return Err(ProtocolError::WrongView { got: view, current: self.view });
        }
        let primary = view.primary(&self.config);
        verify_signed_from(&self.registry, &pp, (SPLITBFT_SCHEME.proposer)(primary))?;
        if !self.in_window(seq) {
            let low = self.checkpoints.stable_seq();
            return Err(ProtocolError::OutOfWindow {
                seq,
                low,
                high: SeqNum(low.0 + self.config.window),
            });
        }
        let digest = pp.payload.digest;
        self.slots.entry(seq).or_default().proposals.insert(digest, pp);
        Ok(self.maybe_commit(seq))
    }

    /// Handler (3): collect prepares toward the certificate.
    fn on_prepare(&mut self, p: Signed<Prepare>) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let view = p.payload.view;
        let seq = p.payload.seq;
        if view != self.view {
            return Err(ProtocolError::WrongView { got: view, current: self.view });
        }
        // Early drop: once this slot's Commit is out, further prepares are
        // redundant — skip the (expensive) signature verification. This is
        // the optimization that keeps Confirmation ecalls short.
        if self.slots.get(&seq).map_or(false, |s| s.commit_sent) {
            return Ok(Vec::new());
        }
        verify_signed_from(&self.registry, &p, (SPLITBFT_SCHEME.preparer)(p.payload.replica))?;
        if !self.config.contains(p.payload.replica) {
            return Err(ProtocolError::UnknownReplica(p.payload.replica));
        }
        if !self.in_window(seq) {
            let low = self.checkpoints.stable_seq();
            return Err(ProtocolError::OutOfWindow {
                seq,
                low,
                high: SeqNum(low.0 + self.config.window),
            });
        }
        self.slots.entry(seq).or_default().prepares.insert(p.payload.replica, p);
        Ok(self.maybe_commit(seq))
    }

    fn maybe_commit(&mut self, seq: SeqNum) -> Vec<CompartmentOutput> {
        let view = self.view;
        let prepare_quorum = self.config.prepare_quorum();
        let Some(slot) = self.slots.get(&seq) else { return Vec::new() };
        if slot.commit_sent {
            return Vec::new();
        }
        // Find a proposal whose digest gathered 2f matching prepares from
        // distinct non-primary Preparation enclaves.
        let primary = view.primary(&self.config);
        let mut chosen: Option<(Digest, PrepareCertificate)> = None;
        for (digest, pp) in &slot.proposals {
            if pp.payload.view != view {
                continue;
            }
            let matching: Vec<_> = slot
                .prepares
                .values()
                .filter(|p| {
                    p.payload.view == view
                        && p.payload.digest == *digest
                        && p.payload.replica != primary
                })
                .take(prepare_quorum)
                .cloned()
                .collect();
            if matching.len() >= prepare_quorum {
                chosen = Some((
                    *digest,
                    PrepareCertificate { pre_prepare: pp.clone(), prepares: matching },
                ));
                break;
            }
        }
        let Some((digest, cert)) = chosen else { return Vec::new() };

        self.prepared_certs.insert(seq, cert);
        let slot = self.slots.get_mut(&seq).expect("slot exists");
        slot.commit_sent = true;
        let commit = self
            .keypair
            .sign_payload(Commit { view, seq, digest, replica: self.replica }, self.signer);
        vec![
            CompartmentOutput::Committed { seq, digest },
            CompartmentOutput::Broadcast(ConsensusMessage::Commit(commit)),
        ]
    }

    /// Handler (5): the environment suspects the primary; this
    /// compartment emits the `ViewChange` and advances its view, after
    /// which it "will no longer process Prepares or send commits in the
    /// old view" (§4).
    fn on_view_timeout(&mut self) -> Vec<CompartmentOutput> {
        if self.awaiting_new_view {
            if self.stalled_timeouts < stall_budget(self.view_change_escalations) {
                // Still waiting for the NewView of the current target:
                // re-broadcast the vote (the target's primary may have
                // missed it — or restarted without it) instead of
                // hopping to yet another view.
                self.stalled_timeouts += 1;
                let signed = self.signed_view_change(self.view);
                return vec![CompartmentOutput::Broadcast(ConsensusMessage::ViewChange(signed))];
            }
            // Budget exhausted: escalate with a doubled budget for the
            // next hop (exponential backoff, as in the PBFT baseline).
            self.view_change_escalations = self.view_change_escalations.saturating_add(1);
        }
        self.start_view_change(self.view.next())
    }

    /// This compartment's `ViewChange` for `target`, freshly signed.
    fn signed_view_change(&self, target: View) -> Signed<ViewChange> {
        let vc = ViewChange {
            new_view: target,
            stable_seq: self.checkpoints.stable_seq(),
            checkpoint_proof: self.checkpoints.stable_proof().clone(),
            prepared: self
                .prepared_certs
                .range(SeqNum(self.checkpoints.stable_seq().0 + 1)..)
                .map(|(_, c)| c.clone())
                .collect(),
            replica: self.replica,
        };
        self.keypair.sign_payload(vc, self.signer)
    }

    /// The join rule (handler 5'): a peer Confirmation enclave's
    /// `ViewChange` vote. Once `f + 1` distinct replicas vote for a view
    /// above ours, at least one correct replica suspects the primary —
    /// join their view change instead of waiting for our own timeout
    /// (whose `view + 1` target may never match theirs).
    fn on_view_change_vote(
        &mut self,
        vc: Signed<ViewChange>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        verify_view_change(&self.registry, &vc, &self.config, &SPLITBFT_SCHEME)?;
        let target = vc.payload.new_view;
        if target <= self.view {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        self.join_votes.entry(target).or_default().insert(vc.payload.replica);
        while self.join_votes.len() > MAX_JOIN_TARGETS {
            self.join_votes.pop_last();
        }
        // Join the *smallest* sufficiently-supported future view.
        let joinable = self
            .join_votes
            .iter()
            .find(|(view, votes)| **view > self.view && votes.len() > self.config.f())
            .map(|(view, _)| *view);
        match joinable {
            Some(target) => Ok(self.start_view_change(target)),
            None => Ok(Vec::new()),
        }
    }

    /// Emits this compartment's `ViewChange` for `target` and enters it
    /// (handler 5 proper — "will no longer process Prepares or send
    /// commits in the old view", §4).
    fn start_view_change(&mut self, target: View) -> Vec<CompartmentOutput> {
        let signed = self.signed_view_change(target);
        self.view = target;
        self.awaiting_new_view = true;
        self.stalled_timeouts = 0;
        self.join_votes = self.join_votes.split_off(&target.next());
        // Old-view agreement state is void in the new view.
        for slot in self.slots.values_mut() {
            slot.commit_sent = false;
        }
        vec![
            CompartmentOutput::EnteredView(target),
            CompartmentOutput::Broadcast(ConsensusMessage::ViewChange(signed)),
        ]
    }

    /// Handler (7'): Confirmation applies only the checkpoint and the
    /// view from a `NewView` — it does *not* re-validate the re-issued
    /// `PrePrepare`s (§4); their digests have no authority here until 2f
    /// prepares confirm them.
    fn on_new_view(
        &mut self,
        nv: Signed<NewView>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let target = nv.payload.view;
        if target < self.view || (target == self.view && !self.awaiting_new_view) {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        let primary = target.primary(&self.config);
        verify_signed_from(&self.registry, &nv, (SPLITBFT_SCHEME.proposer)(primary))?;

        // Quorum of authentic view-change votes (outer signatures only).
        let mut voters = std::collections::BTreeSet::new();
        for vc in &nv.payload.view_changes {
            if vc.payload.new_view != target {
                continue;
            }
            if verify_signed_from(
                &self.registry,
                vc,
                (SPLITBFT_SCHEME.confirmer)(vc.payload.replica),
            )
            .is_ok()
            {
                voters.insert(vc.payload.replica);
            }
        }
        if voters.len() < self.config.quorum() {
            return Err(ProtocolError::BadCertificate { kind: "NewView view-change quorum" });
        }

        // Validate and apply the checkpoint.
        if let Some(ckpt) = nv.payload.max_checkpoint() {
            splitbft_pbft::verify::verify_checkpoint_certificate(
                &self.registry,
                ckpt,
                &self.config,
                &SPLITBFT_SCHEME,
            )?;
            if self.checkpoints.install_certificate(ckpt.clone()) {
                let stable = self.checkpoints.stable_seq();
                self.slots = self.slots.split_off(&SeqNum(stable.0 + 1));
                self.prepared_certs = self.prepared_certs.split_off(&SeqNum(stable.0 + 1));
            }
        }

        self.view = target;
        self.awaiting_new_view = false;
        self.stalled_timeouts = 0;
        self.view_change_escalations = 0;
        self.join_votes = self.join_votes.split_off(&target.next());
        // Fresh view: old candidate proposals and votes are view-bound
        // and dead; drop them, then adopt the re-issued proposals.
        self.slots.clear();
        for pp in nv.payload.pre_prepares {
            if pp.payload.view == target && self.in_window(pp.payload.seq) {
                self.slots
                    .entry(pp.payload.seq)
                    .or_default()
                    .proposals
                    .insert(pp.payload.digest, pp);
            }
        }
        Ok(vec![CompartmentOutput::EnteredView(target)])
    }

    /// Duplicated handler (9).
    fn on_checkpoint(
        &mut self,
        c: Signed<Checkpoint>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        verify_signed_from(&self.registry, &c, (SPLITBFT_SCHEME.executor)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        let mut outputs = Vec::new();
        if let Some(cert) = self.checkpoints.insert(c, &self.config) {
            let seq = cert.seq();
            self.slots = self.slots.split_off(&SeqNum(seq.0 + 1));
            self.prepared_certs = self.prepared_certs.split_off(&SeqNum(seq.0 + 1));
            outputs.push(CompartmentOutput::StableCheckpoint { seq });
        }
        Ok(outputs)
    }
}

impl std::fmt::Debug for ConfirmationCompartment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConfirmationCompartment")
            .field("replica", &self.replica)
            .field("view", &self.view)
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}
