//! The SplitBFT client: attestation, session-key installation, encrypted
//! requests, and reply-quorum collection.
//!
//! Paper §4, step 1: "the client first attests to the execution and
//! preparation enclave verifying their genuineness and SGX support. When
//! the attestation is successful, the client provides the execution
//! enclave with a session key to encrypt requests and preserve their
//! confidentiality from the untrusted environment and the rest of the
//! enclaves. The encrypted requests are then signed for authentication."

use crate::exec::{REPLY_AAD, REQ_AAD};
use crate::scheme::compartment_measurement;
use bytes::Bytes;
use splitbft_crypto::aead::{open, seal, AeadKey};
use splitbft_crypto::sig::{dh_public, dh_shared};
use splitbft_crypto::{client_mac_key, digest_bytes, MacKey};
use splitbft_tee::attest::{AttestationError, PlatformAuthority, Quote};
use splitbft_types::wire::Encode;
use splitbft_types::{
    ClientId, ClusterConfig, CompartmentKind, PublicKey, ReplicaId, Reply, Request, RequestId,
    Timestamp,
};
use std::collections::BTreeMap;

/// Wrapping nonce for session-key installation (must match the Execution
/// compartment).
const WRAP_NONCE: u64 = 0;

/// Outcome of delivering a reply to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitClientEvent {
    /// Waiting for more matching replies.
    Pending,
    /// The operation completed with this (decrypted) result.
    Completed(Bytes),
    /// The reply was ignored.
    Ignored,
}

/// A confidential SplitBFT client.
#[derive(Debug)]
pub struct SplitBftClient {
    id: ClientId,
    config: ClusterConfig,
    mac: MacKey,
    session_key_bytes: [u8; 32],
    session: AeadKey,
    dh_secret: u64,
    /// When `false`, requests are sent in plaintext (the non-confidential
    /// deployment used for like-for-like performance comparison).
    encrypt: bool,
    next_timestamp: Timestamp,
    in_flight: Option<(RequestId, BTreeMap<ReplicaId, Bytes>)>,
}

impl SplitBftClient {
    /// Creates client `id`. `client_seed` seeds the client's session key
    /// and DH secret (distinct from the cluster `master_seed`, which only
    /// provides the shared request-MAC key).
    pub fn new(config: ClusterConfig, id: ClientId, master_seed: u64, client_seed: u64) -> Self {
        let session_key_bytes =
            digest_bytes(&[b"session".as_slice(), &client_seed.to_le_bytes(), &id.0.to_le_bytes()].concat()).0;
        let dh_digest =
            digest_bytes(&[b"client-dh".as_slice(), &client_seed.to_le_bytes()].concat());
        let dh_secret = u64::from_le_bytes(dh_digest.0[..8].try_into().expect("8 bytes"));
        SplitBftClient {
            id,
            config,
            mac: client_mac_key(master_seed, id),
            session: AeadKey::new(&session_key_bytes),
            session_key_bytes,
            dh_secret,
            encrypt: true,
            next_timestamp: Timestamp(1),
            in_flight: None,
        }
    }

    /// Disables request encryption (plaintext mode, used by performance
    /// comparisons where the baseline has no confidentiality either).
    #[must_use]
    pub fn with_plaintext(mut self) -> Self {
        self.encrypt = false;
        self
    }

    /// Resumes this client identity at `timestamp`. Replicas suppress
    /// duplicates by each client's last-seen timestamp, so a *new
    /// session* of a previously-used client id must start above every
    /// timestamp it ever issued — deployed clients use wall-clock time.
    pub fn starting_at(mut self, timestamp: Timestamp) -> Self {
        self.next_timestamp = timestamp;
        self
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// `true` if a request is outstanding.
    pub fn has_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Verifies an Execution enclave's attestation quote and produces the
    /// session-key installation message for that replica: the client's DH
    /// public value and the session key wrapped under the DH shared
    /// secret.
    ///
    /// # Errors
    ///
    /// [`AttestationError`] if the quote is forged or attests the wrong
    /// enclave code.
    pub fn attest_execution_enclave(
        &self,
        authority_key: &PublicKey,
        quote: &Quote,
    ) -> Result<(u64, Vec<u8>), AttestationError> {
        let expected = compartment_measurement(CompartmentKind::Execution);
        PlatformAuthority::verify(authority_key, &expected, quote)?;
        let enclave_dh = u64::from_le_bytes(
            quote.report_data.get(..8).and_then(|s| s.try_into().ok()).ok_or(
                AttestationError::BadSignature,
            )?,
        );
        let shared = dh_shared(self.dh_secret, enclave_dh);
        let wrap_key = AeadKey::new(&digest_bytes(&shared.to_le_bytes()).0);
        let mut aad = b"session-key:".to_vec();
        self.id.encode(&mut aad);
        let wrapped = seal(&wrap_key, WRAP_NONCE, &aad, &self.session_key_bytes);
        Ok((dh_public(self.dh_secret), wrapped))
    }

    /// Issues the next request; the operation is encrypted under the
    /// session key unless plaintext mode is enabled.
    ///
    /// # Panics
    ///
    /// Panics if a request is already in flight (closed-loop contract).
    pub fn issue(&mut self, op: &[u8]) -> Request {
        assert!(self.in_flight.is_none(), "client already has a request in flight");
        let id = RequestId { client: self.id, timestamp: self.next_timestamp };
        self.next_timestamp = self.next_timestamp.next();
        let (payload, encrypted) = if self.encrypt {
            (Bytes::from(seal(&self.session, id.timestamp.0, REQ_AAD, op)), true)
        } else {
            (Bytes::copy_from_slice(op), false)
        };
        let auth = self.mac.tag(&Request::auth_bytes(id, &payload, encrypted));
        self.in_flight = Some((id, BTreeMap::new()));
        Request { id, op: payload, encrypted, auth }
    }

    /// Delivers one replica reply; completes on `f + 1` matching results
    /// (decrypting them if the request was confidential).
    pub fn on_reply(&mut self, reply: &Reply) -> SplitClientEvent {
        let Some((request, replies)) = self.in_flight.as_mut() else {
            return SplitClientEvent::Ignored;
        };
        if reply.request != *request {
            return SplitClientEvent::Ignored;
        }
        let expected = self.mac.tag(&Reply::auth_bytes(
            reply.view,
            reply.request,
            reply.replica,
            &reply.result,
            reply.encrypted,
        ));
        if !splitbft_crypto::hmac::ct_eq(&expected, &reply.auth) {
            return SplitClientEvent::Ignored;
        }
        replies.insert(reply.replica, reply.result.clone());

        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in replies.values() {
            *counts.entry(result.as_ref()).or_insert(0) += 1;
        }
        let quorum = self.config.reply_quorum();
        let Some((&winner, _)) = counts.iter().find(|(_, &n)| n >= quorum) else {
            return SplitClientEvent::Pending;
        };
        let timestamp = request.timestamp.0;
        let winner = winner.to_vec();
        self.in_flight = None;

        if reply.encrypted || self.encrypt {
            match open(&self.session, timestamp, REPLY_AAD, &winner) {
                Ok(plain) => SplitClientEvent::Completed(Bytes::from(plain)),
                // A quorum agreed on a result the client cannot decrypt:
                // this happens when the request was executed as a no-op
                // (e.g. before the session key was installed) — surface
                // the raw bytes.
                Err(_) => SplitClientEvent::Completed(Bytes::from(winner)),
            }
        } else {
            SplitClientEvent::Completed(Bytes::from(winner))
        }
    }

    /// Abandons the in-flight request (client-side timeout path).
    pub fn abort_in_flight(&mut self) {
        self.in_flight = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaintext_mode_issues_plain_requests() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut c = SplitBftClient::new(cfg, ClientId(0), 1, 2).with_plaintext();
        let req = c.issue(b"op-bytes");
        assert!(!req.encrypted);
        assert_eq!(&req.op[..], b"op-bytes");
    }

    #[test]
    fn encrypted_mode_hides_the_operation() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut c = SplitBftClient::new(cfg, ClientId(0), 1, 2);
        let req = c.issue(b"secret-operation");
        assert!(req.encrypted);
        assert_ne!(&req.op[..], b"secret-operation");
        assert!(!req
            .op
            .windows(b"secret".len())
            .any(|w| w == b"secret"), "plaintext leaked into ciphertext");
    }

    #[test]
    fn forged_quote_rejected() {
        let cfg = ClusterConfig::new(4).unwrap();
        let c = SplitBftClient::new(cfg, ClientId(0), 1, 2);
        let real = PlatformAuthority::from_seed(9);
        let fake = PlatformAuthority::from_seed(10);
        let quote = fake.quote(
            compartment_measurement(CompartmentKind::Execution),
            7u64.to_le_bytes().to_vec(),
        );
        assert!(c.attest_execution_enclave(&real.public_key(), &quote).is_err());
    }

    #[test]
    fn quote_for_wrong_compartment_rejected() {
        // A compromised broker presents a (genuine) quote of the
        // *Preparation* enclave hoping the client installs its session
        // key somewhere it can be read. The measurement check stops it.
        let cfg = ClusterConfig::new(4).unwrap();
        let c = SplitBftClient::new(cfg, ClientId(0), 1, 2);
        let authority = PlatformAuthority::from_seed(9);
        let quote = authority.quote(
            compartment_measurement(CompartmentKind::Preparation),
            7u64.to_le_bytes().to_vec(),
        );
        assert_eq!(
            c.attest_execution_enclave(&authority.public_key(), &quote),
            Err(AttestationError::WrongMeasurement)
        );
    }
}
