//! The **Preparation compartment**: receives client requests and
//! initializes their order distribution (paper §3.2).
//!
//! Event handlers hosted here (paper Figure 2): (1) request batch →
//! `PrePrepare` (primary), (2) `PrePrepare` → `Prepare` (backups),
//! (6)/(7) `NewView` send/receive — co-located with (1)/(2) per principle
//! P4 because re-issuing `PrePrepare`s repeats the proposal logic — and
//! the duplicated checkpoint handler (9)/(7').
//!
//! Safety-critical state owned: the `in_prep` log of accepted proposals
//! (amnesia protection), the compartment's replicated `view` variable,
//! and the primary's sequence counter.

use crate::ecall::{CompartmentInput, CompartmentOutput};
use crate::scheme::{enclave_signer, SPLITBFT_SCHEME};
use splitbft_crypto::{client_mac_key, digest_of, KeyPair, KeyRegistry};
use splitbft_pbft::verify::{verify_signed_from, verify_view_change};
use splitbft_pbft::viewchange::{plan_new_view, validate_new_view};
use splitbft_pbft::{CheckpointTracker, MessageLog, ViewChangeTracker};
use splitbft_types::{
    Checkpoint, ClusterConfig, CompartmentKind, ConsensusMessage, NewView, PrePrepare, Prepare,
    ProtocolError, ReplicaId, Request, RequestBatch, SeqNum, Signed, SignerId, View, ViewChange,
};

/// The Preparation compartment state machine (one per replica, hosted in
/// its own enclave).
pub struct PreparationCompartment {
    config: ClusterConfig,
    replica: ReplicaId,
    signer: SignerId,
    keypair: KeyPair,
    registry: KeyRegistry,
    auth_seed: u64,

    /// This compartment's copy of the replicated view variable.
    view: View,
    /// The `in_prep` message log: accepted proposals, windowed.
    in_prep: MessageLog,
    /// Private checkpoint tracker (duplicated handler 9).
    checkpoints: CheckpointTracker,
    /// View-change votes (this compartment validates them and, as the new
    /// primary, emits the `NewView`).
    view_changes: ViewChangeTracker,
    /// Primary-only: last assigned sequence number.
    next_seq: SeqNum,
}

impl PreparationCompartment {
    /// Creates the Preparation enclave logic for `replica`.
    pub fn new(config: ClusterConfig, replica: ReplicaId, master_seed: u64) -> Self {
        let signer = enclave_signer(replica, CompartmentKind::Preparation);
        let registry =
            KeyRegistry::with_signers(master_seed, crate::scheme::all_enclave_signers(config.n()));
        let keypair = KeyPair::for_signer(master_seed, signer);
        let in_prep = MessageLog::new(&config);
        PreparationCompartment {
            config,
            replica,
            signer,
            keypair,
            registry,
            auth_seed: master_seed,
            view: View::initial(),
            in_prep,
            checkpoints: CheckpointTracker::new(),
            view_changes: ViewChangeTracker::new(),
            next_seq: SeqNum::zero(),
        }
    }

    /// This compartment's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// `true` if this replica is the primary of the compartment's view.
    pub fn is_primary(&self) -> bool {
        self.view.primary(&self.config) == self.replica
    }

    /// Approximate heap usage for EPC accounting.
    pub fn memory_usage(&self) -> usize {
        self.in_prep.len() * 512 + self.view_changes.len() * 1024
    }

    /// The single event-handler entry point (P2: handlers run to
    /// completion inside one compartment).
    pub fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        let result = match input {
            CompartmentInput::ClientBatch(requests) => Ok(self.on_client_batch(requests)),
            CompartmentInput::Message(ConsensusMessage::PrePrepare(pp)) => {
                self.on_pre_prepare(pp)
            }
            CompartmentInput::Message(ConsensusMessage::Checkpoint(c)) => self.on_checkpoint(c),
            CompartmentInput::Message(ConsensusMessage::ViewChange(vc)) => {
                self.on_view_change(vc)
            }
            CompartmentInput::Message(ConsensusMessage::NewView(nv)) => self.on_new_view(nv),
            // Prepares, Commits, timeouts, key installs are not this
            // compartment's events; a correct broker never routes them
            // here, so receiving one is evidence of a faulty environment.
            other => Err(ProtocolError::Other(format!("not a Preparation event: {other:?}"))),
        };
        match result {
            Ok(outputs) => outputs,
            Err(e) => vec![CompartmentOutput::Rejected { reason: e.to_string() }],
        }
    }

    fn verify_request(&self, req: &Request) -> bool {
        let key = client_mac_key(self.auth_seed, req.client());
        key.verify(&Request::auth_bytes(req.id, &req.op, req.encrypted), &req.auth)
    }

    /// Authenticates a whole proposed batch with one constant-time
    /// digest comparison ([`splitbft_crypto::verify_tag_batch`]); any
    /// failing member rejects the batch, so per-request verdicts are
    /// unnecessary on this path.
    fn verify_request_batch(&self, requests: &[Request]) -> bool {
        splitbft_crypto::verify_tag_batch(requests.iter().map(|req| {
            let key = client_mac_key(self.auth_seed, req.client());
            (key.tag(&Request::auth_bytes(req.id, &req.op, req.encrypted)), req.auth)
        }))
    }

    /// Handler (1): the primary orders a batch.
    fn on_client_batch(&mut self, requests: Vec<Request>) -> Vec<CompartmentOutput> {
        if !self.is_primary() {
            return Vec::new();
        }
        let fresh: Vec<Request> =
            requests.into_iter().filter(|r| self.verify_request(r)).collect();
        if fresh.is_empty() {
            return Vec::new();
        }
        let seq = self.next_seq.next();
        if !self.in_prep.in_window(seq) {
            return vec![CompartmentOutput::Rejected {
                reason: "watermark window exhausted; awaiting checkpoint".into(),
            }];
        }
        self.next_seq = seq;
        let batch = RequestBatch::new(fresh);
        let digest = digest_of(&batch);
        let pp = self
            .keypair
            .sign_payload(PrePrepare { view: self.view, seq, digest, batch }, self.signer);
        self.in_prep.insert_pre_prepare(pp.clone()).expect("fresh slot");
        vec![CompartmentOutput::Broadcast(ConsensusMessage::PrePrepare(pp))]
    }

    /// Handler (2): a backup validates the proposal and votes `Prepare`.
    fn on_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let view = pp.payload.view;
        let seq = pp.payload.seq;
        if view != self.view {
            return Err(ProtocolError::WrongView { got: view, current: self.view });
        }
        let primary = view.primary(&self.config);
        verify_signed_from(&self.registry, &pp, (SPLITBFT_SCHEME.proposer)(primary))?;
        self.in_prep.check_window(seq)?;
        if digest_of(&pp.payload.batch) != pp.payload.digest {
            return Err(ProtocolError::BadCertificate { kind: "pre-prepare digest" });
        }
        if !self.verify_request_batch(&pp.payload.batch.requests) {
            return Err(ProtocolError::BadAuthenticator { kind: "request in batch" });
        }
        self.accept_pre_prepare(pp)
    }

    fn accept_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let view = pp.payload.view;
        let seq = pp.payload.seq;
        let digest = pp.payload.digest;
        self.in_prep.insert_pre_prepare(pp)?;
        let mut outputs = Vec::new();
        if view.primary(&self.config) != self.replica
            && !self.in_prep.slot(seq).map_or(false, |s| s.prepare_sent)
        {
            let prepare = self
                .keypair
                .sign_payload(Prepare { view, seq, digest, replica: self.replica }, self.signer);
            self.in_prep.slot_mut(seq).prepare_sent = true;
            outputs.push(CompartmentOutput::Broadcast(ConsensusMessage::Prepare(prepare)));
        }
        Ok(outputs)
    }

    /// Duplicated handler (9): collect checkpoints, garbage-collect the
    /// private log.
    fn on_checkpoint(
        &mut self,
        c: Signed<Checkpoint>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        verify_signed_from(&self.registry, &c, (SPLITBFT_SCHEME.executor)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        let mut outputs = Vec::new();
        if let Some(cert) = self.checkpoints.insert(c, &self.config) {
            let seq = cert.seq();
            self.in_prep.collect_garbage(seq);
            if self.next_seq < seq {
                self.next_seq = seq;
            }
            outputs.push(CompartmentOutput::StableCheckpoint { seq });
        }
        Ok(outputs)
    }

    /// Handler (6): validate view changes; as the new primary, emit the
    /// `NewView`.
    fn on_view_change(
        &mut self,
        vc: Signed<ViewChange>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        verify_view_change(&self.registry, &vc, &self.config, &SPLITBFT_SCHEME)?;
        let target = vc.payload.new_view;
        if target <= self.view {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        self.view_changes.insert(vc);
        if target.primary(&self.config) != self.replica {
            return Ok(Vec::new());
        }
        let Some(quorum) = self.view_changes.quorum(target, &self.config) else {
            return Ok(Vec::new());
        };
        let plan = plan_new_view(target, &quorum);
        let pre_prepares: Vec<Signed<PrePrepare>> = plan
            .pre_prepares
            .iter()
            .cloned()
            .map(|pp| self.keypair.sign_payload(pp, self.signer))
            .collect();
        let nv = NewView { view: target, view_changes: quorum, pre_prepares: pre_prepares.clone() };
        let signed_nv = self.keypair.sign_payload(nv, self.signer);

        let mut outputs =
            vec![CompartmentOutput::Broadcast(ConsensusMessage::NewView(signed_nv))];
        outputs.extend(self.enter_view(target, plan.checkpoint.seq()));
        if self.checkpoints.stable_proof().seq() < plan.checkpoint.seq() {
            self.checkpoints.install_certificate(plan.checkpoint.clone());
        }
        for pp in pre_prepares {
            if self.in_prep.in_window(pp.payload.seq) {
                let _ = self.in_prep.insert_pre_prepare(pp);
            }
        }
        self.next_seq = SeqNum(plan.max_s.0.max(self.next_seq.0));
        Ok(outputs)
    }

    /// Handler (7): full validation of the `NewView` — this compartment
    /// *re-runs the planning logic* (§4), unlike Confirmation/Execution.
    fn on_new_view(
        &mut self,
        nv: Signed<NewView>,
    ) -> Result<Vec<CompartmentOutput>, ProtocolError> {
        let target = nv.payload.view;
        if target <= self.view {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        let primary = target.primary(&self.config);
        verify_signed_from(&self.registry, &nv, (SPLITBFT_SCHEME.proposer)(primary))?;
        splitbft_pbft::verify::verify_new_view_contents(
            &self.registry,
            &nv.payload,
            &self.config,
            &SPLITBFT_SCHEME,
        )?;
        let plan = validate_new_view(&nv.payload, &self.config)?;

        let mut outputs = self.enter_view(target, plan.checkpoint.seq());
        if self.checkpoints.stable_proof().seq() < plan.checkpoint.seq() {
            self.checkpoints.install_certificate(plan.checkpoint.clone());
        }
        for pp in nv.payload.pre_prepares {
            if self.in_prep.in_window(pp.payload.seq) {
                if let Ok(more) = self.accept_pre_prepare(pp) {
                    outputs.extend(more);
                }
            }
        }
        Ok(outputs)
    }

    /// Handler (7'): apply the checkpoint baseline and update the view —
    /// duplicated across all compartments.
    fn enter_view(&mut self, view: View, stable: SeqNum) -> Vec<CompartmentOutput> {
        self.in_prep.collect_garbage(stable);
        self.in_prep.clear_above(self.in_prep.low());
        self.view = view;
        self.view_changes.collect_garbage(view);
        vec![CompartmentOutput::EnteredView(view)]
    }
}

impl std::fmt::Debug for PreparationCompartment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparationCompartment")
            .field("replica", &self.replica)
            .field("view", &self.view)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}
