//! The typed ecall/ocall protocol between the untrusted broker and the
//! compartments.
//!
//! Everything crossing the enclave boundary is *serialized* — the paper:
//! "The broker expects the data that it needs to send over the network
//! serialized" — so inputs and outputs have canonical wire encodings, and
//! the host charges copy costs for the real byte counts.

use bytes::Bytes;
use splitbft_types::wire::{Decode, Encode, Reader, WireError};
use splitbft_types::{
    ClientId, ConsensusMessage, Digest, Reply, Request, RequestBatch, RequestId, SeqNum, View,
};

/// The single ecall entry point id used by all compartments.
pub const ECALL_HANDLE: u32 = 1;
/// The single ocall id: one serialized [`CompartmentOutput`] per ocall.
pub const OCALL_OUTPUT: u32 = 1;

/// An event delivered into a compartment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompartmentInput {
    /// A protocol message routed to this compartment by the broker.
    Message(ConsensusMessage),
    /// A batch of client requests (Preparation on the primary).
    ClientBatch(Vec<Request>),
    /// The environment's view-change timer fired (Confirmation).
    ViewTimeout,
    /// A client installs its session key (Execution), wrapped under the
    /// Diffie–Hellman secret established during attestation.
    InstallSessionKey {
        /// The installing client.
        client: ClientId,
        /// The client's DH public value.
        client_dh_public: u64,
        /// The session key, sealed under the DH shared secret.
        wrapped_key: Vec<u8>,
    },
    /// Crash recovery: re-execute a batch whose commit point was WAL'd
    /// before the crash (Execution). Only applied when `seq` is exactly
    /// the next slot; no messages are emitted.
    ReplayCommitted {
        /// The committed slot.
        seq: SeqNum,
        /// The batch recorded at the commit point.
        batch: RequestBatch,
    },
}

impl Encode for CompartmentInput {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CompartmentInput::Message(m) => {
                buf.push(1);
                m.encode(buf);
            }
            CompartmentInput::ClientBatch(reqs) => {
                buf.push(2);
                reqs.encode(buf);
            }
            CompartmentInput::ViewTimeout => buf.push(3),
            CompartmentInput::InstallSessionKey { client, client_dh_public, wrapped_key } => {
                buf.push(4);
                client.encode(buf);
                client_dh_public.encode(buf);
                Bytes::copy_from_slice(wrapped_key).encode(buf);
            }
            CompartmentInput::ReplayCommitted { seq, batch } => {
                buf.push(5);
                seq.encode(buf);
                batch.encode(buf);
            }
        }
    }
}
impl Decode for CompartmentInput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(CompartmentInput::Message(ConsensusMessage::decode(r)?)),
            2 => Ok(CompartmentInput::ClientBatch(Vec::decode(r)?)),
            3 => Ok(CompartmentInput::ViewTimeout),
            4 => Ok(CompartmentInput::InstallSessionKey {
                client: ClientId::decode(r)?,
                client_dh_public: u64::decode(r)?,
                wrapped_key: Bytes::decode(r)?.to_vec(),
            }),
            5 => Ok(CompartmentInput::ReplayCommitted {
                seq: SeqNum::decode(r)?,
                batch: RequestBatch::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag { ty: "CompartmentInput", tag }),
        }
    }
}

/// An effect posted by a compartment through the ocall queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompartmentOutput {
    /// Send to every other replica (the broker handles fan-out and also
    /// loops the message back into this replica's *other* compartments).
    Broadcast(ConsensusMessage),
    /// Deliver an (authenticated, possibly encrypted) reply to a client.
    SendReply {
        /// The destination client.
        to: ClientId,
        /// The reply.
        reply: Reply,
    },
    /// Persist a sealed blob (blockchain blocks) to untrusted storage.
    Persist(Bytes),
    /// Observability: a batch committed at this slot.
    Committed {
        /// The slot.
        seq: SeqNum,
        /// The committed batch digest.
        digest: Digest,
    },
    /// Observability: a request finished executing.
    Executed {
        /// The slot.
        seq: SeqNum,
        /// The request.
        request: RequestId,
    },
    /// Observability: the checkpoint at `seq` became stable here.
    StableCheckpoint {
        /// The stable slot.
        seq: SeqNum,
    },
    /// Observability: this compartment moved to a new view.
    EnteredView(View),
    /// Observability: the input was rejected (normal under byzantine
    /// peers; surfaced for diagnostics and tests).
    Rejected {
        /// A short reason string.
        reason: String,
    },
}

impl Encode for CompartmentOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CompartmentOutput::Broadcast(m) => {
                buf.push(1);
                m.encode(buf);
            }
            CompartmentOutput::SendReply { to, reply } => {
                buf.push(2);
                to.encode(buf);
                reply.encode(buf);
            }
            CompartmentOutput::Persist(b) => {
                buf.push(3);
                b.encode(buf);
            }
            CompartmentOutput::Committed { seq, digest } => {
                buf.push(4);
                seq.encode(buf);
                digest.encode(buf);
            }
            CompartmentOutput::Executed { seq, request } => {
                buf.push(5);
                seq.encode(buf);
                request.encode(buf);
            }
            CompartmentOutput::StableCheckpoint { seq } => {
                buf.push(6);
                seq.encode(buf);
            }
            CompartmentOutput::EnteredView(v) => {
                buf.push(7);
                v.encode(buf);
            }
            CompartmentOutput::Rejected { reason } => {
                buf.push(8);
                reason.encode(buf);
            }
        }
    }
}
impl Decode for CompartmentOutput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(CompartmentOutput::Broadcast(ConsensusMessage::decode(r)?)),
            2 => Ok(CompartmentOutput::SendReply {
                to: ClientId::decode(r)?,
                reply: Reply::decode(r)?,
            }),
            3 => Ok(CompartmentOutput::Persist(Bytes::decode(r)?)),
            4 => Ok(CompartmentOutput::Committed {
                seq: SeqNum::decode(r)?,
                digest: Digest::decode(r)?,
            }),
            5 => Ok(CompartmentOutput::Executed {
                seq: SeqNum::decode(r)?,
                request: RequestId::decode(r)?,
            }),
            6 => Ok(CompartmentOutput::StableCheckpoint { seq: SeqNum::decode(r)? }),
            7 => Ok(CompartmentOutput::EnteredView(View::decode(r)?)),
            8 => Ok(CompartmentOutput::Rejected { reason: String::decode(r)? }),
            tag => Err(WireError::InvalidTag { ty: "CompartmentOutput", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::wire::roundtrip;
    use splitbft_types::{ReplicaId, Signature, Signed, SignerId, Timestamp};

    #[test]
    fn inputs_roundtrip() {
        roundtrip(&CompartmentInput::ViewTimeout);
        roundtrip(&CompartmentInput::ClientBatch(vec![]));
        roundtrip(&CompartmentInput::InstallSessionKey {
            client: ClientId(3),
            client_dh_public: 12345,
            wrapped_key: vec![1, 2, 3],
        });
        roundtrip(&CompartmentInput::ReplayCommitted {
            seq: SeqNum(7),
            batch: RequestBatch::default(),
        });
        let prep = splitbft_types::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            replica: ReplicaId(1),
        };
        roundtrip(&CompartmentInput::Message(ConsensusMessage::Prepare(Signed::new(
            prep,
            SignerId::Replica(ReplicaId(1)),
            Signature::ZERO,
        ))));
    }

    #[test]
    fn outputs_roundtrip() {
        roundtrip(&CompartmentOutput::Persist(Bytes::from_static(b"block")));
        roundtrip(&CompartmentOutput::Committed { seq: SeqNum(4), digest: Digest::ZERO });
        roundtrip(&CompartmentOutput::Executed {
            seq: SeqNum(4),
            request: RequestId { client: ClientId(0), timestamp: Timestamp(9) },
        });
        roundtrip(&CompartmentOutput::StableCheckpoint { seq: SeqNum(128) });
        roundtrip(&CompartmentOutput::EnteredView(View(2)));
        roundtrip(&CompartmentOutput::Rejected { reason: "bad signature".into() });
    }
}
