//! Hosting adapter: [`SplitBftReplica`] (the compartment broker) as a
//! [`Protocol`].
//!
//! The broker is exactly the paper's untrusted host process: it owns
//! batching, timers and network I/O around the three enclaves. This impl
//! lets the whole three-compartment replica drop into any `splitbft-net`
//! runtime, including the TCP socket runtime used by `splitbft-node`.

use crate::replica::{ReplicaEvent, SplitBftReplica};
use splitbft_app::Application;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_types::{
    ConsensusMessage, DurableCheckpoint, DurableEvent, ProtocolError, Request, SeqNum,
};

fn to_outputs(events: Vec<ReplicaEvent>) -> Vec<ProtocolOutput<ConsensusMessage>> {
    events
        .into_iter()
        .filter_map(|event| match event {
            ReplicaEvent::Broadcast(msg) => Some(ProtocolOutput::Broadcast(msg)),
            ReplicaEvent::Reply { to, reply } => Some(ProtocolOutput::Reply { to, reply }),
            // Persistence, compartment telemetry and rejection events
            // have no network footprint.
            _ => None,
        })
        .collect()
}

impl<A: Application + 'static> Protocol for SplitBftReplica<A> {
    type Message = ConsensusMessage;

    fn on_message(&mut self, msg: ConsensusMessage) -> Vec<ProtocolOutput<ConsensusMessage>> {
        to_outputs(self.on_network_message(msg))
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<ProtocolOutput<ConsensusMessage>> {
        to_outputs(self.on_client_batch(requests))
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<ConsensusMessage>> {
        to_outputs(self.on_view_timeout())
    }

    fn progress(&self) -> u64 {
        self.last_executed().0
    }

    fn has_pending_requests(&self) -> bool {
        SplitBftReplica::has_pending_requests(self)
    }

    fn current_view(&self) -> u64 {
        // The preparation compartment leads view changes; the other two
        // follow, so its view is the replica's externally visible one.
        self.views().0 .0
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.enable_durable_events();
        SplitBftReplica::drain_durable_events(self)
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        SplitBftReplica::replay_durable_event(self, event)
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        SplitBftReplica::durable_checkpoint(self)
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        self.restore_durable_checkpoint(cp)
    }

    fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<ConsensusMessage> {
        // The broker's suffix ring: committed proposals + their commit
        // votes, retained above the stable checkpoint even though the
        // compartments themselves discard executed slots. Lagging peers
        // recover from this log path like pbft does, instead of riding
        // the (slow) checkpoint stream.
        SplitBftReplica::catch_up_messages(self, have_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_app::CounterApp;
    use splitbft_tee::{CostModel, ExecMode};
    use splitbft_types::{ClusterConfig, ReplicaId};

    #[test]
    fn broker_hosts_as_protocol() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut replica = SplitBftReplica::new(
            cfg,
            ReplicaId(1),
            42,
            CounterApp::new(),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        );
        // A non-primary replica with no traffic produces no outputs on a
        // timeout-free tick; the point is that the trait object routes.
        let outputs = Protocol::on_timeout(&mut replica);
        let _ = outputs;
    }
}
