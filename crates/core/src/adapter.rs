//! Adapts a compartment state machine to the byte-oriented enclave
//! boundary of `splitbft-tee`.
//!
//! The compartments themselves are pure typed state machines; this
//! adapter gives them the shape of a real enclave: a single ecall entry
//! point taking *serialized* input (the host charges copy costs on the
//! real byte counts) and posting each output as a serialized ocall into
//! the broker's queue — exactly the structure §5 of the paper describes.

use crate::conf::ConfirmationCompartment;
use crate::ecall::{CompartmentInput, CompartmentOutput, ECALL_HANDLE, OCALL_OUTPUT};
use crate::exec::ExecutionCompartment;
use crate::prep::PreparationCompartment;
use crate::scheme::compartment_measurement;
use splitbft_app::Application;
use splitbft_tee::enclave::{Enclave, OcallSink};
use splitbft_types::wire::{decode, encode};
use splitbft_types::CompartmentKind;

/// A compartment state machine that can be loaded into an enclave.
pub trait Compartment: Send {
    /// Which compartment type this is.
    fn kind(&self) -> CompartmentKind;
    /// Handles one event to completion (principle P2).
    fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput>;
    /// Approximate heap usage, for EPC accounting.
    fn memory_usage(&self) -> usize;
}

impl Compartment for PreparationCompartment {
    fn kind(&self) -> CompartmentKind {
        CompartmentKind::Preparation
    }
    fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        PreparationCompartment::handle(self, input)
    }
    fn memory_usage(&self) -> usize {
        PreparationCompartment::memory_usage(self)
    }
}

impl Compartment for ConfirmationCompartment {
    fn kind(&self) -> CompartmentKind {
        CompartmentKind::Confirmation
    }
    fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        ConfirmationCompartment::handle(self, input)
    }
    fn memory_usage(&self) -> usize {
        ConfirmationCompartment::memory_usage(self)
    }
}

impl<A: Application> Compartment for ExecutionCompartment<A> {
    fn kind(&self) -> CompartmentKind {
        CompartmentKind::Execution
    }
    fn handle(&mut self, input: CompartmentInput) -> Vec<CompartmentOutput> {
        ExecutionCompartment::handle(self, input)
    }
    fn memory_usage(&self) -> usize {
        ExecutionCompartment::memory_usage(self)
    }
}

/// Wraps a [`Compartment`] as a TEE [`Enclave`].
#[derive(Debug)]
pub struct EnclaveAdapter<C> {
    inner: C,
}

impl<C: Compartment> EnclaveAdapter<C> {
    /// Loads `compartment` behind the enclave boundary.
    pub fn new(compartment: C) -> Self {
        EnclaveAdapter { inner: compartment }
    }

    /// Read access to the compartment (inspection by tests and invariant
    /// checkers; production traffic goes through ecalls).
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Compartment> Enclave for EnclaveAdapter<C> {
    fn measurement(&self) -> [u8; 32] {
        compartment_measurement(self.inner.kind())
    }

    fn handle_ecall(&mut self, id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
        if id != ECALL_HANDLE {
            return Vec::new();
        }
        // Untrusted input: a malformed event is dropped with a rejection
        // ocall so the broker can account for it; the enclave never
        // panics on garbage.
        let event = match decode::<CompartmentInput>(input) {
            Ok(event) => event,
            Err(e) => {
                let rejected = CompartmentOutput::Rejected { reason: e.to_string() };
                env.ocall(OCALL_OUTPUT, &encode(&rejected));
                return Vec::new();
            }
        };
        for output in self.inner.handle(event) {
            env.ocall(OCALL_OUTPUT, &encode(&output));
        }
        Vec::new()
    }

    fn memory_usage(&self) -> usize {
        self.inner.memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_tee::enclave::OcallQueue;
    use splitbft_types::{ClusterConfig, ReplicaId};

    #[test]
    fn garbage_input_yields_rejection_ocall() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut adapter =
            EnclaveAdapter::new(PreparationCompartment::new(cfg, ReplicaId(0), 1));
        let mut q = OcallQueue::new();
        let out = adapter.handle_ecall(ECALL_HANDLE, b"\xff\xff\xff", &mut q);
        assert!(out.is_empty());
        let calls = q.drain();
        assert_eq!(calls.len(), 1);
        let output: CompartmentOutput = decode(&calls[0].data).unwrap();
        assert!(matches!(output, CompartmentOutput::Rejected { .. }));
    }

    #[test]
    fn unknown_ecall_id_is_ignored() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut adapter =
            EnclaveAdapter::new(ConfirmationCompartment::new(cfg, ReplicaId(0), 1));
        let mut q = OcallQueue::new();
        assert!(adapter.handle_ecall(99, b"", &mut q).is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn measurement_matches_compartment_kind() {
        let cfg = ClusterConfig::new(4).unwrap();
        let prep = EnclaveAdapter::new(PreparationCompartment::new(cfg.clone(), ReplicaId(0), 1));
        let conf = EnclaveAdapter::new(ConfirmationCompartment::new(cfg, ReplicaId(0), 1));
        assert_eq!(prep.measurement(), compartment_measurement(CompartmentKind::Preparation));
        assert_eq!(conf.measurement(), compartment_measurement(CompartmentKind::Confirmation));
        assert_ne!(prep.measurement(), conf.measurement());
    }
}
