//! Key pairs, the cluster-wide public-key registry, and helpers to sign
//! and verify [`Signed`] protocol messages.
//!
//! The paper assumes "each enclave has a public and private key pair and
//! that private keys of correct enclaves cannot be derived by either the
//! environment or other enclaves on the same replica", with all public keys
//! known to all participants. [`KeyRegistry`] models that public knowledge;
//! secret keys live inside the enclaves (see `splitbft-tee`).

use crate::sig::{SecretKey, SigPublicKey};
use splitbft_types::message::MessagePayload;
use splitbft_types::{ProtocolError, PublicKey, Signature, Signed, SignerId};
use std::collections::HashMap;

/// A signing key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: SigPublicKey,
}

impl KeyPair {
    /// Deterministically derives a key pair from a seed (the simulated
    /// provisioning step).
    pub fn from_seed(seed: u64) -> Self {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public();
        KeyPair { secret, public }
    }

    /// Derives the canonical key pair for a signer identity under a
    /// cluster master seed. All test and simulation deployments use this
    /// so that every party can compute everyone's *public* key while
    /// secret keys stay with their owner.
    pub fn for_signer(master_seed: u64, signer: SignerId) -> Self {
        let mut buf = vec![];
        use splitbft_types::wire::Encode;
        signer.encode(&mut buf);
        let mut acc = master_seed;
        for b in buf {
            acc = acc.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        KeyPair::from_seed(acc)
    }

    /// This pair's public key in wire form.
    pub fn public_key(&self) -> PublicKey {
        self.public.to_wire()
    }

    /// Signs raw bytes.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.secret.sign(msg)
    }

    /// Verifies raw bytes against a wire-form public key.
    #[must_use]
    pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        match SigPublicKey::from_wire(pk) {
            Some(p) => p.verify(msg, sig),
            None => false,
        }
    }

    /// Signs a protocol payload, producing a [`Signed`] envelope attributed
    /// to `signer`.
    pub fn sign_payload<T: MessagePayload>(&self, payload: T, signer: SignerId) -> Signed<T> {
        let bytes = Signed::signing_bytes(&payload);
        let signature = self.sign(&bytes);
        Signed::new(payload, signer, signature)
    }
}

/// Derives the MAC key shared between one client and the replicas (in
/// SplitBFT: the Execution compartments). In the paper this key is
/// installed during attestation; simulated deployments derive it from the
/// cluster master seed so that both sides can compute it.
pub fn client_mac_key(master_seed: u64, client: splitbft_types::ClientId) -> crate::hmac::MacKey {
    let mut context = b"client-mac:".to_vec();
    context.extend_from_slice(&client.0.to_le_bytes());
    crate::hmac::MacKey::derive(&master_seed.to_le_bytes(), &context)
}

/// The cluster-wide registry of public keys, indexed by signer identity.
///
/// Every replica, enclave, and client registers its public key here at
/// provisioning time; verification then needs only the registry.
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    keys: HashMap<SignerId, PublicKey>,
}

impl KeyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `signer`'s public key.
    pub fn register(&mut self, signer: SignerId, key: PublicKey) {
        self.keys.insert(signer, key);
    }

    /// Looks up a signer's public key.
    pub fn get(&self, signer: SignerId) -> Option<&PublicKey> {
        self.keys.get(&signer)
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verifies a signed protocol message against the signer's registered
    /// key.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadAuthenticator`] if the signer is unknown or the
    /// signature does not verify.
    pub fn verify_signed<T: MessagePayload>(
        &self,
        msg: &Signed<T>,
    ) -> Result<(), ProtocolError> {
        let pk = self
            .get(msg.signer)
            .ok_or(ProtocolError::BadAuthenticator { kind: std::any::type_name::<T>() })?;
        let bytes = Signed::signing_bytes(&msg.payload);
        if KeyPair::verify(pk, &bytes, &msg.signature) {
            Ok(())
        } else {
            Err(ProtocolError::BadAuthenticator { kind: std::any::type_name::<T>() })
        }
    }

    /// Builds the canonical registry for a deployment: registers the given
    /// signers' deterministic keys under `master_seed`.
    pub fn with_signers(master_seed: u64, signers: impl IntoIterator<Item = SignerId>) -> Self {
        let mut reg = KeyRegistry::new();
        for signer in signers {
            let kp = KeyPair::for_signer(master_seed, signer);
            reg.register(signer, kp.public_key());
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::{Digest, Prepare, ReplicaId, SeqNum, View};

    fn prepare(replica: u32) -> Prepare {
        Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::from_bytes([1u8; 32]),
            replica: ReplicaId(replica),
        }
    }

    #[test]
    fn sign_and_verify_payload_through_registry() {
        let signer = SignerId::Replica(ReplicaId(1));
        let kp = KeyPair::for_signer(99, signer);
        let mut reg = KeyRegistry::new();
        reg.register(signer, kp.public_key());

        let signed = kp.sign_payload(prepare(1), signer);
        assert!(reg.verify_signed(&signed).is_ok());
    }

    #[test]
    fn registry_rejects_unknown_signer() {
        let signer = SignerId::Replica(ReplicaId(1));
        let kp = KeyPair::for_signer(99, signer);
        let reg = KeyRegistry::new();
        let signed = kp.sign_payload(prepare(1), signer);
        assert!(matches!(
            reg.verify_signed(&signed),
            Err(ProtocolError::BadAuthenticator { .. })
        ));
    }

    #[test]
    fn registry_rejects_forged_payload() {
        let signer = SignerId::Replica(ReplicaId(1));
        let kp = KeyPair::for_signer(99, signer);
        let mut reg = KeyRegistry::new();
        reg.register(signer, kp.public_key());

        let mut signed = kp.sign_payload(prepare(1), signer);
        signed.payload.seq = SeqNum(2); // tamper after signing
        assert!(reg.verify_signed(&signed).is_err());
    }

    #[test]
    fn registry_rejects_identity_swap() {
        let alice = SignerId::Replica(ReplicaId(1));
        let mallory = SignerId::Replica(ReplicaId(2));
        let kp_alice = KeyPair::for_signer(99, alice);
        let kp_mallory = KeyPair::for_signer(99, mallory);
        let mut reg = KeyRegistry::new();
        reg.register(alice, kp_alice.public_key());
        reg.register(mallory, kp_mallory.public_key());

        // Mallory signs but claims to be Alice.
        let mut signed = kp_mallory.sign_payload(prepare(1), mallory);
        signed.signer = alice;
        assert!(reg.verify_signed(&signed).is_err());
    }

    #[test]
    fn with_signers_builds_matching_keys() {
        let signers: Vec<SignerId> =
            (0..4).map(|i| SignerId::Replica(ReplicaId(i))).collect();
        let reg = KeyRegistry::with_signers(7, signers.clone());
        assert_eq!(reg.len(), 4);
        for s in signers {
            let kp = KeyPair::for_signer(7, s);
            assert_eq!(reg.get(s), Some(&kp.public_key()));
        }
    }

    #[test]
    fn different_signers_get_different_keys() {
        let a = KeyPair::for_signer(7, SignerId::Replica(ReplicaId(0)));
        let b = KeyPair::for_signer(7, SignerId::Replica(ReplicaId(1)));
        assert_ne!(a.public_key(), b.public_key());
        // And different master seeds give different keys too.
        let c = KeyPair::for_signer(8, SignerId::Replica(ReplicaId(0)));
        assert_ne!(a.public_key(), c.public_key());
    }
}
