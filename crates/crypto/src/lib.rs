//! Cryptographic primitives for the SplitBFT reproduction.
//!
//! The paper signs inter-replica messages with ed25519 (via `ring`) and
//! authenticates client traffic with HMAC-SHA2. This crate reproduces those
//! code paths with self-contained implementations:
//!
//! - [`sha256`] — a from-scratch FIPS 180-4 SHA-256 (checked against NIST
//!   test vectors in the unit tests),
//! - [`hmac`] — HMAC-SHA-256 (RFC 2104),
//! - [`sig`] — a Schnorr-style signature scheme over a small prime-order
//!   group,
//! - [`aead`] — an encrypt-then-MAC authenticated cipher used for client
//!   request confidentiality and enclave sealing,
//! - [`keys`] — key pairs, the public-key registry, and helpers to sign and
//!   verify [`Signed`](splitbft_types::Signed) protocol messages.
//!
//! # Security status
//!
//! **This is simulation-grade cryptography.** The signature group is far too
//! small to resist a real adversary and the AEAD is a textbook
//! construction; both exist so that the *system* exercises realistic
//! sign/verify/encrypt/decrypt code paths (with real key management and
//! real failure modes) without pulling hardware-backed or audited
//! dependencies into a reproduction. Do not reuse outside this repository.
//! The substitution is documented in `DESIGN.md` §2.
//!
//! # Example
//!
//! ```
//! use splitbft_crypto::{digest_bytes, keys::KeyPair};
//!
//! let kp = KeyPair::from_seed(7);
//! let sig = kp.sign(b"hello");
//! assert!(KeyPair::verify(&kp.public_key(), b"hello", &sig));
//! assert!(!KeyPair::verify(&kp.public_key(), b"tampered", &sig));
//! let d = digest_bytes(b"hello");
//! assert_eq!(d, digest_bytes(b"hello"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod hmac;
pub mod keys;
pub mod sha256;
pub mod sig;

use splitbft_types::wire::Encode;
use splitbft_types::Digest;

pub use aead::{open, seal, AeadError, AeadKey};
pub use hmac::{hmac_sha256, verify_tag_batch, MacKey};
pub use keys::{client_mac_key, KeyPair, KeyRegistry};
pub use sig::{dh_public, dh_shared, SecretKey, SigPublicKey};

/// SHA-256 digest of raw bytes, as a [`Digest`].
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    Digest::from_bytes(sha256::sha256(bytes))
}

/// SHA-256 digest of a value's canonical wire encoding.
///
/// This is *the* digest function of the protocol: `PrePrepare.digest` is
/// `digest_of(&batch)`, checkpoint digests are `digest_of(&snapshot)`, and
/// so on. Canonical encoding makes the digest deterministic across
/// replicas.
pub fn digest_of<T: Encode + ?Sized>(value: &T) -> Digest {
    digest_bytes(&value.to_wire())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_matches_digest_bytes_on_encoding() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(digest_of(&v), digest_bytes(&v.to_wire()));
    }

    #[test]
    fn different_values_different_digests() {
        assert_ne!(digest_bytes(b"a"), digest_bytes(b"b"));
        assert_ne!(digest_of(&1u64), digest_of(&2u64));
    }
}
