//! HMAC-SHA-256 (RFC 2104).
//!
//! The paper authenticates client requests and replies with HMAC-SHA2,
//! reserving (slower) signatures for inter-replica messages; we reproduce
//! that split. [`MacKey`] wraps the shared secret between one client and
//! the Execution compartments.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first, per RFC 2104.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time byte-slice comparison.
///
/// Tag comparisons must not leak where the first mismatching byte sits.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Verifies many `(expected, claimed)` tag pairs as one batch with a
/// **single** constant-time comparison: each side is folded into one
/// SHA-256 digest and only the two digests are compared.
///
/// Agreement paths that authenticate a whole request batch before
/// accepting it ([`crate`] callers reject the entire batch when any
/// member fails) use this instead of one `ct_eq` per request: the
/// decision — and therefore the timing surface — collapses to one
/// comparison per batch. Soundness rides on SHA-256 collision
/// resistance, and the fold is unambiguous because every tag has a
/// fixed 32-byte width. An empty batch verifies vacuously, matching
/// `iter().all(..)`.
pub fn verify_tag_batch(pairs: impl IntoIterator<Item = ([u8; 32], [u8; 32])>) -> bool {
    let mut expected = Sha256::new();
    let mut claimed = Sha256::new();
    for (exp, got) in pairs {
        expected.update(&exp);
        claimed.update(&got);
    }
    ct_eq(&expected.finalize(), &claimed.finalize())
}

/// A symmetric MAC key shared between a client and the Execution
/// compartments.
#[derive(Clone, PartialEq, Eq)]
pub struct MacKey([u8; 32]);

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("MacKey(…)")
    }
}

impl MacKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: [u8; 32]) -> Self {
        MacKey(bytes)
    }

    /// Derives a per-client key deterministically from a seed — used by the
    /// simulated key-distribution step (in the paper, keys are installed
    /// during attestation).
    pub fn derive(master: &[u8], context: &[u8]) -> Self {
        MacKey(hmac_sha256(master, context))
    }

    /// Tags `data`.
    pub fn tag(&self, data: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.0, data)
    }

    /// Verifies a tag in constant time.
    #[must_use]
    pub fn verify(&self, data: &[u8], tag: &[u8; 32]) -> bool {
        ct_eq(&self.tag(data), tag)
    }

    /// Exposes the raw bytes (needed to seal the key into an enclave).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_jefe() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_filled() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_key_tag_and_verify() {
        let k = MacKey::new([7u8; 32]);
        let tag = k.tag(b"payload");
        assert!(k.verify(b"payload", &tag));
        assert!(!k.verify(b"payloae", &tag));
        let other = MacKey::new([8u8; 32]);
        assert!(!other.verify(b"payload", &tag));
    }

    #[test]
    fn derive_is_deterministic_and_context_separated() {
        let a = MacKey::derive(b"master", b"client-1");
        let b = MacKey::derive(b"master", b"client-1");
        let c = MacKey::derive(b"master", b"client-2");
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_ne!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn batched_verification_agrees_with_per_tag_verification() {
        let keys: Vec<MacKey> = (0u8..8).map(|i| MacKey::new([i; 32])).collect();
        let msgs: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i; 16]).collect();
        let tags: Vec<[u8; 32]> = keys.iter().zip(&msgs).map(|(k, m)| k.tag(m)).collect();

        let pairs = |tags: &[[u8; 32]]| {
            keys.iter()
                .zip(&msgs)
                .zip(tags.to_vec())
                .map(|((k, m), t)| (k.tag(m), t))
                .collect::<Vec<_>>()
        };
        assert!(verify_tag_batch(pairs(&tags)));
        // One corrupted tag anywhere fails the whole batch.
        for i in 0..tags.len() {
            let mut bad = tags.clone();
            bad[i][0] ^= 1;
            assert!(!verify_tag_batch(pairs(&bad)));
        }
        // Empty batches verify vacuously, like `iter().all(..)`.
        assert!(verify_tag_batch(std::iter::empty()));
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = MacKey::new([0x41u8; 32]);
        let s = format!("{k:?}");
        assert!(!s.contains("41"));
    }
}
