//! Authenticated encryption (encrypt-then-MAC) for request confidentiality
//! and enclave sealing.
//!
//! SplitBFT clients encrypt their operations under a session key installed
//! in the Execution enclaves during attestation; the blockchain application
//! additionally seals blocks before ocall-ing them out to untrusted
//! persistent storage (the paper uses `sgx_tprotected_fs`). Both paths use
//! this module.
//!
//! Construction: a SHA-256-based stream cipher (keystream block `i` is
//! `SHA256(enc_key ‖ nonce ‖ i)`) with an HMAC-SHA-256 tag over
//! `nonce ‖ aad ‖ ciphertext`, with independent sub-keys derived from the
//! master key. Textbook, simulation-grade — see the crate docs.

use crate::hmac::{ct_eq, hmac_sha256};
use crate::sha256::Sha256;

/// Tag length appended to every sealed message.
pub const TAG_LEN: usize = 32;

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is shorter than a tag.
    TooShort,
    /// The authentication tag did not verify: the ciphertext, nonce, or
    /// associated data was tampered with, or the key is wrong.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::TooShort => f.write_str("ciphertext shorter than the tag"),
            AeadError::BadTag => f.write_str("authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// A 256-bit AEAD key.
#[derive(Clone, PartialEq, Eq)]
pub struct AeadKey {
    enc: [u8; 32],
    mac: [u8; 32],
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AeadKey(…)")
    }
}

impl AeadKey {
    /// Derives the encryption and MAC sub-keys from a master secret.
    pub fn new(master: &[u8; 32]) -> Self {
        AeadKey {
            enc: hmac_sha256(master, b"splitbft-aead-enc"),
            mac: hmac_sha256(master, b"splitbft-aead-mac"),
        }
    }

    /// Derives a key from a master secret and a context label (e.g. one
    /// session key per client).
    pub fn derive(master: &[u8], context: &[u8]) -> Self {
        AeadKey::new(&hmac_sha256(master, context))
    }

    fn keystream_block(&self, nonce: u64, counter: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.enc);
        h.update(&nonce.to_le_bytes());
        h.update(&counter.to_le_bytes());
        h.finalize()
    }

    fn xor_keystream(&self, nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(32).enumerate() {
            let ks = self.keystream_block(nonce, i as u64);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, nonce: u64, aad: &[u8], ciphertext: &[u8]) -> [u8; 32] {
        let mut data = Vec::with_capacity(8 + 8 + aad.len() + ciphertext.len());
        data.extend_from_slice(&nonce.to_le_bytes());
        // Length-prefix the AAD so (aad, ct) boundaries are unambiguous.
        data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
        data.extend_from_slice(aad);
        data.extend_from_slice(ciphertext);
        hmac_sha256(&self.mac, &data)
    }
}

/// Encrypts and authenticates `plaintext`.
///
/// The nonce must be unique per key (callers use a per-client or per-seal
/// counter). `aad` is authenticated but not encrypted. Returns
/// `ciphertext ‖ tag`.
pub fn seal(key: &AeadKey, nonce: u64, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    key.xor_keystream(nonce, &mut out);
    let tag = key.tag(nonce, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts a message produced by [`seal`].
///
/// # Errors
///
/// Returns [`AeadError::BadTag`] on any tampering of ciphertext, nonce, or
/// associated data, and [`AeadError::TooShort`] for truncated input.
pub fn open(key: &AeadKey, nonce: u64, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < TAG_LEN {
        return Err(AeadError::TooShort);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expect = key.tag(nonce, aad, ciphertext);
    if !ct_eq(&expect, tag) {
        return Err(AeadError::BadTag);
    }
    let mut out = ciphertext.to_vec();
    key.xor_keystream(nonce, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u8) -> AeadKey {
        AeadKey::new(&[seed; 32])
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key(1);
        let sealed = seal(&k, 42, b"aad", b"secret payload");
        assert_eq!(open(&k, 42, b"aad", &sealed).unwrap(), b"secret payload");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let k = key(1);
        let sealed = seal(&k, 0, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&k, 0, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn large_plaintext_roundtrip() {
        let k = key(2);
        let pt: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let sealed = seal(&k, 7, b"block", &pt);
        assert_eq!(open(&k, 7, b"block", &sealed).unwrap(), pt);
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let k = key(3);
        let sealed = seal(&k, 1, b"", b"aaaaaaaaaaaaaaaa");
        assert!(!sealed.windows(4).any(|w| w == b"aaaa"));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(1), 1, b"", b"data");
        assert_eq!(open(&key(2), 1, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let k = key(1);
        let sealed = seal(&k, 1, b"", b"data");
        assert_eq!(open(&k, 2, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = key(1);
        let sealed = seal(&k, 1, b"aad-a", b"data");
        assert_eq!(open(&k, 1, b"aad-b", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn bitflip_rejected_everywhere() {
        let k = key(4);
        let sealed = seal(&k, 9, b"hdr", b"payload bytes");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x80;
            assert_eq!(open(&k, 9, b"hdr", &bad), Err(AeadError::BadTag), "byte {i}");
        }
    }

    #[test]
    fn truncation_rejected() {
        let k = key(5);
        let sealed = seal(&k, 1, b"", b"data");
        assert_eq!(open(&k, 1, b"", &sealed[..10]), Err(AeadError::TooShort));
    }

    #[test]
    fn different_nonces_different_ciphertexts() {
        let k = key(6);
        let a = seal(&k, 1, b"", b"same");
        let b = seal(&k, 2, b"", b"same");
        assert_ne!(a, b);
    }

    #[test]
    fn derive_context_separation() {
        let a = AeadKey::derive(b"master", b"client-1");
        let b = AeadKey::derive(b"master", b"client-2");
        let sealed = seal(&a, 1, b"", b"x");
        assert!(open(&b, 1, b"", &sealed).is_err());
    }
}
