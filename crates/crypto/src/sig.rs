//! A Schnorr-style signature scheme over a small prime-order field.
//!
//! The paper signs inter-replica and inter-enclave messages with 256-bit
//! ed25519. Reproducing ed25519 from scratch is out of scope, so we use a
//! textbook Schnorr scheme over the multiplicative group of the Mersenne
//! prime `p = 2^61 − 1` with deterministic (hash-derived) nonces. This is
//! **simulation-grade**: the group is far too small for real security, but
//! the scheme is *publicly verifiable* — verification uses only the public
//! key — so every protocol code path (sign on send, verify on receive,
//! reject forgeries, quorum certificates over third-party signatures) is
//! exercised exactly as with ed25519. See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! Signature layout inside the 64-byte [`splitbft_types::Signature`]:
//! bytes `0..8` hold `e` and bytes `8..16` hold `s` (little-endian); the
//! remainder is zero. Public keys occupy the first 8 bytes of the 32-byte
//! [`splitbft_types::PublicKey`].

use crate::sha256::Sha256;
use splitbft_types::{PublicKey, Signature};

/// The group modulus: the Mersenne prime `2^61 − 1`.
pub const P: u64 = (1u64 << 61) - 1;
/// The exponent modulus (group order of `Z_p^*`).
pub const Q: u64 = P - 1;
/// The generator.
pub const G: u64 = 3;

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

fn hash_to_scalar(parts: &[&[u8]]) -> u64 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    let d = h.finalize();
    let mut v = u64::from_le_bytes(d[..8].try_into().expect("8 bytes")) % Q;
    if v == 0 {
        v = 1; // zero scalars break the scheme; remap deterministically
    }
    v
}

/// Diffie–Hellman public value `g^secret mod p` over the same group.
///
/// Used by the attestation flow: the Execution enclave publishes its DH
/// value in the attestation quote's report data; the client derives a
/// shared secret to wrap the session key. Simulation-grade, like the
/// signatures.
pub fn dh_public(secret: u64) -> u64 {
    pow_mod(G, secret % Q, P)
}

/// The DH shared secret `other^secret mod p`.
pub fn dh_shared(secret: u64, other_public: u64) -> u64 {
    pow_mod(other_public, secret % Q, P)
}

/// A secret signing key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(…)")
    }
}

impl SecretKey {
    /// Derives a secret key deterministically from a seed. Used by the
    /// simulated provisioning step (in the paper each enclave generates its
    /// key pair at attestation time).
    pub fn from_seed(seed: u64) -> Self {
        SecretKey(hash_to_scalar(&[b"splitbft-sk", &seed.to_le_bytes()]))
    }

    /// The matching public key `g^sk mod p`.
    pub fn public(&self) -> SigPublicKey {
        SigPublicKey(pow_mod(G, self.0, P))
    }

    /// Signs `msg`, producing a deterministic Schnorr signature.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let pk = self.public();
        // Deterministic nonce: k = H(sk, msg). Reusing k across messages
        // would leak sk in a real scheme, so derive it from both.
        let k = hash_to_scalar(&[b"splitbft-nonce", &self.0.to_le_bytes(), msg]);
        let r = pow_mod(G, k, P);
        let e = hash_to_scalar(&[b"splitbft-chal", &r.to_le_bytes(), &pk.0.to_le_bytes(), msg]);
        let s = (k as u128 + mul_mod(e, self.0, Q) as u128) % Q as u128;
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&e.to_le_bytes());
        out[8..16].copy_from_slice(&(s as u64).to_le_bytes());
        Signature(out)
    }
}

/// A public verification key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigPublicKey(pub u64);

impl SigPublicKey {
    /// Verifies `sig` over `msg`.
    ///
    /// Returns `false` for malformed signatures, out-of-range values, or a
    /// failed challenge check — verification never panics on attacker
    /// input.
    #[must_use]
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if self.0 == 0 || self.0 >= P {
            return false;
        }
        let e = u64::from_le_bytes(sig.0[..8].try_into().expect("8 bytes"));
        let s = u64::from_le_bytes(sig.0[8..16].try_into().expect("8 bytes"));
        if e == 0 || e >= Q || s >= Q {
            return false;
        }
        if sig.0[16..].iter().any(|&b| b != 0) {
            return false; // non-canonical padding
        }
        // r' = g^s * pk^(-e) = g^s * pk^(Q - e)
        let r = mul_mod(pow_mod(G, s, P), pow_mod(self.0, Q - e, P), P);
        let e2 = hash_to_scalar(&[b"splitbft-chal", &r.to_le_bytes(), &self.0.to_le_bytes(), msg]);
        e == e2
    }

    /// Packs into the opaque wire representation.
    pub fn to_wire(self) -> PublicKey {
        let mut out = [0u8; 32];
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        PublicKey(out)
    }

    /// Unpacks from the wire representation.
    ///
    /// Returns `None` if the value is out of range or the padding is
    /// non-canonical.
    pub fn from_wire(pk: &PublicKey) -> Option<Self> {
        if pk.0[8..].iter().any(|&b| b != 0) {
            return None;
        }
        let v = u64::from_le_bytes(pk.0[..8].try_into().expect("8 bytes"));
        if v == 0 || v >= P {
            return None;
        }
        Some(SigPublicKey(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SecretKey::from_seed(1);
        let pk = sk.public();
        let sig = sk.sign(b"message");
        assert!(pk.verify(b"message", &sig));
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let sk = SecretKey::from_seed(2);
        let sig = sk.sign(b"message");
        assert!(!sk.public().verify(b"other", &sig));
    }

    #[test]
    fn verification_rejects_wrong_key() {
        let a = SecretKey::from_seed(3);
        let b = SecretKey::from_seed(4);
        let sig = a.sign(b"message");
        assert!(!b.public().verify(b"message", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let sk = SecretKey::from_seed(5);
        assert_eq!(sk.sign(b"m").0, sk.sign(b"m").0);
        assert_ne!(sk.sign(b"m").0, sk.sign(b"n").0);
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SecretKey::from_seed(6);
        let mut sig = sk.sign(b"message");
        sig.0[0] ^= 1;
        assert!(!sk.public().verify(b"message", &sig));
    }

    #[test]
    fn non_canonical_padding_rejected() {
        let sk = SecretKey::from_seed(7);
        let mut sig = sk.sign(b"message");
        sig.0[63] = 1;
        assert!(!sk.public().verify(b"message", &sig));
    }

    #[test]
    fn zero_signature_rejected() {
        let sk = SecretKey::from_seed(8);
        assert!(!sk.public().verify(b"message", &Signature::ZERO));
    }

    #[test]
    fn wire_roundtrip_and_validation() {
        let pk = SecretKey::from_seed(9).public();
        let wire = pk.to_wire();
        assert_eq!(SigPublicKey::from_wire(&wire), Some(pk));

        let mut bad = wire;
        bad.0[20] = 1;
        assert_eq!(SigPublicKey::from_wire(&bad), None);

        let zero = PublicKey([0u8; 32]);
        assert_eq!(SigPublicKey::from_wire(&zero), None);
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(3, 0, 97), 1);
        assert_eq!(pow_mod(5, 96, 97), 1); // Fermat
        assert_eq!(pow_mod(G, Q, P), 1); // group order
    }

    #[test]
    fn dh_agreement() {
        let (a, b) = (0xAAAA_BBBB, 0xCCCC_DDDD);
        let shared_ab = dh_shared(a, dh_public(b));
        let shared_ba = dh_shared(b, dh_public(a));
        assert_eq!(shared_ab, shared_ba);
        // A third party with different secret disagrees.
        assert_ne!(dh_shared(0xEEEE, dh_public(b)), shared_ab);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let keys: Vec<u64> = (0..50).map(|s| SecretKey::from_seed(s).public().0).collect();
        let unique: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len());
    }
}
