//! Adapters driving the real protocol implementations under the DES.
//!
//! Each adapter turns one delivered event into a [`StepResult`]: the
//! outbound messages/replies plus a list of *usage* entries — virtual
//! compute assigned to named threads. The scheduler in
//! [`crate::experiments`] serializes usage per thread, which is where
//! saturation comes from.

use crate::des::Ns;
use crate::estimate;
use splitbft_app::Application;
use splitbft_core::{ReplicaEvent, SplitBftReplica};
use splitbft_pbft::{Action, Replica as PbftReplica};
use splitbft_tee::CostModel;
use splitbft_types::{
    ClientId, CompartmentKind, ConsensusMessage, Reply, Request,
};

/// Which thread a usage entry runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSel {
    /// A specific thread index.
    Fixed(usize),
    /// Any thread of the node's worker pool (scheduler picks the least
    /// busy).
    Pool,
}

/// One unit of virtual compute within a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageEntry {
    /// Which thread runs it.
    pub sel: ThreadSel,
    /// How long it runs.
    pub ns: Ns,
    /// `true` if it consumes the previous entry's output and must wait
    /// for it (e.g. the protocol core waits for authentication; a
    /// loopback ecall waits for the ecall that produced its input).
    /// Independent entries — the broker handing one network message to
    /// several enclave threads — start in parallel.
    pub after_prev: bool,
}

/// The timed outcome of one protocol step.
#[derive(Debug, Default)]
pub struct StepResult {
    /// Virtual compute, in issue order.
    pub usage: Vec<UsageEntry>,
    /// Messages to broadcast to all other replicas.
    pub sends: Vec<ConsensusMessage>,
    /// Replies to clients.
    pub replies: Vec<(ClientId, Reply)>,
    /// Per-ecall virtual latencies (SplitBFT only; Figure 4 data).
    pub ecalls: Vec<(CompartmentKind, Ns)>,
}

/// A protocol node the simulator can drive.
pub trait ProtocolNode: Send {
    /// Processes a delivered protocol message.
    fn on_message(&mut self, msg: ConsensusMessage) -> StepResult;
    /// Processes an ordered client batch (primary only).
    fn on_client_batch(&mut self, requests: Vec<Request>) -> StepResult;
    /// Number of threads this node models.
    fn thread_count(&self) -> usize;
    /// The worker-pool thread indices, if the node has a pool.
    fn pool(&self) -> Option<std::ops::Range<usize>>;
    /// The thread whose completion releases an outbound message of this
    /// type.
    fn send_thread(&self, msg: &ConsensusMessage) -> usize;
    /// The thread whose completion releases replies.
    fn reply_thread(&self) -> usize;
}

// ---------------------------------------------------------------------------
// SplitBFT
// ---------------------------------------------------------------------------

/// Thread layout of a SplitBFT node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitThreading {
    /// One dedicated ecall thread per enclave (the paper's default).
    PerEnclave,
    /// A single thread performs all ecalls (the Figure 3a ablation).
    Single,
}

/// A SplitBFT replica under the simulator.
pub struct SplitBftNode<A: Application> {
    replica: SplitBftReplica<A>,
    cost: CostModel,
    threading: SplitThreading,
    /// Prepare votes seen per slot — past the 2f quorum the Confirmation
    /// enclave early-drops without verifying (cheap ecall).
    prepares_seen: std::collections::HashMap<u64, u32>,
    /// Commit votes seen per slot — past 2f + 1 the Execution enclave
    /// early-drops.
    commits_seen: std::collections::HashMap<u64, u32>,
}

impl<A: Application> SplitBftNode<A> {
    /// Wraps a replica with the given cost model and thread layout.
    pub fn new(replica: SplitBftReplica<A>, cost: CostModel, threading: SplitThreading) -> Self {
        SplitBftNode {
            replica,
            cost,
            threading,
            prepares_seen: Default::default(),
            commits_seen: Default::default(),
        }
    }

    /// Read access to the wrapped replica.
    pub fn replica(&self) -> &SplitBftReplica<A> {
        &self.replica
    }

    fn thread_of(&self, kind: CompartmentKind) -> usize {
        match self.threading {
            SplitThreading::PerEnclave => kind.index(),
            SplitThreading::Single => 0,
        }
    }

    /// The compartment that *originates* each message type — used to
    /// reconstruct the local ecall cascade from observed broadcasts.
    fn origin_of(msg: &ConsensusMessage) -> CompartmentKind {
        match msg {
            ConsensusMessage::PrePrepare(_) | ConsensusMessage::NewView(_) => {
                CompartmentKind::Preparation
            }
            ConsensusMessage::Prepare(_) => CompartmentKind::Preparation,
            ConsensusMessage::Commit(_) | ConsensusMessage::ViewChange(_) => {
                CompartmentKind::Confirmation
            }
            ConsensusMessage::Checkpoint(_) => CompartmentKind::Execution,
        }
    }

    fn route(msg: &ConsensusMessage) -> &'static [CompartmentKind] {
        use CompartmentKind::*;
        match msg {
            ConsensusMessage::PrePrepare(_)
            | ConsensusMessage::Checkpoint(_)
            | ConsensusMessage::NewView(_) => &[Preparation, Confirmation, Execution],
            ConsensusMessage::Prepare(_) => &[Confirmation],
            ConsensusMessage::Commit(_) => &[Execution],
            ConsensusMessage::ViewChange(_) => &[Preparation],
        }
    }

    /// Builds the usage entries for one broker step: the ecall cascade is
    /// reconstructed from the routing table plus the observed loopback
    /// broadcasts, each entry charged boundary + estimated compute.
    fn build_step(
        &mut self,
        incoming: Option<&ConsensusMessage>,
        batch: Option<&[Request]>,
        events: Vec<ReplicaEvent>,
    ) -> StepResult {
        let mut step = StepResult::default();
        // (kind, ns, depends-on-previous)
        let mut cascade: Vec<(CompartmentKind, Ns, bool)> = Vec::new();

        let cost = &self.cost;
        let charge = |cascade: &mut Vec<(CompartmentKind, Ns, bool)>,
                      kind: CompartmentKind,
                      msg: &ConsensusMessage,
                      after_prev: bool| {
            let len = splitbft_types::wire::encode(msg).len();
            let ns = cost.ecall_boundary_ns(len, 0)
                + estimate::splitbft_compute(kind, msg, &[], cost);
            cascade.push((kind, ns, after_prev));
        };

        // First hop: the broker hands the incoming message to each
        // subscribed enclave thread in parallel.
        if let Some(msg) = incoming {
            for kind in Self::route(msg) {
                charge(&mut cascade, *kind, msg, false);
            }
        }
        if let Some(requests) = batch {
            let len: usize = requests.iter().map(estimate::request_wire_len).sum();
            let ns = self.cost.ecall_boundary_ns(len, 0)
                + estimate::splitbft_client_batch_compute(requests, &self.cost);
            cascade.push((CompartmentKind::Preparation, ns, false));
        }

        // Loopback: every broadcast re-enters the local sibling
        // compartments, *after* the ecall that produced it.
        for event in &events {
            if let ReplicaEvent::Broadcast(msg) = event {
                let origin = Self::origin_of(msg);
                for kind in Self::route(msg) {
                    if *kind != origin {
                        charge(&mut cascade, *kind, msg, true);
                    }
                }
            }
        }
        // Local votes count toward the early-drop quorums too.
        for event in &events {
            if let ReplicaEvent::Broadcast(ConsensusMessage::Commit(c)) = event {
                *self.commits_seen.entry(c.payload.seq.0).or_insert(0) += 1;
            }
            if let ReplicaEvent::Broadcast(ConsensusMessage::Prepare(p)) = event {
                *self.prepares_seen.entry(p.payload.seq.0).or_insert(0) += 1;
            }
        }

        // Execution extras: per executed request and per sealed block.
        let executed =
            events.iter().filter(|e| matches!(e, ReplicaEvent::Executed { .. })).count() as u64;
        let persisted =
            events.iter().filter(|e| matches!(e, ReplicaEvent::Persist(_))).count() as u64;
        if executed + persisted > 0 {
            let extra = executed * self.cost.exec_request_ns
                + persisted * self.cost.block_seal_ns;
            if let Some(entry) = cascade
                .iter_mut()
                .rev()
                .find(|(kind, _, _)| *kind == CompartmentKind::Execution)
            {
                entry.1 += extra;
            } else {
                cascade.push((CompartmentKind::Execution, extra, true));
            }
        }

        for (kind, ns, after_prev) in &cascade {
            step.usage.push(UsageEntry {
                sel: ThreadSel::Fixed(self.thread_of(*kind)),
                ns: *ns,
                after_prev: *after_prev,
            });
            step.ecalls.push((*kind, *ns));
        }
        for event in events {
            match event {
                ReplicaEvent::Broadcast(msg) => step.sends.push(msg),
                ReplicaEvent::Reply { to, reply } => step.replies.push((to, reply)),
                _ => {}
            }
        }
        step
    }
}

impl<A: Application> ProtocolNode for SplitBftNode<A> {
    fn on_message(&mut self, msg: ConsensusMessage) -> StepResult {
        // Track redundant votes: they take the early-drop path inside the
        // enclave (no signature verification), so they are charged only
        // boundary + bookkeeping.
        let redundant = match &msg {
            ConsensusMessage::Prepare(p) => {
                let seen = self.prepares_seen.entry(p.payload.seq.0).or_insert(0);
                *seen += 1;
                *seen > self.replica.config().prepare_quorum() as u32
            }
            ConsensusMessage::Commit(c) => {
                let seen = self.commits_seen.entry(c.payload.seq.0).or_insert(0);
                *seen += 1;
                *seen > self.replica.config().quorum() as u32
            }
            _ => false,
        };
        if self.prepares_seen.len() > 8192 {
            self.prepares_seen.clear();
            self.commits_seen.clear();
        }
        let events = self.replica.on_network_message(msg.clone());
        let _ = self.replica.drain_trace();
        if redundant && events.is_empty() {
            // Early drop: one cheap ecall into the target compartment.
            let kind = Self::route(&msg)[0];
            let len = splitbft_types::wire::encode(&msg).len();
            let ns = self.cost.ecall_boundary_ns(len, 0) + self.cost.handler_ns / 4;
            let mut step = StepResult::default();
            step.usage.push(UsageEntry {
                sel: ThreadSel::Fixed(self.thread_of(kind)),
                ns,
                after_prev: false,
            });
            step.ecalls.push((kind, ns));
            return step;
        }
        self.build_step(Some(&msg), None, events)
    }

    fn on_client_batch(&mut self, requests: Vec<Request>) -> StepResult {
        let events = self.replica.on_client_batch(requests.clone());
        let _ = self.replica.drain_trace();
        self.build_step(None, Some(&requests), events)
    }

    fn thread_count(&self) -> usize {
        match self.threading {
            SplitThreading::PerEnclave => 3,
            SplitThreading::Single => 1,
        }
    }

    fn pool(&self) -> Option<std::ops::Range<usize>> {
        None
    }

    fn send_thread(&self, msg: &ConsensusMessage) -> usize {
        self.thread_of(Self::origin_of(msg))
    }

    fn reply_thread(&self) -> usize {
        self.thread_of(CompartmentKind::Execution)
    }
}

// ---------------------------------------------------------------------------
// PBFT baseline
// ---------------------------------------------------------------------------

/// Worker threads in the PBFT baseline's auth pool ("a pool of 4 worker
/// threads using the work stealing thread pool").
pub const PBFT_WORKERS: usize = 4;

/// The PBFT baseline under the simulator.
pub struct PbftNode<A: Application> {
    replica: PbftReplica<A>,
    cost: CostModel,
}

impl<A: Application> PbftNode<A> {
    /// Wraps a baseline replica.
    pub fn new(replica: PbftReplica<A>, cost: CostModel) -> Self {
        PbftNode { replica, cost }
    }

    /// Read access to the wrapped replica.
    pub fn replica(&self) -> &PbftReplica<A> {
        &self.replica
    }

    fn convert(&self, compute: estimate::PbftCompute, actions: Vec<Action>) -> StepResult {
        let mut step = StepResult::default();
        step.usage.push(UsageEntry { sel: ThreadSel::Pool, ns: compute.auth_ns, after_prev: false });
        // The protocol core handles the message only after authentication.
        step.usage.push(UsageEntry {
            sel: ThreadSel::Fixed(PBFT_WORKERS),
            ns: compute.core_ns,
            after_prev: true,
        });
        for action in actions {
            match action {
                Action::Broadcast { msg } => step.sends.push(msg),
                Action::Send { msg, .. } => step.sends.push(msg),
                Action::SendReply { to, reply } => step.replies.push((to, reply)),
                _ => {}
            }
        }
        step
    }
}

impl<A: Application> ProtocolNode for PbftNode<A> {
    fn on_message(&mut self, msg: ConsensusMessage) -> StepResult {
        let actions = self.replica.on_message(msg.clone()).unwrap_or_default();
        let compute = estimate::pbft_compute(&msg, &actions, &self.cost);
        self.convert(compute, actions)
    }

    fn on_client_batch(&mut self, requests: Vec<Request>) -> StepResult {
        let compute = estimate::pbft_client_batch_compute(&requests, &self.cost);
        let actions = self.replica.on_client_batch(requests);
        self.convert(compute, actions)
    }

    fn thread_count(&self) -> usize {
        PBFT_WORKERS + 1
    }

    fn pool(&self) -> Option<std::ops::Range<usize>> {
        Some(0..PBFT_WORKERS)
    }

    fn send_thread(&self, _msg: &ConsensusMessage) -> usize {
        PBFT_WORKERS // the protocol core releases outbound messages
    }

    fn reply_thread(&self) -> usize {
        PBFT_WORKERS
    }
}
