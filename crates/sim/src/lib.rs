//! A deterministic discrete-event simulator (DES) for the SplitBFT
//! evaluation.
//!
//! The paper measures SplitBFT and PBFT on a 4-node SGX-enabled Azure
//! cluster with up to 150 closed-loop clients. This crate reproduces that
//! testbed in virtual time: the *real* protocol implementations (the
//! `splitbft-core` broker + enclaves and the `splitbft-pbft` replica) are
//! driven by a virtual clock, with compute charged according to the
//! calibrated [`CostModel`](splitbft_tee::CostModel) and thread contention
//! modeled explicitly:
//!
//! - SplitBFT runs "a dedicated thread for each enclave, which performs
//!   ecalls" — three serial enclave threads per replica (or one, in the
//!   single-thread ablation);
//! - the PBFT baseline parallelizes "networking and message
//!   authentication ... but the core protocol is not" — a 4-worker
//!   authentication pool plus one serial protocol thread.
//!
//! Saturation therefore emerges from the same queueing structure as on
//! the paper's testbed: unbatched SplitBFT is bound by its Execution
//! enclave thread, batched SplitBFT by the Preparation ecall that
//! authenticates 200 client MACs per batch, and PBFT by its serial
//! protocol core.
//!
//! # Entry point
//!
//! [`experiments::run_point`] simulates one configuration (system ×
//! application × client count × batching) and returns throughput, mean
//! latency and the per-compartment ecall profile; the `splitbft-bench`
//! harness sweeps it to regenerate Figure 3 and Figure 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod estimate;
pub mod experiments;
pub mod metrics;
pub mod protocols;
pub mod workload;

pub use des::{Event, EventQueue, Ns};
pub use experiments::{run_point, AppKind, SimConfig, SimResult, SystemKind};
pub use metrics::Metrics;
