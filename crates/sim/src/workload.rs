//! Closed-loop client workloads.
//!
//! "Clients constantly issue synchronous requests in all our measurements
//! and measure the time it takes to collect the replies." Unbatched runs
//! give every client one outstanding request; the batched experiment
//! "allows each client to have 40 outstanding requests in parallel."

use crate::des::Ns;
use bytes::Bytes;
use splitbft_app::KvOp;
use splitbft_pbft::make_request;
use splitbft_types::{ClientId, ClusterConfig, Reply, Request, Timestamp};
use std::collections::HashMap;

/// Which application the workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// The key-value store: PUT operations updating entries.
    Kvs,
    /// The blockchain: opaque transactions batched into blocks of five.
    Blockchain,
}

/// A closed-loop client with a fixed number of outstanding slots.
#[derive(Debug)]
pub struct SimClient {
    id: ClientId,
    master_seed: u64,
    app: AppKind,
    payload: usize,
    next_ts: u64,
    reply_quorum: usize,
    in_flight: HashMap<Timestamp, InFlight>,
}

#[derive(Debug)]
struct InFlight {
    issued_at: Ns,
    first_result: Option<Bytes>,
    matching: usize,
    replied: std::collections::BTreeSet<splitbft_types::ReplicaId>,
}

impl SimClient {
    /// Creates client `index` of the workload.
    pub fn new(
        config: &ClusterConfig,
        index: usize,
        master_seed: u64,
        app: AppKind,
        payload: usize,
    ) -> Self {
        SimClient {
            id: ClientId(index as u32),
            master_seed,
            app,
            payload,
            next_ts: 1,
            reply_quorum: config.reply_quorum(),
            in_flight: HashMap::new(),
        }
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Requests currently awaiting their reply quorum.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn op_bytes(&self, ts: u64) -> Bytes {
        match self.app {
            // "Our throughput and latency measurements evaluate a PUT
            // operation that updates the entries": each client hammers
            // its own key with a payload-sized value.
            AppKind::Kvs => {
                let key = self.id.0.to_le_bytes();
                let value = vec![(ts % 251) as u8; self.payload];
                KvOp::put(&key, &value).encode_op()
            }
            // Blockchain transactions are opaque payload bytes.
            AppKind::Blockchain => {
                let mut tx = vec![(ts % 251) as u8; self.payload.max(1)];
                tx[0] = self.id.0 as u8; // non-empty, client-tagged
                Bytes::from(tx)
            }
        }
    }

    /// Issues the next request at virtual time `now`.
    pub fn issue(&mut self, now: Ns) -> Request {
        let ts = Timestamp(self.next_ts);
        self.next_ts += 1;
        self.in_flight.insert(
            ts,
            InFlight {
                issued_at: now,
                first_result: None,
                matching: 0,
                replied: Default::default(),
            },
        );
        make_request(self.master_seed, self.id, ts, self.op_bytes(ts.0))
    }

    /// Delivers one reply; returns the request latency when the reply
    /// quorum completes.
    pub fn on_reply(&mut self, now: Ns, reply: &Reply) -> Option<Ns> {
        let flight = self.in_flight.get_mut(&reply.request.timestamp)?;
        if !flight.replied.insert(reply.replica) {
            return None;
        }
        match &flight.first_result {
            None => {
                flight.first_result = Some(reply.result.clone());
                flight.matching = 1;
            }
            Some(first) if *first == reply.result => flight.matching += 1,
            Some(_) => {}
        }
        if flight.matching >= self.reply_quorum {
            let issued = flight.issued_at;
            self.in_flight.remove(&reply.request.timestamp);
            Some(now - issued)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::{ReplicaId, RequestId, View};

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn reply(request: RequestId, replica: u32, result: &'static [u8]) -> Reply {
        Reply {
            view: View(0),
            request,
            replica: ReplicaId(replica),
            result: Bytes::from_static(result),
            encrypted: false,
            auth: [0u8; 32],
        }
    }

    #[test]
    fn completes_on_reply_quorum() {
        let c = cfg();
        let mut client = SimClient::new(&c, 0, 1, AppKind::Kvs, 10);
        let req = client.issue(1_000);
        assert_eq!(client.outstanding(), 1);
        assert_eq!(client.on_reply(2_000, &reply(req.id, 0, b"ok")), None);
        assert_eq!(client.on_reply(3_000, &reply(req.id, 1, b"ok")), Some(2_000));
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn mismatched_results_do_not_complete() {
        let c = cfg();
        let mut client = SimClient::new(&c, 0, 1, AppKind::Kvs, 10);
        let req = client.issue(0);
        assert_eq!(client.on_reply(1, &reply(req.id, 0, b"a")), None);
        assert_eq!(client.on_reply(2, &reply(req.id, 1, b"b")), None);
        assert_eq!(client.on_reply(3, &reply(req.id, 2, b"a")), Some(3));
    }

    #[test]
    fn duplicate_replicas_ignored() {
        let c = cfg();
        let mut client = SimClient::new(&c, 0, 1, AppKind::Kvs, 10);
        let req = client.issue(0);
        assert_eq!(client.on_reply(1, &reply(req.id, 0, b"ok")), None);
        assert_eq!(client.on_reply(2, &reply(req.id, 0, b"ok")), None);
    }

    #[test]
    fn multiple_outstanding_requests_tracked_independently() {
        let c = cfg();
        let mut client = SimClient::new(&c, 0, 1, AppKind::Blockchain, 10);
        let r1 = client.issue(0);
        let r2 = client.issue(10);
        assert_eq!(client.outstanding(), 2);
        assert_ne!(r1.id.timestamp, r2.id.timestamp);
        client.on_reply(20, &reply(r2.id, 0, b"x"));
        assert_eq!(client.on_reply(30, &reply(r2.id, 1, b"x")), Some(20));
        assert_eq!(client.outstanding(), 1);
    }

    #[test]
    fn requests_are_authentic() {
        // The real replicas will verify these MACs, so the workload must
        // produce verifiable requests.
        let c = cfg();
        let mut client = SimClient::new(&c, 3, 77, AppKind::Kvs, 10);
        let req = client.issue(0);
        let key = splitbft_crypto::client_mac_key(77, req.client());
        assert!(key.verify(
            &Request::auth_bytes(req.id, &req.op, req.encrypted),
            &req.auth
        ));
    }
}
