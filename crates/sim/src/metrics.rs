//! Throughput / latency / ecall-profile collection.

use crate::des::Ns;
use splitbft_types::CompartmentKind;

/// Metrics accumulated over a simulation's measurement window.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    window_start: Ns,
    window_end: Ns,
    /// Latencies (ns) of requests completed inside the window.
    latencies: Vec<Ns>,
    /// Per-compartment ecall time accumulated on the leader.
    ecall_ns: [u64; 3],
    /// Ecall counts per compartment on the leader.
    ecall_count: [u64; 3],
    /// Batches ordered by the leader in the window.
    pub batches: u64,
    /// Requests executed on the leader in the window.
    pub executed: u64,
}

impl Metrics {
    /// Creates metrics for the window `[start, end)`.
    pub fn new(window_start: Ns, window_end: Ns) -> Self {
        Metrics { window_start, window_end, ..Default::default() }
    }

    /// `true` if `t` falls inside the measurement window.
    pub fn in_window(&self, t: Ns) -> bool {
        t >= self.window_start && t < self.window_end
    }

    /// Records a completed request.
    pub fn record_completion(&mut self, completed_at: Ns, latency: Ns) {
        if self.in_window(completed_at) {
            self.latencies.push(latency);
        }
    }

    /// Records one leader-side ecall.
    pub fn record_ecall(&mut self, t: Ns, kind: CompartmentKind, ns: Ns) {
        if self.in_window(t) {
            self.ecall_ns[kind.index()] += ns;
            self.ecall_count[kind.index()] += 1;
        }
    }

    /// Completed requests in the window.
    pub fn completed(&self) -> usize {
        self.latencies.len()
    }

    /// Throughput over the window, in operations per second.
    pub fn throughput_ops(&self) -> f64 {
        let window = (self.window_end - self.window_start) as f64 / 1e9;
        self.latencies.len() as f64 / window
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.latencies.iter().map(|&l| l as u128).sum();
        (sum as f64 / self.latencies.len() as f64) / 1e6
    }

    /// The given percentile latency in milliseconds (`p` in `0..=100`).
    pub fn percentile_latency_ms(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx] as f64 / 1e6
    }

    /// Mean *total* ecall time attributed to each compartment per
    /// completed request on the leader — the Figure 4 bars (µs).
    pub fn ecall_profile_us_per_request(&self) -> [f64; 3] {
        let n = self.latencies.len().max(1) as f64;
        [
            self.ecall_ns[0] as f64 / n / 1e3,
            self.ecall_ns[1] as f64 / n / 1e3,
            self.ecall_ns[2] as f64 / n / 1e3,
        ]
    }

    /// Same, per ordered batch (batched-mode Figure 4 bars, µs).
    pub fn ecall_profile_us_per_batch(&self) -> [f64; 3] {
        let n = self.batches.max(1) as f64;
        [
            self.ecall_ns[0] as f64 / n / 1e3,
            self.ecall_ns[1] as f64 / n / 1e3,
            self.ecall_ns[2] as f64 / n / 1e3,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_counts_only_window_completions() {
        let mut m = Metrics::new(1_000_000_000, 2_000_000_000);
        m.record_completion(500, 100); // before window
        m.record_completion(1_500_000_000, 1_000_000);
        m.record_completion(2_500_000_000, 1_000_000); // after window
        assert_eq!(m.completed(), 1);
        assert!((m.throughput_ops() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_statistics() {
        let mut m = Metrics::new(0, 10);
        for l in [1_000_000u64, 2_000_000, 3_000_000] {
            m.record_completion(5, l);
        }
        assert!((m.mean_latency_ms() - 2.0).abs() < 1e-9);
        assert!((m.percentile_latency_ms(50.0) - 2.0).abs() < 1e-9);
        assert!((m.percentile_latency_ms(100.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ecall_profile_divides_by_completions() {
        let mut m = Metrics::new(0, 10);
        m.record_completion(1, 10);
        m.record_completion(1, 10);
        m.record_ecall(1, CompartmentKind::Execution, 600_000);
        let profile = m.ecall_profile_us_per_request();
        assert!((profile[2] - 300.0).abs() < 1e-9);
        assert_eq!(profile[0], 0.0);
    }
}
