//! The discrete-event core: virtual time and the event queue.

use splitbft_types::{ConsensusMessage, Reply, Request};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type Ns = u64;

/// A simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A protocol message arrives at a replica.
    Deliver {
        /// Destination replica index.
        node: usize,
        /// The message.
        msg: ConsensusMessage,
    },
    /// A client request arrives at the primary's broker.
    RequestArrival {
        /// Destination replica index (the primary).
        node: usize,
        /// The request.
        request: Request,
    },
    /// The primary's batcher timeout fires.
    BatchFlush {
        /// Replica index.
        node: usize,
    },
    /// A reply arrives at a client.
    ReplyArrival {
        /// Client index.
        client: usize,
        /// The reply.
        reply: Reply,
    },
    /// A client issues its next request (closed loop).
    ClientIssue {
        /// Client index.
        client: usize,
    },
}

#[derive(Debug)]
struct QueuedEvent {
    time: Ns,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: Ns, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, event }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Ns, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.time, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::ClientIssue { client: 3 });
        q.push(10, Event::ClientIssue { client: 1 });
        q.push(20, Event::ClientIssue { client: 2 });
        let order: Vec<Ns> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        for i in 0..10usize {
            q.push(5, Event::ClientIssue { client: i });
        }
        let clients: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::ClientIssue { client } => client,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(clients, (0..10).collect::<Vec<_>>());
    }
}
