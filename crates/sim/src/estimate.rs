//! Compute-cost estimation for protocol steps.
//!
//! The DES drives the real protocol implementations, but wall-clock time
//! on the simulation host says nothing about the paper's testbed. Instead,
//! every handler invocation is charged *virtual* nanoseconds assembled
//! from the [`CostModel`]'s primitives (signature create/verify, HMAC,
//! AEAD, per-event bookkeeping, execution) according to what the handler
//! actually did. The constants are calibrated in
//! [`CostModel::paper_calibrated`] so that the emergent per-compartment
//! ecall totals land in the regime the paper reports (≈ 0.84 ms summed
//! ecalls per unbatched request; Preparation ≈ 0.9 ms per 200-request
//! batch, bounding batched throughput near 227k op/s).

use splitbft_core::ReplicaEvent;
use splitbft_tee::CostModel;
use splitbft_types::{CompartmentKind, ConsensusMessage, Request};

/// Approximate encoded size of a request on the wire.
pub fn request_wire_len(req: &Request) -> usize {
    req.op.len() + 56
}

fn batch_len(msg: &ConsensusMessage) -> (usize, usize) {
    // (number of requests, total op bytes)
    match msg {
        ConsensusMessage::PrePrepare(pp) => (
            pp.payload.batch.len(),
            pp.payload.batch.requests.iter().map(|r| r.op.len()).sum(),
        ),
        _ => (0, 0),
    }
}

/// Virtual compute charged to one SplitBFT compartment for one delivered
/// message (excluding the boundary cost, which the enclave host already
/// charged from real byte counts).
pub fn splitbft_compute(
    kind: CompartmentKind,
    msg: &ConsensusMessage,
    events: &[ReplicaEvent],
    cost: &CostModel,
) -> u64 {
    let executed = events
        .iter()
        .filter(|e| matches!(e, ReplicaEvent::Executed { .. }))
        .count() as u64;
    let persisted =
        events.iter().filter(|e| matches!(e, ReplicaEvent::Persist(_))).count() as u64;
    let committed = events
        .iter()
        .any(|e| matches!(e, ReplicaEvent::Committed { kind: k, .. } if *k == CompartmentKind::Confirmation));

    let base = cost.handler_ns;
    match (kind, msg) {
        // Preparation, handler (2): verify the primary's signature,
        // admit (copy, unmarshal, authenticate) every client request in
        // the batch, sign a Prepare.
        (CompartmentKind::Preparation, ConsensusMessage::PrePrepare(_)) => {
            let (k, bytes) = batch_len(msg);
            base + cost.verify_ns
                + (k as u64) * cost.request_admission_ns
                + (bytes as f64 * cost.serialize_ns_per_byte) as u64
                + cost.sign_ns
        }
        // Confirmation: verify the forwarded proposal header.
        (CompartmentKind::Confirmation, ConsensusMessage::PrePrepare(_)) => base + cost.verify_ns,
        // Execution: hash the batch to bind it to future commits.
        (CompartmentKind::Execution, ConsensusMessage::PrePrepare(_)) => {
            let (_, bytes) = batch_len(msg);
            base + cost.hmac_ns(bytes)
        }
        // Confirmation, handler (3): verify the prepare; if the quorum
        // completed, sign the Commit.
        (CompartmentKind::Confirmation, ConsensusMessage::Prepare(_)) => {
            base + cost.verify_ns + if committed { cost.sign_ns } else { 0 }
        }
        // Execution, handler (4): verify the commit; on execution, per
        // request: re-authenticate, decrypt, execute, encrypt + MAC the
        // reply; per block: seal + ocall.
        (CompartmentKind::Execution, ConsensusMessage::Commit(_)) => {
            base + cost.verify_ns
                + executed * cost.exec_request_ns
                + persisted * cost.block_seal_ns
        }
        // Checkpoints: verify the vote; on emission the snapshot hash and
        // signature are charged where the Broadcast(Checkpoint) appears.
        (_, ConsensusMessage::Checkpoint(c)) => {
            let emits = events.iter().any(|e| {
                matches!(e, ReplicaEvent::Broadcast(ConsensusMessage::Checkpoint(_)))
            });
            base + cost.verify_ns
                + if emits && kind == CompartmentKind::Execution {
                    cost.hmac_ns(c.payload.snapshot.len()) + cost.sign_ns
                } else {
                    0
                }
        }
        // View changes and new views are off the performance path; a flat
        // signature-heavy estimate suffices.
        (_, ConsensusMessage::ViewChange(vc)) => {
            base + cost.verify_ns * (2 + vc.payload.prepared.len() as u64 * 3) + cost.sign_ns
        }
        (_, ConsensusMessage::NewView(nv)) => {
            base + cost.verify_ns * (1 + nv.payload.view_changes.len() as u64)
                + cost.sign_ns
        }
        // Anything else (e.g. a commit reaching Preparation under a
        // hostile broker) just pays the bookkeeping.
        _ => base,
    }
}

/// Virtual compute charged to the Preparation compartment for ordering a
/// client batch (handler 1): authenticate each request, serialize the
/// batch, sign the `PrePrepare`.
pub fn splitbft_client_batch_compute(requests: &[Request], cost: &CostModel) -> u64 {
    let bytes: usize = requests.iter().map(request_wire_len).sum();
    cost.handler_ns
        + requests.len() as u64 * cost.request_admission_ns
        + (bytes as f64 * cost.serialize_ns_per_byte) as u64
        + cost.sign_ns
}

/// Virtual compute of one PBFT step, split into the parallelizable
/// authentication share (worker pool) and the serial protocol share
/// (core thread). `executed` is the number of requests executed during
/// the step and `handled` the number of protocol messages processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbftCompute {
    /// Work offloadable to the 4-worker auth pool.
    pub auth_ns: u64,
    /// Serial protocol-core work.
    pub core_ns: u64,
}

/// Estimates the PBFT baseline's cost for one delivered message.
pub fn pbft_compute(
    msg: &ConsensusMessage,
    actions: &[splitbft_pbft::Action],
    cost: &CostModel,
) -> PbftCompute {
    use splitbft_pbft::Action;
    let executed =
        actions.iter().filter(|a| matches!(a, Action::Executed { .. })).count() as u64;
    let signs = actions
        .iter()
        .filter(|a| matches!(a, Action::Broadcast { .. } | Action::Send { .. }))
        .count() as u64;
    let replies =
        actions.iter().filter(|a| matches!(a, Action::SendReply { .. })).count() as u64;
    let persisted =
        actions.iter().filter(|a| matches!(a, Action::Persist { .. })).count() as u64;

    let verify = match msg {
        ConsensusMessage::PrePrepare(pp) => {
            let k = pp.payload.batch.len() as u64;
            let per_req: u64 = pp
                .payload
                .batch
                .requests
                .iter()
                .map(|r| cost.hmac_ns(r.op.len()))
                .sum();
            cost.verify_ns + per_req + k * (cost.serialize_ns_per_byte * 60.0) as u64
        }
        ConsensusMessage::Checkpoint(c) => cost.verify_ns + cost.hmac_ns(c.payload.snapshot.len() / 8),
        _ => cost.verify_ns,
    };
    let auth_ns = verify + signs * cost.sign_ns + replies * cost.hmac_ns(16);
    // Block persistence costs PBFT too (plain file I/O: roughly half the
    // sealed-write cost SplitBFT pays inside the enclave).
    let core_ns =
        cost.handler_ns + executed * cost.exec_ns_per_op + persisted * cost.block_seal_ns / 2;
    PbftCompute { auth_ns, core_ns }
}

/// PBFT primary cost for ordering a client batch.
pub fn pbft_client_batch_compute(requests: &[Request], cost: &CostModel) -> PbftCompute {
    let auth: u64 = requests.iter().map(|r| cost.hmac_ns(r.op.len())).sum();
    PbftCompute { auth_ns: auth + cost.sign_ns, core_ns: cost.handler_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::{
        ClientId, Digest, PrePrepare, RequestBatch, RequestId, SeqNum, Signature, Signed,
        SignerId, Timestamp, View,
    };

    fn request(bytes: usize) -> Request {
        Request {
            id: RequestId { client: ClientId(0), timestamp: Timestamp(1) },
            op: Bytes::from(vec![0u8; bytes]),
            encrypted: false,
            auth: [0u8; 32],
        }
    }

    fn pre_prepare(k: usize) -> ConsensusMessage {
        let batch = RequestBatch::new((0..k).map(|_| request(10)).collect());
        ConsensusMessage::PrePrepare(Signed::new(
            PrePrepare { view: View(0), seq: SeqNum(1), digest: Digest::ZERO, batch },
            SignerId::Replica(splitbft_types::ReplicaId(0)),
            Signature::ZERO,
        ))
    }

    #[test]
    fn preparation_cost_scales_with_batch_size() {
        let cost = CostModel::paper_calibrated();
        let small = splitbft_compute(CompartmentKind::Preparation, &pre_prepare(1), &[], &cost);
        let large = splitbft_compute(CompartmentKind::Preparation, &pre_prepare(200), &[], &cost);
        // Per-request authentication makes the 200-request ecall several
        // times the single-request one (it cannot be 200× — the signature
        // verification is paid once either way).
        assert!(large > small * 3, "large {large} vs small {small}");
    }

    #[test]
    fn confirmation_cost_is_batch_size_independent() {
        // "Ecalls to the Confirmation compartment are similar to the
        // unbatched mode since this compartment only handles a hash."
        let cost = CostModel::paper_calibrated();
        let small = splitbft_compute(CompartmentKind::Confirmation, &pre_prepare(1), &[], &cost);
        let large = splitbft_compute(CompartmentKind::Confirmation, &pre_prepare(200), &[], &cost);
        assert_eq!(small, large);
    }

    #[test]
    fn unbatched_ecall_totals_match_paper_regime() {
        // Per unbatched request on the leader, summed compartment compute
        // should land in the high-hundreds of microseconds (the paper
        // reports 841 µs including boundary costs).
        let cost = CostModel::paper_calibrated();
        let pp = pre_prepare(1);
        let prep = splitbft_client_batch_compute(&[request(10)], &cost);
        let conf_pp = splitbft_compute(CompartmentKind::Confirmation, &pp, &[], &cost);
        let prepare = ConsensusMessage::Prepare(Signed::new(
            splitbft_types::Prepare {
                view: View(0),
                seq: SeqNum(1),
                digest: Digest::ZERO,
                replica: splitbft_types::ReplicaId(1),
            },
            SignerId::Replica(splitbft_types::ReplicaId(1)),
            Signature::ZERO,
        ));
        let conf_prep =
            2 * splitbft_compute(CompartmentKind::Confirmation, &prepare, &[], &cost);
        let commit = ConsensusMessage::Commit(Signed::new(
            splitbft_types::Commit {
                view: View(0),
                seq: SeqNum(1),
                digest: Digest::ZERO,
                replica: splitbft_types::ReplicaId(1),
            },
            SignerId::Replica(splitbft_types::ReplicaId(1)),
            Signature::ZERO,
        ));
        let exec = 3 * splitbft_compute(CompartmentKind::Execution, &commit, &[], &cost)
            + splitbft_compute(CompartmentKind::Execution, &pp, &[], &cost);
        let total = prep + conf_pp + conf_prep + exec;
        assert!(
            (500_000..1_200_000).contains(&total),
            "summed per-request ecall compute {total} ns outside the paper's regime"
        );
        // Execution is the heaviest compartment without batching.
        assert!(exec > conf_pp + conf_prep);
    }

    #[test]
    fn pbft_core_work_is_much_smaller_than_auth_work() {
        let cost = CostModel::paper_calibrated();
        let c = pbft_compute(&pre_prepare(1), &[], &cost);
        assert!(c.auth_ns > c.core_ns, "auth dominates and is parallelized");
    }
}
