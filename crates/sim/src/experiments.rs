//! The simulation driver: one call = one data point of the paper's
//! evaluation.

use crate::des::{Event, EventQueue, Ns};
use crate::metrics::Metrics;
use crate::protocols::{PbftNode, ProtocolNode, SplitBftNode, SplitThreading, ThreadSel};
use crate::workload::SimClient;
pub use crate::workload::AppKind;
use splitbft_app::{Blockchain, KeyValueStore};
use splitbft_core::SplitBftReplica;
use splitbft_net::link::{LinkFate, LinkModel, NetConfig};
use splitbft_pbft::{Batcher, Replica as PbftReplica};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{BatchConfig, ClusterConfig, ConsensusMessage, ReplicaId};

/// Which system is being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// SplitBFT with hardware-cost enclaves and one thread per enclave.
    SplitBft,
    /// SplitBFT in SGX *simulation mode* (free transitions).
    SplitBftSimMode,
    /// SplitBFT with a single thread performing all ecalls.
    SplitBftSingleThread,
    /// The plain PBFT baseline.
    Pbft,
}

impl SystemKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::SplitBft => "SplitBFT",
            SystemKind::SplitBftSimMode => "SplitBFT Simulation",
            SystemKind::SplitBftSingleThread => "SplitBFT Single Thread",
            SystemKind::Pbft => "PBFT",
        }
    }
}

/// One simulated configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The system under test.
    pub system: SystemKind,
    /// The replicated application.
    pub app: AppKind,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Batching policy (the paper: unbatched, or 200 requests / 10 ms).
    pub batch: BatchConfig,
    /// Outstanding requests per client (1 unbatched, 40 batched).
    pub outstanding: usize,
    /// Request payload bytes (the paper uses 10).
    pub payload: usize,
    /// Total virtual run time.
    pub duration_ns: Ns,
    /// Measurement starts after this warm-up.
    pub warmup_ns: Ns,
    /// PRNG seed (network jitter, key derivation).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's unbatched setup for `clients` clients.
    pub fn unbatched(system: SystemKind, app: AppKind, clients: usize) -> Self {
        SimConfig {
            system,
            app,
            clients,
            batch: BatchConfig::unbatched(),
            outstanding: 1,
            payload: 10,
            duration_ns: 600_000_000,
            warmup_ns: 150_000_000,
            seed: 1,
        }
    }

    /// The paper's batched setup (batch = 200 or 10 ms, 40 outstanding).
    pub fn batched(system: SystemKind, app: AppKind, clients: usize) -> Self {
        SimConfig {
            batch: BatchConfig::paper_batched(),
            outstanding: 40,
            duration_ns: 400_000_000,
            warmup_ns: 100_000_000,
            ..Self::unbatched(system, app, clients)
        }
    }
}

/// The measured outcome of one configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Throughput over the measurement window (op/s).
    pub throughput_ops: f64,
    /// Mean request latency (ms).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Requests completed in the window.
    pub completed: usize,
    /// Mean ecall time per request on the leader, per compartment
    /// `[prep, conf, exec]` in µs (Figure 4, unbatched interpretation).
    pub ecall_us_per_request: [f64; 3],
    /// Mean ecall time per ordered batch on the leader, per compartment
    /// (Figure 4, batched interpretation).
    pub ecall_us_per_batch: [f64; 3],
}

const N_REPLICAS: usize = 4;

fn build_nodes(cfg: &SimConfig, cluster: &ClusterConfig) -> Vec<Box<dyn ProtocolNode>> {
    let seed = cfg.seed;
    let mk_split = |mode: ExecMode, threading: SplitThreading| -> Vec<Box<dyn ProtocolNode>> {
        let cost = match mode {
            ExecMode::Hardware => CostModel::paper_calibrated(),
            ExecMode::Simulation => CostModel::simulation_mode(),
        };
        (0..N_REPLICAS as u32)
            .map(|i| -> Box<dyn ProtocolNode> {
                match cfg.app {
                    AppKind::Kvs => Box::new(SplitBftNode::new(
                        SplitBftReplica::new(
                            cluster.clone(),
                            ReplicaId(i),
                            seed,
                            KeyValueStore::new(),
                            mode,
                            cost.clone(),
                        ),
                        cost.clone(),
                        threading,
                    )),
                    AppKind::Blockchain => Box::new(SplitBftNode::new(
                        SplitBftReplica::new(
                            cluster.clone(),
                            ReplicaId(i),
                            seed,
                            Blockchain::new(),
                            mode,
                            cost.clone(),
                        ),
                        cost.clone(),
                        threading,
                    )),
                }
            })
            .collect()
    };
    match cfg.system {
        SystemKind::SplitBft => mk_split(ExecMode::Hardware, SplitThreading::PerEnclave),
        SystemKind::SplitBftSimMode => mk_split(ExecMode::Simulation, SplitThreading::PerEnclave),
        SystemKind::SplitBftSingleThread => {
            mk_split(ExecMode::Hardware, SplitThreading::Single)
        }
        SystemKind::Pbft => {
            let cost = CostModel::paper_calibrated();
            (0..N_REPLICAS as u32)
                .map(|i| -> Box<dyn ProtocolNode> {
                    match cfg.app {
                        AppKind::Kvs => Box::new(PbftNode::new(
                            PbftReplica::new(
                                cluster.clone(),
                                ReplicaId(i),
                                seed,
                                KeyValueStore::new(),
                            ),
                            cost.clone(),
                        )),
                        AppKind::Blockchain => Box::new(PbftNode::new(
                            PbftReplica::new(
                                cluster.clone(),
                                ReplicaId(i),
                                seed,
                                Blockchain::new(),
                            ),
                            cost.clone(),
                        )),
                    }
                })
                .collect()
        }
    }
}

/// Runs one configuration to completion and reports its metrics.
pub fn run_point(cfg: &SimConfig) -> SimResult {
    let cluster = ClusterConfig::new(N_REPLICAS).expect("4 replicas");
    let mut nodes = build_nodes(cfg, &cluster);
    let mut busy: Vec<Vec<Ns>> = nodes.iter().map(|n| vec![0; n.thread_count()]).collect();
    let mut clients: Vec<SimClient> = (0..cfg.clients)
        .map(|i| SimClient::new(&cluster, i, cfg.seed, cfg.app, cfg.payload))
        .collect();
    let mut link = LinkModel::new(NetConfig::datacenter(), cfg.seed);
    let mut queue = EventQueue::new();
    let mut metrics = Metrics::new(cfg.warmup_ns, cfg.duration_ns);
    let mut batcher = Batcher::new(cfg.batch);
    let mut flush_armed = false;
    // Client→primary connections are FIFO (TCP in the paper's testbed):
    // jitter must not reorder one client's requests, or a timestamp
    // regression would make replicas silently drop the older request.
    let mut last_arrival: Vec<Ns> = vec![0; cfg.clients];

    // Prime the closed loop, lightly staggered so arrival order is
    // deterministic but not fully synchronized.
    for (i, _) in clients.iter().enumerate() {
        for k in 0..cfg.outstanding {
            queue.push((i as u64) * 997 + (k as u64) * 10_007, Event::ClientIssue { client: i });
        }
    }

    let horizon = cfg.duration_ns + cfg.duration_ns / 2;
    while let Some((now, event)) = queue.pop() {
        if now > horizon {
            break;
        }
        match event {
            Event::ClientIssue { client } => {
                if now >= cfg.duration_ns {
                    continue; // wind down: stop issuing, let the tail drain
                }
                let request = clients[client].issue(now);
                let len = crate::estimate::request_wire_len(&request);
                if let LinkFate::Deliver { delay_ns } = link.fate(len) {
                    let at = (now + delay_ns).max(last_arrival[client] + 1);
                    last_arrival[client] = at;
                    queue.push(at, Event::RequestArrival { node: 0, request });
                }
            }
            Event::RequestArrival { node, request } => {
                if let Some(batch) = batcher.push(request, now / 1_000) {
                    let step = nodes[node].on_client_batch(batch);
                    metrics.batches += u64::from(metrics.in_window(now));
                    process_step(
                        now, node, step, &mut nodes, &mut busy, &mut link, &mut queue,
                        &mut metrics, cfg,
                    );
                } else if !flush_armed {
                    if let Some(deadline_us) = batcher.next_deadline_us() {
                        flush_armed = true;
                        queue.push(deadline_us * 1_000, Event::BatchFlush { node });
                    }
                }
            }
            Event::BatchFlush { node } => {
                flush_armed = false;
                if let Some(batch) = batcher.poll(now / 1_000) {
                    if !batch.is_empty() {
                        let step = nodes[node].on_client_batch(batch);
                        metrics.batches += u64::from(metrics.in_window(now));
                        process_step(
                            now, node, step, &mut nodes, &mut busy, &mut link, &mut queue,
                            &mut metrics, cfg,
                        );
                    }
                } else if let Some(deadline_us) = batcher.next_deadline_us() {
                    flush_armed = true;
                    queue.push(deadline_us.max(now / 1_000 + 1) * 1_000, Event::BatchFlush { node });
                }
            }
            Event::Deliver { node, msg } => {
                let step = nodes[node].on_message(msg);
                process_step(
                    now, node, step, &mut nodes, &mut busy, &mut link, &mut queue,
                    &mut metrics, cfg,
                );
            }
            Event::ReplyArrival { client, reply } => {
                if let Some(latency) = clients[client].on_reply(now, &reply) {
                    metrics.record_completion(now, latency);
                    if now < cfg.duration_ns {
                        queue.push(now, Event::ClientIssue { client });
                    }
                }
            }
        }
    }

    SimResult {
        throughput_ops: metrics.throughput_ops(),
        mean_latency_ms: metrics.mean_latency_ms(),
        p99_latency_ms: metrics.percentile_latency_ms(99.0),
        completed: metrics.completed(),
        ecall_us_per_request: metrics.ecall_profile_us_per_request(),
        ecall_us_per_batch: metrics.ecall_profile_us_per_batch(),
    }
}

#[allow(clippy::too_many_arguments)]
fn process_step(
    now: Ns,
    node_idx: usize,
    step: crate::protocols::StepResult,
    nodes: &mut [Box<dyn ProtocolNode>],
    busy: &mut [Vec<Ns>],
    link: &mut LinkModel,
    queue: &mut EventQueue,
    metrics: &mut Metrics,
    cfg: &SimConfig,
) {
    // Schedule compute. Usage entries form a dependency chain (a message
    // is authenticated before the protocol core handles it; a loopback
    // ecall runs after the ecall that produced its input), while each
    // thread additionally serializes everything assigned to it.
    {
        let threads = &mut busy[node_idx];
        let pool = nodes[node_idx].pool();
        let mut prev_end = now;
        for entry in &step.usage {
            let thread = match entry.sel {
                ThreadSel::Fixed(i) => i,
                ThreadSel::Pool => {
                    let range = pool.clone().expect("pool usage on pool-less node");
                    range
                        .clone()
                        .min_by_key(|&i| threads[i])
                        .expect("non-empty pool")
                }
            };
            let ready = if entry.after_prev { prev_end } else { now };
            let start = ready.max(threads[thread]);
            threads[thread] = start + entry.ns;
            prev_end = threads[thread];
        }
    }

    // Figure 4 data: leader-side ecall profile.
    if node_idx == 0 {
        for (kind, ns) in &step.ecalls {
            metrics.record_ecall(now, *kind, *ns);
        }
    }

    // Outbound messages leave when their producing thread finishes.
    for msg in step.sends {
        let depart = busy[node_idx][nodes[node_idx].send_thread(&msg)].max(now);
        let len = wire_len(&msg);
        for peer in 0..nodes.len() {
            if peer == node_idx {
                continue;
            }
            if let LinkFate::Deliver { delay_ns } = link.fate(len) {
                queue.push(depart + delay_ns, Event::Deliver { node: peer, msg: msg.clone() });
            }
        }
    }

    // Replies travel back to their clients.
    let reply_depart = busy[node_idx][nodes[node_idx].reply_thread()].max(now);
    for (client, reply) in step.replies {
        let idx = client.as_usize();
        if idx >= cfg.clients {
            continue;
        }
        let len = reply.result.len() + 64;
        if let LinkFate::Deliver { delay_ns } = link.fate(len) {
            queue.push(reply_depart + delay_ns, Event::ReplyArrival { client: idx, reply });
        }
    }
}

fn wire_len(msg: &ConsensusMessage) -> usize {
    splitbft_types::wire::encode(msg).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind, app: AppKind, clients: usize, batched: bool) -> SimResult {
        let mut cfg = if batched {
            SimConfig::batched(system, app, clients)
        } else {
            SimConfig::unbatched(system, app, clients)
        };
        cfg.duration_ns = 80_000_000;
        cfg.warmup_ns = 20_000_000;
        run_point(&cfg)
    }

    #[test]
    fn splitbft_kvs_makes_progress() {
        let r = quick(SystemKind::SplitBft, AppKind::Kvs, 10, false);
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.throughput_ops > 500.0, "throughput {}", r.throughput_ops);
        assert!(r.mean_latency_ms > 0.0);
    }

    #[test]
    fn pbft_outperforms_splitbft_unbatched() {
        let split = quick(SystemKind::SplitBft, AppKind::Kvs, 60, false);
        let pbft = quick(SystemKind::Pbft, AppKind::Kvs, 60, false);
        assert!(
            pbft.throughput_ops > split.throughput_ops,
            "pbft {} vs splitbft {}",
            pbft.throughput_ops,
            split.throughput_ops
        );
        // The paper: SplitBFT reaches 43%–74% of PBFT for the KVS.
        let ratio = split.throughput_ops / pbft.throughput_ops;
        assert!((0.3..0.95).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_thread_is_slower_than_per_enclave_threads() {
        let multi = quick(SystemKind::SplitBft, AppKind::Kvs, 60, false);
        let single = quick(SystemKind::SplitBftSingleThread, AppKind::Kvs, 60, false);
        assert!(
            single.throughput_ops < multi.throughput_ops,
            "single {} vs multi {}",
            single.throughput_ops,
            multi.throughput_ops
        );
    }

    #[test]
    fn sim_mode_is_faster_than_hardware_mode() {
        let hw = quick(SystemKind::SplitBft, AppKind::Kvs, 60, false);
        let sim = quick(SystemKind::SplitBftSimMode, AppKind::Kvs, 60, false);
        assert!(
            sim.throughput_ops >= hw.throughput_ops,
            "sim {} vs hw {}",
            sim.throughput_ops,
            hw.throughput_ops
        );
    }

    #[test]
    fn blockchain_is_slower_than_kvs() {
        let kvs = quick(SystemKind::SplitBft, AppKind::Kvs, 60, false);
        let chain = quick(SystemKind::SplitBft, AppKind::Blockchain, 60, false);
        assert!(
            chain.throughput_ops < kvs.throughput_ops,
            "blockchain {} vs kvs {}",
            chain.throughput_ops,
            kvs.throughput_ops
        );
    }

    #[test]
    fn batching_improves_throughput_dramatically() {
        let unbatched = quick(SystemKind::SplitBft, AppKind::Kvs, 60, false);
        let batched = quick(SystemKind::SplitBft, AppKind::Kvs, 60, true);
        assert!(
            batched.throughput_ops > unbatched.throughput_ops * 5.0,
            "batched {} vs unbatched {}",
            batched.throughput_ops,
            unbatched.throughput_ops
        );
    }

    #[test]
    fn execution_dominates_unbatched_ecalls() {
        let r = quick(SystemKind::SplitBft, AppKind::Kvs, 40, false);
        let [prep, conf, exec] = r.ecall_us_per_request;
        assert!(exec > prep, "exec {exec} vs prep {prep}");
        assert!(exec > conf * 0.8, "exec {exec} vs conf {conf}");
    }

    #[test]
    fn same_seed_same_result() {
        let a = quick(SystemKind::SplitBft, AppKind::Kvs, 20, false);
        let b = quick(SystemKind::SplitBft, AppKind::Kvs, 20, false);
        assert_eq!(a.completed, b.completed);
        assert!((a.throughput_ops - b.throughput_ops).abs() < 1e-9);
        assert!((a.mean_latency_ms - b.mean_latency_ms).abs() < 1e-9);
    }
}
