//! Non-vacuity proof for the chaos safety cross-check.
//!
//! The [`SafetyMonitor`](splitbft_chaos::probe::SafetyMonitor) only
//! ever reports violations through the `QuorumTracker` → `CommitLog`
//! pipeline, so these tests hand-forge exactly the trace a forked
//! cluster would produce — two distinct requests each backed by a full
//! `f + 1` MAC-verified reply quorum claiming the *same* unique counter
//! value — and prove the pipeline flags it. Without this, a cross-check
//! that silently never fires would make every chaos run vacuously
//! "safe".

use bytes::Bytes;
use splitbft_crypto::client_mac_key;
use splitbft_loadgen::{CommitLog, QuorumTracker};
use splitbft_model::Adversary;
use splitbft_types::{ClientId, ReplicaId, RequestId, Timestamp, View};

const SEED: u64 = 77;
const QUORUM: usize = 3; // f + 1 at n = 7, f = 2

fn request(client: u32, ts: u64) -> RequestId {
    RequestId { client: ClientId(client), timestamp: Timestamp(ts) }
}

/// Drives `request` through a fresh tracker with `QUORUM` forged
/// replies all claiming `result`, returning the agreed bytes.
fn forge_quorum(adversary: &Adversary, request: RequestId, result: &[u8]) -> Bytes {
    let mut tracker =
        QuorumTracker::new(client_mac_key(SEED, request.client), QUORUM);
    let mut agreed = None;
    for replica in 0..QUORUM as u32 {
        let reply = adversary.forge_reply(
            request,
            ReplicaId(replica),
            View(0),
            Bytes::copy_from_slice(result),
        );
        agreed = tracker.on_reply(&reply).or(agreed);
    }
    agreed.expect("f + 1 matching MAC-verified replies must reach quorum")
}

#[test]
fn forged_conflicting_commit_quorums_trip_the_cross_check() {
    // The adversary needs no replica signing keys for this: replies are
    // MAC'd under per-client keys it derives from the master seed, the
    // same way a fully compromised replica set could.
    let adversary = Adversary::new(SEED, []);
    let fork_value = 41u64.to_le_bytes();

    let first = request(32, 1);
    let second = request(33, 1);
    let mut log = CommitLog::new();

    let result = forge_quorum(&adversary, first, &fork_value);
    log.record(first, &result).expect("first claim of a slot is clean");

    // A retransmission of the *same* request completing again is not a
    // fork and must stay silent.
    log.record(first, &result).expect("same request re-completing is benign");

    let result = forge_quorum(&adversary, second, &fork_value);
    let conflict = log
        .record(second, &result)
        .expect_err("two requests committing one unique counter value is a fork");
    let msg = conflict.to_string();
    assert!(msg.contains("safety violation"), "got: {msg}");
    assert_eq!(log.len(), 1, "the forked slot stays claimed by its first owner");
}

#[test]
fn distinct_results_never_trip_the_cross_check() {
    let adversary = Adversary::new(SEED, []);
    let mut log = CommitLog::new();
    // An honest history: every inc returns a fresh value.
    for (client, value) in [(32u32, 7u64), (33, 8), (34, 9)] {
        let id = request(client, 1);
        let result = forge_quorum(&adversary, id, &value.to_le_bytes());
        log.record(id, &result).expect("unique results must all record cleanly");
    }
    assert_eq!(log.len(), 3);
}

#[test]
fn bad_macs_cannot_reach_a_quorum_at_all() {
    // A fork "observed" through unverified replies would be noise, not
    // evidence; the tracker must discard them before the log ever sees
    // a result.
    let adversary = Adversary::new(SEED, []);
    let id = request(32, 1);
    let mut tracker = QuorumTracker::new(client_mac_key(SEED, id.client), QUORUM);
    for replica in 0..QUORUM as u32 {
        let mut reply = adversary.forge_reply(
            id,
            ReplicaId(replica),
            View(0),
            Bytes::from_static(b"evil"),
        );
        reply.auth[0] ^= 0xFF;
        assert!(tracker.on_reply(&reply).is_none(), "corrupted MACs must not count");
    }
}
