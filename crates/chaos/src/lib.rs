//! Chaos orchestration plane: scripted whole-cluster failure sequences
//! against live subprocess clusters under load.
//!
//! The durability plane (WAL, sealed checkpoints, peer state transfer)
//! made single crashes survivable; this crate makes *failure sequences*
//! a first-class, repeatable workload. A [`schedule::Schedule`] is a
//! deterministic list of fault steps — rolling restarts of every
//! replica, repeated SIGKILLs of one, primary-targeted kills across
//! view changes, staggered cold starts — that [`run_scenario`] executes
//! against a real `splitbft-node serve` subprocess cluster while a
//! background load generator keeps committing. After each phase it
//! asserts the recovery story end to end:
//!
//! 1. **commits advance** — a quorum counter read strictly increased;
//! 2. **the victim rejoins** — its `STATUS` snapshot reports recovery
//!    finished and execution progress caught up to the live peers'
//!    frontier ([`probe::await_rejoin_via_status`]);
//! 3. **how it rejoined is observable** — the victim's structured
//!    event journal, polled over `STATUS` with a phase-scoped
//!    [`cluster::EventCursor`], is distilled into
//!    [`cluster::RejoinEvidence`], distinguishing the log-suffix path
//!    from a checkpoint restore from pure WAL replay.
//!
//! Results land as `BENCH_chaos_<scenario>_<protocol>.json`
//! ([`report::ChaosReport`]), next to the regular bench reports.
//!
//! The `splitbft-node chaos` subcommand is the command-line entry
//! point; this crate stays protocol-agnostic (the protocol is a string
//! in the cluster file, the quorum size a number), so it never depends
//! on the node crate that embeds it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod probe;
pub mod report;
pub mod schedule;

pub use cluster::{ChaosCluster, ClusterSpec, EventCursor, RejoinEvidence};
pub use error::ChaosError;
pub use report::{ChaosReport, GroupCommitDelta, GroupCommitSample, PhaseOutcome};
pub use schedule::{FaultStep, Phase, Schedule};

use splitbft_loadgen::driver::{self, DriverConfig};
use splitbft_net::backend::TransportKind;
use splitbft_net::fault::broadcast_fault_command;
use splitbft_types::{ClientId, FaultCommand, LinkRule, ReplicaId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything one chaos run needs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Path to the `splitbft-node` binary to spawn replicas from.
    pub serve_binary: PathBuf,
    /// Protocol name as the CLI spells it.
    pub protocol: String,
    /// Cluster size.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// `f + 1` for the protocol at size `n` (the caller knows the
    /// protocol's arithmetic).
    pub reply_quorum: usize,
    /// View-change timer period for the replicas.
    pub timeout_ms: u64,
    /// WAL group-commit linger for the replicas (`0` = off).
    pub wal_group_commit_us: u64,
    /// Consensus groups per replica (written into the cluster file as
    /// the `shards` key when above one). The chaos probes drive the
    /// counter app, which pins to shard 0, so a sharded run asserts
    /// that fault recovery and liveness survive with the *other* shards
    /// idle — every shard still recovers its own WAL on restart.
    pub shards: u32,
    /// Socket backend the replicas serve on (both speak the same wire
    /// format, so probes, load clients, and FAULT_CONTROL frames are
    /// backend-agnostic).
    pub transport: TransportKind,
    /// Scratch root (cluster file, data dirs, stderr logs).
    pub root: PathBuf,
    /// Background-load client threads.
    pub load_clients: usize,
    /// Outstanding requests per load client.
    pub load_pipeline: usize,
    /// Offered background load in requests/second (open loop). Chaos
    /// load is *fixed-rate by design*: a closed loop saturates the
    /// surviving replicas, and a victim that replays at less than
    /// saturation speed can then never reach the live edge to rejoin.
    /// A modest steady rate keeps commits advancing while leaving
    /// victims headroom to catch up.
    pub load_rate: f64,
    /// Budget for each victim's rejoin.
    pub rejoin_timeout: Duration,
    /// Budget for each commit probe.
    pub probe_timeout: Duration,
    /// Keep the scratch root on teardown (post-mortems).
    pub keep_data: bool,
}

impl ChaosConfig {
    /// Sensible defaults around the required knobs.
    pub fn new(
        serve_binary: PathBuf,
        protocol: impl Into<String>,
        n: usize,
        reply_quorum: usize,
        root: PathBuf,
    ) -> Self {
        ChaosConfig {
            serve_binary,
            protocol: protocol.into(),
            n,
            seed: 42,
            reply_quorum,
            timeout_ms: 400,
            wal_group_commit_us: 200,
            shards: 1,
            transport: TransportKind::default(),
            root,
            load_clients: 3,
            load_pipeline: 4,
            load_rate: 150.0,
            rejoin_timeout: Duration::from_secs(45),
            probe_timeout: Duration::from_secs(30),
            keep_data: false,
        }
    }
}

/// Client-id lanes: the background load uses `1000+`, probes count up
/// from here so no id is ever reused across roles.
const PROBE_CLIENT_BASE: u32 = 64;

/// Background load that survives the whole scenario: short driver
/// chunks in a loop (each chunk reconnects, so replicas restarted
/// mid-run are picked back up), accumulated into one total.
struct BackgroundLoad {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(u64, u64, u64)>,
}

impl BackgroundLoad {
    fn start(config: &ChaosConfig, addrs: Vec<std::net::SocketAddr>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let seed = config.seed;
        let quorum = config.reply_quorum;
        let clients = config.load_clients.max(1);
        let pipeline = config.load_pipeline.max(1);
        let rate = config.load_rate.max(1.0);
        let handle = std::thread::Builder::new()
            .name("chaos-load".into())
            .spawn(move || {
                let (mut issued, mut completed, mut timed_out) = (0u64, 0u64, 0u64);
                while !stop_flag.load(Ordering::SeqCst) {
                    let mut cfg = DriverConfig::new(addrs.clone(), seed, quorum);
                    cfg.clients = clients;
                    cfg.pipeline = pipeline;
                    cfg.mode = driver::LoadMode::Open { rate };
                    cfg.duration = Duration::from_secs(2);
                    cfg.retry_every = Duration::from_millis(500);
                    cfg.drain_timeout = Duration::from_secs(5);
                    cfg.connect_timeout = Duration::from_secs(3);
                    // Leadership-agnostic: kills move the primary mid-run,
                    // so every submission broadcasts (out-of-range index)
                    // instead of betting on a view-0 address.
                    cfg.primary_index = usize::MAX;
                    match driver::run(&cfg) {
                        Ok(stats) => {
                            issued += stats.issued;
                            completed += stats.completed;
                            timed_out += stats.timed_out;
                        }
                        // No quorum up yet (staggered start) or all
                        // replicas briefly unreachable: back off, retry.
                        Err(_) => std::thread::sleep(Duration::from_millis(300)),
                    }
                }
                (issued, completed, timed_out)
            })
            .expect("spawn chaos load thread");
        BackgroundLoad { stop, handle }
    }

    fn stop(self) -> (u64, u64, u64) {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("chaos load thread panicked")
    }
}

/// Rejects schedules that cannot possibly pass on this protocol or
/// cluster shape *before* any subprocess spawns.
///
/// The rules encode protocol facts, not taste:
///
/// - the hybrid (`minbft`) has no view change, so killing or
///   symmetrically cutting off its fixed primary wedges the cluster by
///   design — there is nothing to assert but a hang;
/// - the hybrid's USIG counter makes primary equivocation unforgeable,
///   so `equivocating-primary` would silently serve honestly and the
///   scenario would vacuously "pass";
/// - a symmetric partition whose smaller side exceeds `f` leaves *no*
///   component with a live commit quorum, so every `expect_advance`
///   phase under the cut is doomed.
///
/// # Errors
///
/// [`ChaosError::Unsupported`] naming the scenario, protocol and rule.
pub fn validate(config: &ChaosConfig, schedule: &Schedule) -> Result<(), ChaosError> {
    let unsupported = |reason: String| ChaosError::Unsupported {
        scenario: schedule.scenario.clone(),
        protocol: config.protocol.clone(),
        reason,
    };
    let minbft = config.protocol == "minbft";
    let f = config.reply_quorum.saturating_sub(1);

    if config.shards == 0 {
        return Err(unsupported("shards must be at least 1".into()));
    }
    if minbft {
        if schedule.scenario == "primary-kill" {
            return Err(unsupported(
                "the hybrid has a fixed primary and no view change; killing it \
                 wedges the cluster by design"
                    .into(),
            ));
        }
        if schedule.byzantine.iter().any(|(_, mode)| mode == "equivocating-primary") {
            return Err(unsupported(
                "the USIG's monotone counter makes primary equivocation \
                 unforgeable, so the mode would silently serve honestly and \
                 the scenario would vacuously pass"
                    .into(),
            ));
        }
    }
    for phase in &schedule.phases {
        for step in &phase.steps {
            // Frame loss on the hybrid's fixed-primary links is
            // unrecoverable by design: no view change can move traffic
            // off the primary, so sustained drops starve USIG quorums.
            if let FaultStep::DegradeLink { from, to, drop_percent, .. } = step {
                if minbft && *drop_percent > 0 && (*from == 0 || *to == 0) {
                    return Err(unsupported(format!(
                        "link {from} -> {to} drops {drop_percent}% of frames on the \
                         fixed primary's path, and there is no view change to \
                         route around sustained loss"
                    )));
                }
                continue;
            }
            let FaultStep::Partition { name, side_a, side_b, symmetric } = step else {
                continue;
            };
            if !symmetric {
                continue;
            }
            // Unlisted replicas stay connected to both sides, so the two
            // components have n - |side_b| and n - |side_a| members: the
            // larger one holds a commit quorum (n - f) exactly when the
            // smaller named side fits inside f.
            let smaller = side_a.len().min(side_b.len());
            if smaller > f {
                return Err(unsupported(format!(
                    "partition {name:?} cuts {smaller} replicas off at once but \
                     f = {f}: no component keeps a live commit quorum, so \
                     commits cannot advance under the cut"
                )));
            }
            if minbft && (side_a.contains(&0) || side_b.contains(&0)) {
                let other = if side_a.contains(&0) { side_b.len() } else { side_a.len() };
                if other > f {
                    return Err(unsupported(format!(
                        "partition {name:?} cuts the fixed primary off from \
                         {other} replicas but f = {f}: it cannot reach a USIG \
                         quorum across the cut and there is no view change to \
                         route around it"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Executes one scenario end to end and writes nothing — the caller
/// owns report persistence (and may attach a group-commit A/B first).
///
/// While the schedule runs, a [`probe::SafetyMonitor`] commits its own
/// authenticated `inc` stream and cross-checks every quorum-accepted
/// result for duplicates — a committed fork fails the run even if every
/// phase's liveness assertion held.
///
/// # Errors
///
/// [`ChaosError::Unsupported`] before anything spawns (see
/// [`validate`]); [`ChaosError::Io`] for cluster/spawn/probe I/O; and
/// [`ChaosError::Failed`] — carrying the complete report — when a phase
/// assertion (commits stalled where they must advance, a victim that
/// never rejoined) or the safety cross-check failed.
pub fn run_scenario(config: &ChaosConfig, schedule: &Schedule) -> Result<ChaosReport, ChaosError> {
    validate(config, schedule)?;
    let spec = ClusterSpec {
        serve_binary: config.serve_binary.clone(),
        protocol: config.protocol.clone(),
        n: config.n,
        seed: config.seed,
        timeout_ms: config.timeout_ms,
        wal_group_commit_us: config.wal_group_commit_us,
        shards: config.shards,
        transport: config.transport,
        root: config.root.clone(),
        byzantine: schedule.byzantine.clone(),
    };
    let mut cluster = ChaosCluster::prepare(spec)?;
    let mut probe_client = PROBE_CLIENT_BASE;
    let mut next_probe = || {
        probe_client += 1;
        ClientId(probe_client)
    };
    // Which replicas we believe are up: commit probes are skipped while
    // fewer than n-1 run (below every protocol's consensus quorum here),
    // so staggered starts don't burn probe timeouts against a cluster
    // that cannot commit yet.
    let mut live = vec![schedule.start_all; config.n];
    let quorum_live = config.n.saturating_sub(1).max(1);

    if schedule.start_all {
        cluster.start_all()?;
        // Up once a quorum answers a read end to end.
        probe::read_counter(
            &cluster.addrs,
            config.seed,
            config.reply_quorum,
            next_probe(),
            config.probe_timeout,
        )?;
    }

    let load = BackgroundLoad::start(config, cluster.addrs.clone());
    let safety = probe::SafetyMonitor::start(
        cluster.addrs.clone(),
        config.seed,
        config.reply_quorum,
        2,
    );
    let mut phases = Vec::with_capacity(schedule.phases.len());
    let mut failure: Option<String> = None;

    'phases: for phase in &schedule.phases {
        let mut event_cursor = phase
            .victim
            .map(|v| EventCursor::at_head(cluster.addrs[v]));
        let commits_before = if live.iter().filter(|l| **l).count() >= quorum_live {
            probe::read_counter(
                &cluster.addrs,
                config.seed,
                config.reply_quorum,
                next_probe(),
                config.probe_timeout,
            )
            .ok()
        } else {
            None
        };
        let mut rejoined = None;

        for step in &phase.steps {
            match step {
                FaultStep::Kill(replica) => {
                    cluster.kill(*replica);
                    live[*replica] = false;
                }
                FaultStep::Drain(replica) => {
                    if let Err(e) = cluster.drain(*replica, config.rejoin_timeout) {
                        failure = Some(format!(
                            "{}: draining replica {replica} failed: {e}",
                            phase.name
                        ));
                        break 'phases;
                    }
                    live[*replica] = false;
                }
                FaultStep::Start(replica) => {
                    live[*replica] = true;
                    // A victim's fresh incarnation starts a fresh event
                    // journal; rewind so its recovery events all count
                    // as this phase's evidence.
                    if phase.victim == Some(*replica) {
                        if let Some(cursor) = event_cursor.as_mut() {
                            cursor.rewind();
                        }
                    }
                    if let Err(e) = cluster.start(*replica) {
                        failure = Some(format!(
                            "{}: starting replica {replica} failed: {e}",
                            phase.name
                        ));
                        break 'phases;
                    }
                }
                FaultStep::Sleep(duration) => std::thread::sleep(*duration),
                FaultStep::AwaitCommits(delta) => {
                    // Soft wait: if the survivors cannot commit within
                    // the probe budget the phase assertions (advance,
                    // suffix evidence) will say so with better detail
                    // than a step failure could.
                    let deadline = std::time::Instant::now() + config.probe_timeout;
                    let mut baseline = None;
                    loop {
                        let now = probe::read_counter(
                            &cluster.addrs,
                            config.seed,
                            config.reply_quorum,
                            next_probe(),
                            Duration::from_secs(5).min(config.probe_timeout),
                        )
                        .ok();
                        match (baseline, now) {
                            (None, Some(v)) => baseline = Some(v),
                            (Some(b), Some(v)) if v >= b + *delta => break,
                            _ => {}
                        }
                        if std::time::Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(150));
                    }
                }
                FaultStep::AwaitRejoin(replica) => {
                    // STATUS-based with an explicit deadline: a direct
                    // read of the victim's own recovery flag and
                    // progress gauge, immune to the reply races the old
                    // fresh-request probe could lose on loaded machines.
                    let ok = probe::await_rejoin_via_status(
                        &cluster.addrs,
                        *replica,
                        config.rejoin_timeout,
                    );
                    rejoined = Some(rejoined.unwrap_or(true) && ok);
                }
                // Partitions are enforced inside every replica's own
                // transport, so the control frames below ride the same
                // client port — the orchestrator itself is never cut.
                // All replicas are alive when these steps run (the new
                // schedules never mix kills with cuts), so a delivery
                // failure is a real fault, not a dead victim.
                FaultStep::Partition { name, side_a, side_b, symmetric } => {
                    let cmd = FaultCommand::Partition {
                        name: name.clone(),
                        side_a: side_a.iter().map(|&r| ReplicaId(r as u32)).collect(),
                        side_b: side_b.iter().map(|&r| ReplicaId(r as u32)).collect(),
                        symmetric: *symmetric,
                    };
                    if let Err(e) = broadcast_fault_command(&cluster.addrs, &cmd) {
                        failure = Some(format!(
                            "{}: opening partition {name:?} failed: {e}",
                            phase.name
                        ));
                        break 'phases;
                    }
                }
                FaultStep::DegradeLink {
                    from,
                    to,
                    drop_percent,
                    duplicate_percent,
                    reorder_percent,
                    delay_ms,
                } => {
                    let cmd = FaultCommand::SetRule(LinkRule {
                        from: ReplicaId(*from as u32),
                        to: ReplicaId(*to as u32),
                        drop_percent: *drop_percent,
                        duplicate_percent: *duplicate_percent,
                        reorder_percent: *reorder_percent,
                        delay_ms: *delay_ms,
                    });
                    if let Err(e) = broadcast_fault_command(&cluster.addrs, &cmd) {
                        failure = Some(format!(
                            "{}: degrading link {from} -> {to} failed: {e}",
                            phase.name
                        ));
                        break 'phases;
                    }
                }
                FaultStep::ClearLinkRules => {
                    if let Err(e) =
                        broadcast_fault_command(&cluster.addrs, &FaultCommand::ClearRules)
                    {
                        failure =
                            Some(format!("{}: clearing link rules failed: {e}", phase.name));
                        break 'phases;
                    }
                }
                FaultStep::Heal(name) => {
                    let cmd = FaultCommand::Heal { name: name.clone() };
                    if let Err(e) = broadcast_fault_command(&cluster.addrs, &cmd) {
                        failure = Some(format!(
                            "{}: healing partition {name:?} failed: {e}",
                            phase.name
                        ));
                        break 'phases;
                    }
                }
                FaultStep::HealAll => {
                    if let Err(e) =
                        broadcast_fault_command(&cluster.addrs, &FaultCommand::HealAll)
                    {
                        failure =
                            Some(format!("{}: healing all partitions failed: {e}", phase.name));
                        break 'phases;
                    }
                }
            }
        }

        // "Commits advance" means *eventually within the phase budget*:
        // a freshly restarted primary (or a cluster mid-view-change)
        // legitimately needs a moment before the counter moves again,
        // so the after-probe polls until it exceeds the before-value or
        // the budget runs out.
        let commits_after = if live.iter().filter(|l| **l).count() >= quorum_live {
            let deadline = std::time::Instant::now() + config.probe_timeout;
            let mut after = None;
            loop {
                after = probe::read_counter(
                    &cluster.addrs,
                    config.seed,
                    config.reply_quorum,
                    next_probe(),
                    Duration::from_secs(5).min(config.probe_timeout),
                )
                .ok()
                .or(after);
                let advanced_enough = !phase.expect_advance
                    || match (commits_before, after) {
                        (Some(before), Some(now)) => now > before,
                        (None, Some(_)) => true,
                        _ => false,
                    };
                if advanced_enough || std::time::Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(400));
            }
            after
        } else {
            None
        };
        let advanced = matches!((commits_before, commits_after), (Some(b), Some(a)) if a > b)
            || (commits_before.is_none() && commits_after.is_some());
        let evidence = event_cursor
            .as_mut()
            .map(|c| RejoinEvidence::from_events(&c.read_new()))
            .unwrap_or_default();

        let outcome = PhaseOutcome {
            name: phase.name.clone(),
            victim: phase.victim,
            commits_before,
            commits_after,
            advanced,
            expected_advance: phase.expect_advance,
            rejoined,
            evidence,
        };
        eprintln!(
            "chaos: phase {:<24} commits {:?} -> {:?}, rejoined {:?}, suffix {} msg(s), checkpoint {}, {}",
            outcome.name,
            outcome.commits_before,
            outcome.commits_after,
            outcome.rejoined,
            outcome.evidence.suffix_messages_applied,
            outcome.evidence.checkpoint_restored,
            if outcome.ok() { "ok" } else { "FAILED" },
        );
        if !outcome.ok() && failure.is_none() {
            failure = Some(format!(
                "phase {:?}: advanced={} (expected {}), rejoined={:?}",
                outcome.name, outcome.advanced, outcome.expected_advance, outcome.rejoined
            ));
        }
        phases.push(outcome);
    }

    let (issued, completed, timed_out) = load.stop();
    let safety_outcome = safety.stop();
    cluster.teardown(config.keep_data);

    eprintln!(
        "chaos: safety monitor {} commit(s), {} violation(s)",
        safety_outcome.commits,
        safety_outcome.violations.len(),
    );
    if failure.is_none() {
        if let Some(violation) = safety_outcome.violations.first() {
            failure = Some(format!("safety cross-check: {violation}"));
        }
    }

    let report = ChaosReport {
        scenario: schedule.scenario.clone(),
        protocol: config.protocol.clone(),
        n: config.n,
        seed: config.seed,
        wal_group_commit_us: config.wal_group_commit_us,
        shards: config.shards,
        phases,
        load_issued: issued,
        load_completed: completed,
        load_timed_out: timed_out,
        safety_commits: safety_outcome.commits,
        safety_violations: safety_outcome.violations,
        group_commit: None,
    };
    match failure {
        Some(reason) => Err(ChaosError::Failed { reason, report: Box::new(report) }),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(protocol: &str, n: usize, reply_quorum: usize) -> ChaosConfig {
        ChaosConfig::new(
            PathBuf::from("/nonexistent/splitbft-node"),
            protocol,
            n,
            reply_quorum,
            PathBuf::from("/nonexistent/scratch"),
        )
    }

    fn unsupported(result: Result<(), ChaosError>) -> String {
        match result {
            Err(ChaosError::Unsupported { reason, .. }) => reason,
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn minbft_rejects_primary_kill_up_front() {
        let reason =
            unsupported(validate(&config("minbft", 3, 2), &schedule::primary_kill(3, 1)));
        assert!(reason.contains("no view change"), "got: {reason}");
    }

    #[test]
    fn minbft_rejects_equivocating_primary() {
        let reason =
            unsupported(validate(&config("minbft", 3, 2), &schedule::equivocate_under_load(3)));
        assert!(reason.contains("USIG"), "got: {reason}");
    }

    #[test]
    fn minbft_rejects_cutting_off_its_fixed_primary() {
        let reason =
            unsupported(validate(&config("minbft", 3, 2), &schedule::partition_primary(3)));
        assert!(reason.contains("fixed primary"), "got: {reason}");
    }

    #[test]
    fn quorum_destroying_partition_is_rejected_on_any_protocol() {
        // concurrent-victim cuts two replicas at once: fine at n = 7
        // (f = 2), fatal at n = 4 (f = 1) where no side keeps 2f + 1.
        let reason =
            unsupported(validate(&config("pbft", 4, 2), &schedule::concurrent_victim(4)));
        assert!(reason.contains("commit quorum"), "got: {reason}");
        validate(&config("pbft", 7, 3), &schedule::concurrent_victim(7))
            .expect("n = 7 keeps a five-replica majority side");
    }

    #[test]
    fn supported_shapes_validate_cleanly() {
        for (name, n, quorum) in [
            ("rolling-restart", 4, 2),
            ("partition-primary", 4, 2),
            ("asymmetric-link", 4, 2),
            ("equivocate-under-load", 4, 2),
        ] {
            let schedule = Schedule::by_name(name, n, 1).unwrap();
            validate(&config("pbft", n, quorum), &schedule)
                .unwrap_or_else(|e| panic!("{name} must validate on pbft: {e}"));
        }
        // The hybrid keeps its supported catalog too.
        let schedule = Schedule::by_name("rolling-restart", 3, 1).unwrap();
        validate(&config("minbft", 3, 2), &schedule).unwrap();
    }

    #[test]
    fn link_rule_scenarios_validate_on_every_protocol() {
        for name in ["lossy-link", "reorder-under-load", "duplicate-storm"] {
            let schedule = Schedule::by_name(name, 4, 1).unwrap();
            for protocol in ["pbft", "splitbft", "minbft"] {
                validate(&config(protocol, 4, 2), &schedule)
                    .unwrap_or_else(|e| panic!("{name} must validate on {protocol}: {e}"));
            }
        }
    }

    #[test]
    fn minbft_rejects_drops_on_the_fixed_primarys_links() {
        let mut schedule = schedule::lossy_link(4);
        schedule.phases[0].steps[0] = FaultStep::DegradeLink {
            from: 0,
            to: 1,
            drop_percent: 10,
            duplicate_percent: 0,
            reorder_percent: 0,
            delay_ms: 0,
        };
        let reason = unsupported(validate(&config("minbft", 4, 2), &schedule));
        assert!(reason.contains("fixed primary"), "got: {reason}");
        // View-change protocols mask partial loss on any single link.
        validate(&config("pbft", 4, 2), &schedule).unwrap();
    }

    #[test]
    fn zero_shards_is_rejected_up_front() {
        let mut cfg = config("pbft", 4, 2);
        cfg.shards = 0;
        let reason = unsupported(validate(&cfg, &schedule::rolling_restart(4)));
        assert!(reason.contains("shards"), "got: {reason}");
        cfg.shards = 2;
        validate(&cfg, &schedule::rolling_restart(4)).unwrap();
    }
}
