//! `BENCH_chaos_*.json` — the chaos run report.
//!
//! Schema `splitbft-chaos/v1`, hand-rolled like the bench reports (the
//! workspace has no serde). One file per (scenario, protocol) run:
//! per-phase commit deltas and rejoin evidence, the background load's
//! totals, and — when the orchestrator measured it — the WAL
//! group-commit A/B fsync delta.

use crate::cluster::RejoinEvidence;
use splitbft_loadgen::report::{json_escape, sanitize_name};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Schema identifier embedded in every chaos report.
pub const SCHEMA: &str = "splitbft-chaos/v1";

/// What one phase observed.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name from the schedule.
    pub name: String,
    /// The victimized replica, if the phase had one.
    pub victim: Option<usize>,
    /// Committed counter before the phase (`None` when no quorum was up
    /// to answer, e.g. early staggered-start phases).
    pub commits_before: Option<u64>,
    /// Committed counter after the phase's steps completed.
    pub commits_after: Option<u64>,
    /// Whether commits advanced across the phase.
    pub advanced: bool,
    /// Whether the phase demanded advancement (from the schedule).
    pub expected_advance: bool,
    /// Whether the victim executed a fresh request after its restart
    /// (`None` for phases without an `AwaitRejoin` step).
    pub rejoined: Option<bool>,
    /// Stderr-marker evidence scanned from the victim's log.
    pub evidence: RejoinEvidence,
}

impl PhaseOutcome {
    /// `true` when every assertion the phase carries held.
    pub fn ok(&self) -> bool {
        (!self.expected_advance || self.advanced) && self.rejoined != Some(false)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\": \"{name}\", \"victim\": {victim}, ",
                "\"commits_before\": {before}, \"commits_after\": {after}, ",
                "\"advanced\": {advanced}, \"expected_advance\": {expected}, ",
                "\"rejoined\": {rejoined}, ",
                "\"suffix_messages_applied\": {suffix}, ",
                "\"suffix_progress\": {suffix_progress}, ",
                "\"checkpoint_restored\": {checkpoint}, ",
                "\"wal_events_replayed\": {wal}, \"ok\": {ok}}}"
            ),
            name = json_escape(&self.name),
            victim = opt_num(self.victim.map(|v| v as u64)),
            before = opt_num(self.commits_before),
            after = opt_num(self.commits_after),
            advanced = self.advanced,
            expected = self.expected_advance,
            rejoined = match self.rejoined {
                None => "null".into(),
                Some(r) => r.to_string(),
            },
            suffix = self.evidence.suffix_messages_applied,
            suffix_progress = self.evidence.suffix_progress,
            checkpoint = self.evidence.checkpoint_restored,
            wal = self.evidence.wal_events_replayed,
            ok = self.ok(),
        )
    }
}

/// One side of the WAL group-commit A/B measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitSample {
    /// The `wal_group_commit_us` linger this side ran with.
    pub linger_us: u64,
    /// Total WAL fsyncs across all replicas during the window.
    pub fsyncs: u64,
    /// Client-verified completions during the window.
    pub completed: u64,
}

impl GroupCommitSample {
    /// Fsyncs paid per committed request (`None` with zero commits).
    pub fn fsyncs_per_commit(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.fsyncs as f64 / self.completed as f64)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"linger_us\": {}, \"fsyncs\": {}, \"completed\": {}, \"fsyncs_per_commit\": {}}}",
            self.linger_us,
            self.fsyncs,
            self.completed,
            self.fsyncs_per_commit().map_or("null".into(), |v| format!("{v:.3}")),
        )
    }
}

/// The group-commit A/B: identical short measurement windows with the
/// linger off (`0`) and on.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitDelta {
    /// `wal_group_commit_us = 0` (one fsync per drained event).
    pub off: GroupCommitSample,
    /// The configured linger (fsyncs shared per drain batch).
    pub on: GroupCommitSample,
}

impl GroupCommitDelta {
    /// `true` when the linger measurably reduced fsyncs per commit.
    pub fn improved(&self) -> bool {
        match (self.off.fsyncs_per_commit(), self.on.fsyncs_per_commit()) {
            (Some(off), Some(on)) => on < off,
            _ => false,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"off\": {}, \"on\": {}, \"improved\": {}}}",
            self.off.to_json(),
            self.on.to_json(),
            self.improved(),
        )
    }
}

/// A complete chaos run: `BENCH_chaos_<scenario>_<protocol>.json`.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario name (`rolling-restart`, …).
    pub scenario: String,
    /// Protocol under test.
    pub protocol: String,
    /// Cluster size.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// The configured WAL group-commit linger of the cluster.
    pub wal_group_commit_us: u64,
    /// Consensus groups per replica the cluster ran with.
    pub shards: u32,
    /// Per-phase outcomes, in order.
    pub phases: Vec<PhaseOutcome>,
    /// Background load totals across the whole run.
    pub load_issued: u64,
    /// Client-verified completions of the background load.
    pub load_completed: u64,
    /// Background-load requests that never completed.
    pub load_timed_out: u64,
    /// Requests the safety monitor committed (quorum-verified `inc`s
    /// cross-checked for duplicate results).
    pub safety_commits: u64,
    /// Safety cross-check violations — non-empty means two distinct
    /// requests committed the same unique counter value: a fork.
    pub safety_violations: Vec<String>,
    /// The group-commit A/B, when measured.
    pub group_commit: Option<GroupCommitDelta>,
}

impl ChaosReport {
    /// `true` when every phase's assertions held *and* the safety
    /// cross-check saw no committed fork.
    pub fn ok(&self) -> bool {
        self.phases.iter().all(PhaseOutcome::ok) && self.safety_violations.is_empty()
    }

    /// Total suffix messages fed to victims across all phases.
    pub fn suffix_messages_applied(&self) -> u64 {
        self.phases.iter().map(|p| p.evidence.suffix_messages_applied).sum()
    }

    /// Total execution progress victims gained *during* suffix
    /// application — the observable proof that rejoins used the log
    /// path (offered messages can be rejected; executed slots cannot).
    pub fn suffix_progress(&self) -> u64 {
        self.phases.iter().map(|p| p.evidence.suffix_progress).sum()
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self.phases.iter().map(PhaseOutcome::to_json).collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"{schema}\",\n",
                "  \"scenario\": \"{scenario}\",\n",
                "  \"protocol\": \"{protocol}\",\n",
                "  \"n\": {n},\n",
                "  \"seed\": {seed},\n",
                "  \"wal_group_commit_us\": {linger},\n",
                "  \"shards\": {shards},\n",
                "  \"ok\": {ok},\n",
                "  \"suffix_messages_applied\": {suffix},\n",
                "  \"suffix_progress\": {suffix_progress},\n",
                "  \"load\": {{\"issued\": {issued}, \"completed\": {completed}, \"timed_out\": {timed_out}}},\n",
                "  \"safety\": {{\"commits\": {safety_commits}, \"violations\": [{safety_violations}]}},\n",
                "  \"group_commit\": {group_commit},\n",
                "  \"phases\": [\n    {phases}\n  ]\n",
                "}}\n",
            ),
            schema = SCHEMA,
            scenario = json_escape(&self.scenario),
            protocol = json_escape(&self.protocol),
            n = self.n,
            seed = self.seed,
            linger = self.wal_group_commit_us,
            shards = self.shards,
            ok = self.ok(),
            suffix = self.suffix_messages_applied(),
            suffix_progress = self.suffix_progress(),
            issued = self.load_issued,
            completed = self.load_completed,
            timed_out = self.load_timed_out,
            safety_commits = self.safety_commits,
            safety_violations = self
                .safety_violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
            group_commit = self.group_commit.map_or("null".into(), |g| g.to_json()),
            phases = phases.join(",\n    "),
        )
    }

    /// The file name this report writes to. Sharded runs carry an
    /// `_s<k>` suffix so they never clobber the unsharded report.
    pub fn file_name(&self) -> String {
        let shard_suffix =
            if self.shards > 1 { format!("_s{}", self.shards) } else { String::new() };
        format!(
            "BENCH_chaos_{}_{}{shard_suffix}.json",
            sanitize_name(&self.scenario),
            sanitize_name(&self.protocol)
        )
    }

    /// Writes the report into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// One human-readable summary line.
    pub fn summary_line(&self) -> String {
        let rejoins =
            self.phases.iter().filter(|p| p.rejoined == Some(true)).count();
        format!(
            "chaos {:<16} {:<9} n={} | {} phase(s), {} rejoin(s), {} suffix msg(s) | load {}/{} completed | safety {} commit(s) {} violation(s) | {}",
            self.scenario,
            self.protocol,
            self.n,
            self.phases.len(),
            rejoins,
            self.suffix_messages_applied(),
            self.load_completed,
            self.load_issued,
            self.safety_commits,
            self.safety_violations.len(),
            if self.ok() { "OK" } else { "FAILED" },
        )
    }
}

fn opt_num(v: Option<u64>) -> String {
    v.map_or("null".into(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChaosReport {
        ChaosReport {
            scenario: "rolling-restart".into(),
            protocol: "splitbft".into(),
            n: 4,
            seed: 42,
            wal_group_commit_us: 200,
            shards: 1,
            phases: vec![PhaseOutcome {
                name: "restart-replica-0".into(),
                victim: Some(0),
                commits_before: Some(10),
                commits_after: Some(55),
                advanced: true,
                expected_advance: true,
                rejoined: Some(true),
                evidence: RejoinEvidence {
                    suffix_messages_applied: 12,
                    suffix_progress: 9,
                    checkpoint_restored: true,
                    wal_events_replayed: 7,
                },
            }],
            load_issued: 400,
            load_completed: 390,
            load_timed_out: 10,
            safety_commits: 120,
            safety_violations: Vec::new(),
            group_commit: Some(GroupCommitDelta {
                off: GroupCommitSample { linger_us: 0, fsyncs: 900, completed: 300 },
                on: GroupCommitSample { linger_us: 200, fsyncs: 220, completed: 320 },
            }),
        }
    }

    #[test]
    fn json_contains_every_schema_key() {
        let json = sample().to_json();
        for key in [
            "\"schema\"", "\"scenario\"", "\"protocol\"", "\"n\"", "\"seed\"",
            "\"wal_group_commit_us\"", "\"shards\"", "\"ok\"", "\"suffix_messages_applied\"",
            "\"load\"", "\"issued\"", "\"completed\"", "\"timed_out\"",
            "\"safety\"", "\"violations\"",
            "\"group_commit\"", "\"fsyncs_per_commit\"", "\"improved\"",
            "\"phases\"", "\"victim\"", "\"commits_before\"", "\"commits_after\"",
            "\"advanced\"", "\"rejoined\"", "\"checkpoint_restored\"",
            "\"wal_events_replayed\"", "\"suffix_progress\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains(SCHEMA));
    }

    #[test]
    fn group_commit_delta_detects_improvement() {
        let report = sample();
        let delta = report.group_commit.unwrap();
        assert!(delta.improved(), "3 fsyncs/commit vs ~0.7 must count as improved");
        assert!(report.ok());
        assert_eq!(report.file_name(), "BENCH_chaos_rolling-restart_splitbft.json");
    }

    #[test]
    fn sharded_runs_get_their_own_file_name() {
        let mut report = sample();
        report.shards = 2;
        assert_eq!(report.file_name(), "BENCH_chaos_rolling-restart_splitbft_s2.json");
        assert!(report.to_json().contains("\"shards\": 2"));
    }

    #[test]
    fn failed_phase_fails_the_report() {
        let mut report = sample();
        report.phases[0].rejoined = Some(false);
        assert!(!report.ok());
        assert!(report.summary_line().contains("FAILED"));
    }

    #[test]
    fn safety_violation_fails_the_report() {
        let mut report = sample();
        report.safety_violations.push("safety violation: fork".into());
        assert!(!report.ok(), "a committed fork must fail the run outright");
        assert!(report.to_json().contains("safety violation: fork"));
        assert!(report.summary_line().contains("FAILED"));
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("splitbft-chaos-report-{}", std::process::id()));
        let path = sample().write_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"scenario\": \"rolling-restart\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
