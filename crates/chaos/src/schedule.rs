//! Deterministic fault schedules: the scenario catalog.
//!
//! A [`Schedule`] is a fixed list of [`Phase`]s, each a sequence of
//! [`FaultStep`]s the orchestrator executes verbatim — no randomness,
//! no timing jitter beyond the OS itself, so a failing run names the
//! exact phase and step that broke. The catalog mirrors the failure
//! sequences operators actually perform or fear:
//!
//! - [`rolling_restart`] — kill + restart every replica in sequence
//!   (the "upgrade the whole fleet" drill);
//! - [`repeated_kill`] — SIGKILL the same replica over and over (a
//!   crash-looping node must not poison its data dir);
//! - [`primary_kill`] — target whoever is expected to lead, forcing a
//!   view change each round;
//! - [`staggered_start`] — bring the cluster up one replica at a time
//!   under client traffic that started before quorum existed;
//! - [`partition_primary`] — cut the primary off bidirectionally (no
//!   process dies), demand the majority side view-changes and commits,
//!   then heal;
//! - [`asymmetric_link`] — break exactly one direction of one backup
//!   link; redundancy must mask it without a view change;
//! - [`equivocate_under_load`] — serve replica 0 in
//!   `equivocating-primary` Byzantine mode the whole run; honest
//!   replicas must view-change past it and keep committing, with the
//!   safety cross-check watching for forks throughout;
//! - [`concurrent_victim`] — on `n = 7` (`f = 2`), partition *two*
//!   replicas at once (the full fault budget), then heal and demand
//!   commits resume;
//! - [`lossy_link`] — drop a quarter of the frames in both directions
//!   of one backup↔backup link; quorum redundancy must mask the loss
//!   with commits advancing throughout;
//! - [`reorder_under_load`] — hold back a share of that link's frames
//!   so later ones overtake them; protocol buffering must absorb the
//!   inversion without a view change;
//! - [`duplicate_storm`] — deliver half the primary's frames to two
//!   backups twice (and one backup's frames to the primary); every
//!   handler must be idempotent under replayed traffic;
//! - [`drain_restart`] — gracefully drain (`SIGTERM`) + restart every
//!   replica in sequence; each victim must seal a checkpoint, flush its
//!   WAL, exit 0, and rejoin with zero lost committed requests.
//!
//! The last three degrade links with [`FaultStep::DegradeLink`] — the
//! same live `FAULT_CONTROL` plane the partitions ride, but exercising
//! the per-link drop/duplicate/reorder rules instead of named cuts.

use std::time::Duration;

/// One orchestrator action inside a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultStep {
    /// `SIGKILL` the replica's process — no flush, no goodbye.
    Kill(usize),
    /// `SIGTERM` the replica and wait for a *graceful* exit: it stops
    /// admitting client requests, finishes in-flight batches, seals a
    /// checkpoint, flushes its WAL, and exits 0. The opposite drill to
    /// [`FaultStep::Kill`] — an upgrade, not a crash — and the safety
    /// monitor's commit log doubles as the zero-lost-commits assertion
    /// (a post-drain rollback would re-issue counter values and
    /// register as a fork).
    Drain(usize),
    /// (Re)start the replica's process from its data directory.
    Start(usize),
    /// Wait for the replica to execute a *fresh* request (observed by a
    /// reply carrying its id), proving it caught up and rejoined.
    AwaitRejoin(usize),
    /// Wait (bounded by the probe budget) until the live quorum's
    /// committed counter advances by at least this much. The
    /// evidence-based kill gap: a fixed sleep proves nothing on a
    /// loaded machine, but commits made *while the victim is down* are
    /// exactly what its later log-suffix rejoin must replay.
    AwaitCommits(u64),
    /// Let the cluster run undisturbed.
    Sleep(Duration),
    /// Open a named partition on every replica's transport fault plan
    /// (delivered live over `FAULT_CONTROL` frames — no restarts).
    Partition {
        /// Name for the later [`FaultStep::Heal`].
        name: String,
        /// One side of the cut.
        side_a: Vec<usize>,
        /// The other side.
        side_b: Vec<usize>,
        /// `false` blocks only `side_a → side_b` (an asymmetric link
        /// failure); `true` blocks both directions.
        symmetric: bool,
    },
    /// Close the named partition on every replica.
    Heal(String),
    /// Install a per-link degradation rule on every replica's fault
    /// plan (delivered live, like partitions): the ordered `from → to`
    /// link drops / duplicates / holds back the given percentage of
    /// frames. Percentages are drawn from the link's seeded decision
    /// stream, so a schedule replays identically.
    DegradeLink {
        /// Sending replica.
        from: usize,
        /// Receiving replica.
        to: usize,
        /// Percentage of frames dropped outright (0–100).
        drop_percent: u8,
        /// Percentage of frames delivered twice (0–100).
        duplicate_percent: u8,
        /// Percentage of frames held back by `delay_ms` so later frames
        /// overtake them (0–100).
        reorder_percent: u8,
        /// Holdback for reordered frames, in milliseconds.
        delay_ms: u32,
    },
    /// Remove every per-link rule on every replica (named partitions
    /// stay — [`FaultStep::HealAll`] clears both).
    ClearLinkRules,
    /// Clear every partition and link rule on every replica.
    HealAll,
}

/// A named step sequence with its own commit-advance assertion window.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (lands in the report).
    pub name: String,
    /// The replica this phase victimizes, if any (drives the rejoin
    /// evidence scan of its stderr log).
    pub victim: Option<usize>,
    /// Steps, executed in order.
    pub steps: Vec<FaultStep>,
    /// Whether commits must have advanced by the end of the phase
    /// (`false` only for phases that cannot have a quorum yet, e.g. the
    /// early steps of a staggered start).
    pub expect_advance: bool,
}

/// A complete scenario.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Scenario name (lands in the report file name).
    pub scenario: String,
    /// Whether the whole cluster starts before phase 1 (`false` for
    /// staggered start, whose phases start the replicas themselves).
    pub start_all: bool,
    /// Replicas served in a Byzantine mode for the whole run, as
    /// `(replica, mode)` with the mode spelled the way
    /// `splitbft-node serve --byzantine` spells it.
    pub byzantine: Vec<(usize, String)>,
    /// The phases, in order.
    pub phases: Vec<Phase>,
}

impl Schedule {
    /// Looks a scenario up by its CLI name.
    ///
    /// # Errors
    ///
    /// A human-readable message listing the known scenarios.
    pub fn by_name(name: &str, n: usize, rounds: usize) -> Result<Schedule, String> {
        match name {
            "rolling-restart" => Ok(rolling_restart(n)),
            "repeated-kill" => Ok(repeated_kill(n - 1, rounds)),
            "primary-kill" => Ok(primary_kill(n, rounds)),
            "staggered-start" => Ok(staggered_start(n)),
            "partition-primary" => Ok(partition_primary(n)),
            "asymmetric-link" => Ok(asymmetric_link(n)),
            "equivocate-under-load" => Ok(equivocate_under_load(n)),
            "concurrent-victim" => Ok(concurrent_victim(n)),
            "lossy-link" => Ok(lossy_link(n)),
            "reorder-under-load" => Ok(reorder_under_load(n)),
            "duplicate-storm" => Ok(duplicate_storm(n)),
            "drain-restart" => Ok(drain_restart(n)),
            other => Err(format!(
                "unknown scenario {other:?} (expected one of: {})",
                Schedule::NAMES.join(", ")
            )),
        }
    }

    /// Every scenario name [`Schedule::by_name`] accepts.
    pub const NAMES: &'static [&'static str] = &[
        "rolling-restart",
        "repeated-kill",
        "primary-kill",
        "staggered-start",
        "partition-primary",
        "asymmetric-link",
        "equivocate-under-load",
        "concurrent-victim",
        "lossy-link",
        "reorder-under-load",
        "duplicate-storm",
        "drain-restart",
    ];
}

/// The pause after killing a *primary*: long enough for the cluster to
/// notice, view-change, and commit past the victim. Backup kills use
/// the evidence-based [`FaultStep::AwaitCommits`] gap instead — see
/// [`KILL_GAP_COMMITS`].
const KILL_GAP: Duration = Duration::from_millis(1_200);

/// Commits the survivors must make while a killed replica is down
/// before it is restarted. Enough that the victim's log-suffix rejoin
/// has real work to replay (and to execute — the `suffix_progress`
/// evidence), with margin against a checkpoint seal covering part of
/// the window.
const KILL_GAP_COMMITS: u64 = 5;

/// Kill + restart every replica in id order, awaiting a full rejoin
/// (including the victim executing fresh requests) before moving on.
pub fn rolling_restart(n: usize) -> Schedule {
    let phases = (0..n)
        .map(|replica| Phase {
            name: format!("restart-replica-{replica}"),
            victim: Some(replica),
            steps: vec![
                FaultStep::Kill(replica),
                FaultStep::AwaitCommits(KILL_GAP_COMMITS),
                FaultStep::Start(replica),
                FaultStep::AwaitRejoin(replica),
            ],
            expect_advance: true,
        })
        .collect();
    Schedule { scenario: "rolling-restart".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// SIGKILL the same replica `rounds` times in a row — each round must
/// recover from a data directory the previous crash left behind.
pub fn repeated_kill(victim: usize, rounds: usize) -> Schedule {
    let phases = (0..rounds.max(1))
        .map(|round| Phase {
            name: format!("kill-{victim}-round-{round}"),
            victim: Some(victim),
            steps: vec![
                FaultStep::Kill(victim),
                FaultStep::AwaitCommits(KILL_GAP_COMMITS),
                FaultStep::Start(victim),
                FaultStep::AwaitRejoin(victim),
            ],
            expect_advance: true,
        })
        .collect();
    Schedule { scenario: "repeated-kill".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// Kill the expected leader each round: replica `r % n` in round `r`,
/// tracking the view-change succession (view `v`'s primary is
/// `v % n` in every protocol here). Each downed leader is restarted and
/// must rejoin before the next round fires.
pub fn primary_kill(n: usize, rounds: usize) -> Schedule {
    let phases = (0..rounds.max(1))
        .map(|round| {
            let victim = round % n;
            Phase {
                name: format!("kill-primary-{victim}-round-{round}"),
                victim: Some(victim),
                steps: vec![
                    FaultStep::Kill(victim),
                    // Longer gap: the cluster has to view-change before
                    // commits can resume.
                    FaultStep::Sleep(KILL_GAP * 2),
                    FaultStep::Start(victim),
                    FaultStep::AwaitRejoin(victim),
                ],
                expect_advance: true,
            }
        })
        .collect();
    Schedule { scenario: "primary-kill".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// Start the cluster one replica at a time under client traffic that
/// began before any quorum existed. Commits are only required to
/// advance once enough replicas are up.
pub fn staggered_start(n: usize) -> Schedule {
    // 3f+1 stacks commit with one replica down, so the quorum exists
    // once n-1 replicas run; before that nothing may be asserted.
    let quorum_at = n.saturating_sub(1).max(1);
    let mut phases: Vec<Phase> = (0..n)
        .map(|replica| Phase {
            name: format!("start-replica-{replica}"),
            // The last starter is the scenario's victim from the moment
            // it starts, so its recovery/state-transfer markers (printed
            // during *this* phase) land in the report's evidence rather
            // than being skipped by a cursor created one phase later.
            victim: (replica == n - 1).then_some(replica),
            steps: vec![
                FaultStep::Start(replica),
                FaultStep::Sleep(Duration::from_millis(700)),
            ],
            expect_advance: replica + 1 >= quorum_at,
        })
        .collect();
    phases.push(Phase {
        name: "late-starter-catches-up".into(),
        victim: Some(n - 1),
        steps: vec![FaultStep::AwaitRejoin(n - 1)],
        expect_advance: true,
    });
    Schedule { scenario: "staggered-start".into(), start_all: false, byzantine: Vec::new(), phases }
}

/// Gracefully drain + restart every replica in id order — the
/// "upgrade the fleet without losing a commit" drill. Each phase
/// `SIGTERM`s its victim (which must seal a checkpoint, flush its WAL,
/// and exit 0), lets the survivors commit through the gap, restarts the
/// victim from its drained data directory, and awaits a full rejoin.
/// The safety monitor's commit log asserts zero lost committed
/// requests across every drain: a rollback would re-issue counter
/// values and register as a fork.
pub fn drain_restart(n: usize) -> Schedule {
    let phases = (0..n)
        .map(|replica| Phase {
            name: format!("drain-replica-{replica}"),
            victim: Some(replica),
            steps: vec![
                FaultStep::Drain(replica),
                FaultStep::AwaitCommits(KILL_GAP_COMMITS),
                FaultStep::Start(replica),
                FaultStep::AwaitRejoin(replica),
            ],
            expect_advance: true,
        })
        .collect();
    Schedule { scenario: "drain-restart".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// The settle window for partition scenarios: generous multiples of the
/// default 400 ms view-change timer, so even a backoff-escalated view
/// change (budgets 2, 4, 8 stalls) completes inside one phase.
const PARTITION_SETTLE: Duration = Duration::from_secs(6);

/// Cut the primary off from every backup — bidirectionally, processes
/// intact — and demand the majority side view-changes and keeps
/// committing; then heal and demand commits continue (the healed
/// ex-primary may lag, but `n − 1` live-and-connected replicas are a
/// commit quorum regardless).
pub fn partition_primary(n: usize) -> Schedule {
    let backups: Vec<usize> = (1..n).collect();
    let phases = vec![
        Phase {
            name: "isolate-primary".into(),
            victim: Some(0),
            steps: vec![
                FaultStep::Partition {
                    name: "cut-primary".into(),
                    side_a: vec![0],
                    side_b: backups,
                    symmetric: true,
                },
                FaultStep::Sleep(PARTITION_SETTLE),
            ],
            expect_advance: true,
        },
        Phase {
            name: "heal-and-recover".into(),
            victim: Some(0),
            steps: vec![FaultStep::HealAll, FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
    ];
    Schedule { scenario: "partition-primary".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// Break exactly one direction of one backup-to-backup link
/// (`1 → 2` drops, `2 → 1` flows). Quorum paths route around a single
/// asymmetric link, so commits must keep advancing with no view change;
/// the heal phase then restores full connectivity.
pub fn asymmetric_link(n: usize) -> Schedule {
    assert!(n >= 3, "asymmetric-link needs two backups");
    let phases = vec![
        Phase {
            name: "break-one-direction".into(),
            victim: None,
            steps: vec![
                FaultStep::Partition {
                    name: "lossy-link".into(),
                    side_a: vec![1],
                    side_b: vec![2],
                    symmetric: false,
                },
                FaultStep::Sleep(PARTITION_SETTLE),
            ],
            expect_advance: true,
        },
        Phase {
            name: "heal-link".into(),
            victim: None,
            steps: vec![FaultStep::Heal("lossy-link".into()), FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
    ];
    Schedule { scenario: "asymmetric-link".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// Serve replica 0 as an `equivocating-primary` for the entire run: in
/// view 0 it sends conflicting proposals to different backups, so no
/// prepare quorum forms and the honest replicas must view-change past
/// it — after which commits flow for the rest of the run while the
/// safety monitor cross-checks every completion for forks. Two phases
/// split the run so the report shows commits advancing both during the
/// fail-over window and under sustained load after it.
pub fn equivocate_under_load(n: usize) -> Schedule {
    let phases = vec![
        Phase {
            name: "survive-equivocation".into(),
            victim: Some(0),
            steps: vec![FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
        Phase {
            name: "sustained-load-past-equivocator".into(),
            victim: Some(0),
            steps: vec![FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
    ];
    let _ = n;
    Schedule {
        scenario: "equivocate-under-load".into(),
        start_all: true,
        byzantine: vec![(0, "equivocating-primary".into())],
        phases,
    }
}

/// Partition two non-primary replicas at once — the full `f = 2` fault
/// budget of an `n = 7` cluster — leaving exactly a `2f + 1 = 5` commit
/// quorum connected; then heal and demand commits keep flowing within
/// the phase budget. Run with `n < 3f_victims + 1` this leaves no
/// quorum, which the orchestrator's validation rejects up front.
pub fn concurrent_victim(n: usize) -> Schedule {
    let victims = vec![1, 2];
    let rest: Vec<usize> = (0..n).filter(|r| !victims.contains(r)).collect();
    let phases = vec![
        Phase {
            name: "partition-two-victims".into(),
            victim: Some(1),
            steps: vec![
                FaultStep::Partition {
                    name: "double-cut".into(),
                    side_a: victims.clone(),
                    side_b: rest,
                    symmetric: true,
                },
                FaultStep::Sleep(PARTITION_SETTLE),
            ],
            expect_advance: true,
        },
        Phase {
            name: "heal-both-victims".into(),
            victim: Some(1),
            steps: vec![FaultStep::HealAll, FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
    ];
    Schedule { scenario: "concurrent-victim".into(), start_all: true, byzantine: Vec::new(), phases }
}

/// A degraded-then-cleared pair of phases shared by the link-rule
/// scenarios: install `rules`, run under load, then clear and demand
/// commits keep advancing on the clean network too.
fn degrade_then_clear(scenario: &str, phase: &str, rules: Vec<FaultStep>) -> Schedule {
    let mut steps = rules;
    steps.push(FaultStep::Sleep(PARTITION_SETTLE));
    let phases = vec![
        Phase { name: phase.into(), victim: None, steps, expect_advance: true },
        Phase {
            name: "clear-link-rules".into(),
            victim: None,
            steps: vec![FaultStep::ClearLinkRules, FaultStep::Sleep(PARTITION_SETTLE)],
            expect_advance: true,
        },
    ];
    Schedule { scenario: scenario.into(), start_all: true, byzantine: Vec::new(), phases }
}

/// Drop 25% of the frames in *both* directions of the backup link
/// `1 ↔ 2`. Quorum paths route around a single lossy link — each
/// replica still hears `2f` intact peers — so commits must keep
/// advancing with no view change, and again after the rules clear.
pub fn lossy_link(n: usize) -> Schedule {
    assert!(n >= 3, "lossy-link needs two backups");
    let drop = |from, to| FaultStep::DegradeLink {
        from,
        to,
        drop_percent: 25,
        duplicate_percent: 0,
        reorder_percent: 0,
        delay_ms: 0,
    };
    degrade_then_clear("lossy-link", "degrade-backup-link", vec![drop(1, 2), drop(2, 1)])
}

/// Hold back 40% of the frames on the backup link `1 ↔ 2` by 50 ms so
/// later frames overtake them. Consensus messages carry explicit
/// sequence/view numbers and the replicas buffer ahead, so inverted
/// delivery must be absorbed without a view change or a stall.
pub fn reorder_under_load(n: usize) -> Schedule {
    assert!(n >= 3, "reorder-under-load needs two backups");
    let reorder = |from, to| FaultStep::DegradeLink {
        from,
        to,
        drop_percent: 0,
        duplicate_percent: 0,
        reorder_percent: 40,
        delay_ms: 50,
    };
    degrade_then_clear(
        "reorder-under-load",
        "reorder-backup-link",
        vec![reorder(1, 2), reorder(2, 1)],
    )
}

/// Deliver half the primary's frames to backups 1 and 2 twice, and
/// half of backup 1's frames to the primary twice. Every protocol
/// handler must be idempotent — duplicate pre-prepares, prepares, and
/// commits may not double-count votes or re-execute requests (the
/// safety monitor cross-checks results for exactly that).
pub fn duplicate_storm(n: usize) -> Schedule {
    assert!(n >= 3, "duplicate-storm needs two backups");
    let dup = |from, to| FaultStep::DegradeLink {
        from,
        to,
        drop_percent: 0,
        duplicate_percent: 50,
        reorder_percent: 0,
        delay_ms: 0,
    };
    degrade_then_clear(
        "duplicate-storm",
        "duplicate-primary-links",
        vec![dup(0, 1), dup(0, 2), dup(1, 0)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic_and_complete() {
        for name in Schedule::NAMES {
            let schedule = Schedule::by_name(name, 4, 3).unwrap();
            assert!(!schedule.phases.is_empty(), "{name} has no phases");
            // Determinism: building the same scenario twice yields the
            // same step sequence.
            let again = Schedule::by_name(name, 4, 3).unwrap();
            for (a, b) in schedule.phases.iter().zip(&again.phases) {
                assert_eq!(a.steps, b.steps);
                assert_eq!(a.name, b.name);
            }
        }
        assert!(Schedule::by_name("coffee-spill", 4, 1).is_err());
    }

    #[test]
    fn rolling_restart_covers_every_replica() {
        let schedule = rolling_restart(4);
        assert!(schedule.start_all);
        assert_eq!(schedule.phases.len(), 4);
        for (i, phase) in schedule.phases.iter().enumerate() {
            assert_eq!(phase.victim, Some(i));
            assert!(phase.steps.contains(&FaultStep::Kill(i)));
            assert!(phase.steps.contains(&FaultStep::Start(i)));
            assert!(phase.steps.contains(&FaultStep::AwaitRejoin(i)));
        }
    }

    #[test]
    fn partition_scenarios_cut_then_heal() {
        let schedule = partition_primary(4);
        assert!(schedule.byzantine.is_empty());
        let Some(FaultStep::Partition { side_a, side_b, symmetric, .. }) =
            schedule.phases[0].steps.first()
        else {
            panic!("first step must open the partition");
        };
        assert_eq!(side_a, &vec![0]);
        assert_eq!(side_b, &vec![1, 2, 3]);
        assert!(symmetric);
        assert!(schedule.phases[1].steps.contains(&FaultStep::HealAll));
        assert!(schedule.phases.iter().all(|p| p.expect_advance));

        let link = asymmetric_link(4);
        let Some(FaultStep::Partition { symmetric, .. }) = link.phases[0].steps.first() else {
            panic!("first step must break the link");
        };
        assert!(!symmetric, "asymmetric-link must declare asymmetry");
        assert!(link.phases[1].steps.contains(&FaultStep::Heal("lossy-link".into())));
    }

    #[test]
    fn equivocate_marks_replica_0_byzantine() {
        let schedule = equivocate_under_load(4);
        assert_eq!(schedule.byzantine, vec![(0, "equivocating-primary".to_string())]);
        assert!(schedule.phases.iter().all(|p| p.expect_advance));
    }

    #[test]
    fn concurrent_victim_spends_the_full_fault_budget() {
        let schedule = concurrent_victim(7);
        let Some(FaultStep::Partition { side_a, side_b, symmetric, .. }) =
            schedule.phases[0].steps.first()
        else {
            panic!("first step must open the double cut");
        };
        assert_eq!(side_a.len(), 2, "two concurrent victims");
        assert_eq!(side_b.len(), 5, "exactly a 2f+1 quorum stays connected");
        assert!(symmetric);
        assert!(schedule.phases[1].steps.contains(&FaultStep::HealAll));
    }

    #[test]
    fn link_rule_scenarios_degrade_then_clear() {
        for name in ["lossy-link", "reorder-under-load", "duplicate-storm"] {
            let schedule = Schedule::by_name(name, 4, 1).unwrap();
            assert_eq!(schedule.phases.len(), 2, "{name}");
            assert!(
                schedule.phases[0]
                    .steps
                    .iter()
                    .any(|s| matches!(s, FaultStep::DegradeLink { .. })),
                "{name} must install link rules"
            );
            assert!(
                schedule.phases[1].steps.contains(&FaultStep::ClearLinkRules),
                "{name} must clear its rules"
            );
            assert!(
                schedule.phases.iter().all(|p| p.expect_advance),
                "{name}: commits must advance both degraded and clean"
            );
        }
    }

    #[test]
    fn lossy_link_degrades_both_directions_of_a_backup_link() {
        let schedule = lossy_link(4);
        let degraded: Vec<(usize, usize, u8)> = schedule.phases[0]
            .steps
            .iter()
            .filter_map(|s| match s {
                FaultStep::DegradeLink { from, to, drop_percent, .. } => {
                    Some((*from, *to, *drop_percent))
                }
                _ => None,
            })
            .collect();
        assert_eq!(degraded, vec![(1, 2, 25), (2, 1, 25)]);

        let reorder = reorder_under_load(4);
        assert!(reorder.phases[0].steps.iter().all(|s| !matches!(
            s,
            FaultStep::DegradeLink { drop_percent: 1.., .. }
        )), "reorder-under-load must not also drop");

        let storm = duplicate_storm(4);
        let touches_primary = storm.phases[0].steps.iter().any(|s| {
            matches!(s, FaultStep::DegradeLink { from: 0, .. } | FaultStep::DegradeLink { to: 0, .. })
        });
        assert!(touches_primary, "duplicate-storm must replay primary traffic");
    }

    #[test]
    fn drain_restart_drains_every_replica_gracefully() {
        let schedule = drain_restart(4);
        assert!(schedule.start_all);
        assert_eq!(schedule.phases.len(), 4);
        for (i, phase) in schedule.phases.iter().enumerate() {
            assert_eq!(phase.victim, Some(i));
            assert!(phase.steps.contains(&FaultStep::Drain(i)));
            assert!(
                !phase.steps.contains(&FaultStep::Kill(i)),
                "a drain drill must never SIGKILL its victim"
            );
            assert!(phase.steps.contains(&FaultStep::Start(i)));
            assert!(phase.steps.contains(&FaultStep::AwaitRejoin(i)));
            assert!(phase.expect_advance);
        }
    }

    #[test]
    fn staggered_start_asserts_only_after_quorum() {
        let schedule = staggered_start(4);
        assert!(!schedule.start_all);
        assert!(!schedule.phases[0].expect_advance);
        assert!(!schedule.phases[1].expect_advance);
        assert!(schedule.phases[2].expect_advance, "n-1 replicas form a quorum");
        assert!(schedule.phases.last().unwrap().expect_advance);
    }
}
