//! Deterministic fault schedules: the scenario catalog.
//!
//! A [`Schedule`] is a fixed list of [`Phase`]s, each a sequence of
//! [`FaultStep`]s the orchestrator executes verbatim — no randomness,
//! no timing jitter beyond the OS itself, so a failing run names the
//! exact phase and step that broke. The catalog mirrors the failure
//! sequences operators actually perform or fear:
//!
//! - [`rolling_restart`] — kill + restart every replica in sequence
//!   (the "upgrade the whole fleet" drill);
//! - [`repeated_kill`] — SIGKILL the same replica over and over (a
//!   crash-looping node must not poison its data dir);
//! - [`primary_kill`] — target whoever is expected to lead, forcing a
//!   view change each round;
//! - [`staggered_start`] — bring the cluster up one replica at a time
//!   under client traffic that started before quorum existed.

use std::time::Duration;

/// One orchestrator action inside a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStep {
    /// `SIGKILL` the replica's process — no flush, no goodbye.
    Kill(usize),
    /// (Re)start the replica's process from its data directory.
    Start(usize),
    /// Wait for the replica to execute a *fresh* request (observed by a
    /// reply carrying its id), proving it caught up and rejoined.
    AwaitRejoin(usize),
    /// Let the cluster run undisturbed.
    Sleep(Duration),
}

/// A named step sequence with its own commit-advance assertion window.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (lands in the report).
    pub name: String,
    /// The replica this phase victimizes, if any (drives the rejoin
    /// evidence scan of its stderr log).
    pub victim: Option<usize>,
    /// Steps, executed in order.
    pub steps: Vec<FaultStep>,
    /// Whether commits must have advanced by the end of the phase
    /// (`false` only for phases that cannot have a quorum yet, e.g. the
    /// early steps of a staggered start).
    pub expect_advance: bool,
}

/// A complete scenario.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Scenario name (lands in the report file name).
    pub scenario: String,
    /// Whether the whole cluster starts before phase 1 (`false` for
    /// staggered start, whose phases start the replicas themselves).
    pub start_all: bool,
    /// The phases, in order.
    pub phases: Vec<Phase>,
}

impl Schedule {
    /// Looks a scenario up by its CLI name.
    ///
    /// # Errors
    ///
    /// A human-readable message listing the known scenarios.
    pub fn by_name(name: &str, n: usize, rounds: usize) -> Result<Schedule, String> {
        match name {
            "rolling-restart" => Ok(rolling_restart(n)),
            "repeated-kill" => Ok(repeated_kill(n - 1, rounds)),
            "primary-kill" => Ok(primary_kill(n, rounds)),
            "staggered-start" => Ok(staggered_start(n)),
            other => Err(format!(
                "unknown scenario {other:?} (expected rolling-restart, repeated-kill, \
                 primary-kill, or staggered-start)"
            )),
        }
    }

    /// Every scenario name [`Schedule::by_name`] accepts.
    pub const NAMES: &'static [&'static str] =
        &["rolling-restart", "repeated-kill", "primary-kill", "staggered-start"];
}

/// The pause between a kill and the restart: long enough for the
/// cluster to notice and commit past the victim, short enough that the
/// victim's rejoin exercises the log-suffix path rather than waiting
/// out a whole checkpoint interval.
const KILL_GAP: Duration = Duration::from_millis(1_200);

/// Kill + restart every replica in id order, awaiting a full rejoin
/// (including the victim executing fresh requests) before moving on.
pub fn rolling_restart(n: usize) -> Schedule {
    let phases = (0..n)
        .map(|replica| Phase {
            name: format!("restart-replica-{replica}"),
            victim: Some(replica),
            steps: vec![
                FaultStep::Kill(replica),
                FaultStep::Sleep(KILL_GAP),
                FaultStep::Start(replica),
                FaultStep::AwaitRejoin(replica),
            ],
            expect_advance: true,
        })
        .collect();
    Schedule { scenario: "rolling-restart".into(), start_all: true, phases }
}

/// SIGKILL the same replica `rounds` times in a row — each round must
/// recover from a data directory the previous crash left behind.
pub fn repeated_kill(victim: usize, rounds: usize) -> Schedule {
    let phases = (0..rounds.max(1))
        .map(|round| Phase {
            name: format!("kill-{victim}-round-{round}"),
            victim: Some(victim),
            steps: vec![
                FaultStep::Kill(victim),
                FaultStep::Sleep(KILL_GAP),
                FaultStep::Start(victim),
                FaultStep::AwaitRejoin(victim),
            ],
            expect_advance: true,
        })
        .collect();
    Schedule { scenario: "repeated-kill".into(), start_all: true, phases }
}

/// Kill the expected leader each round: replica `r % n` in round `r`,
/// tracking the view-change succession (view `v`'s primary is
/// `v % n` in every protocol here). Each downed leader is restarted and
/// must rejoin before the next round fires.
pub fn primary_kill(n: usize, rounds: usize) -> Schedule {
    let phases = (0..rounds.max(1))
        .map(|round| {
            let victim = round % n;
            Phase {
                name: format!("kill-primary-{victim}-round-{round}"),
                victim: Some(victim),
                steps: vec![
                    FaultStep::Kill(victim),
                    // Longer gap: the cluster has to view-change before
                    // commits can resume.
                    FaultStep::Sleep(KILL_GAP * 2),
                    FaultStep::Start(victim),
                    FaultStep::AwaitRejoin(victim),
                ],
                expect_advance: true,
            }
        })
        .collect();
    Schedule { scenario: "primary-kill".into(), start_all: true, phases }
}

/// Start the cluster one replica at a time under client traffic that
/// began before any quorum existed. Commits are only required to
/// advance once enough replicas are up.
pub fn staggered_start(n: usize) -> Schedule {
    // 3f+1 stacks commit with one replica down, so the quorum exists
    // once n-1 replicas run; before that nothing may be asserted.
    let quorum_at = n.saturating_sub(1).max(1);
    let mut phases: Vec<Phase> = (0..n)
        .map(|replica| Phase {
            name: format!("start-replica-{replica}"),
            // The last starter is the scenario's victim from the moment
            // it starts, so its recovery/state-transfer markers (printed
            // during *this* phase) land in the report's evidence rather
            // than being skipped by a cursor created one phase later.
            victim: (replica == n - 1).then_some(replica),
            steps: vec![
                FaultStep::Start(replica),
                FaultStep::Sleep(Duration::from_millis(700)),
            ],
            expect_advance: replica + 1 >= quorum_at,
        })
        .collect();
    phases.push(Phase {
        name: "late-starter-catches-up".into(),
        victim: Some(n - 1),
        steps: vec![FaultStep::AwaitRejoin(n - 1)],
        expect_advance: true,
    });
    Schedule { scenario: "staggered-start".into(), start_all: false, phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic_and_complete() {
        for name in Schedule::NAMES {
            let schedule = Schedule::by_name(name, 4, 3).unwrap();
            assert!(!schedule.phases.is_empty(), "{name} has no phases");
            // Determinism: building the same scenario twice yields the
            // same step sequence.
            let again = Schedule::by_name(name, 4, 3).unwrap();
            for (a, b) in schedule.phases.iter().zip(&again.phases) {
                assert_eq!(a.steps, b.steps);
                assert_eq!(a.name, b.name);
            }
        }
        assert!(Schedule::by_name("coffee-spill", 4, 1).is_err());
    }

    #[test]
    fn rolling_restart_covers_every_replica() {
        let schedule = rolling_restart(4);
        assert!(schedule.start_all);
        assert_eq!(schedule.phases.len(), 4);
        for (i, phase) in schedule.phases.iter().enumerate() {
            assert_eq!(phase.victim, Some(i));
            assert!(phase.steps.contains(&FaultStep::Kill(i)));
            assert!(phase.steps.contains(&FaultStep::Start(i)));
            assert!(phase.steps.contains(&FaultStep::AwaitRejoin(i)));
        }
    }

    #[test]
    fn staggered_start_asserts_only_after_quorum() {
        let schedule = staggered_start(4);
        assert!(!schedule.start_all);
        assert!(!schedule.phases[0].expect_advance);
        assert!(!schedule.phases[1].expect_advance);
        assert!(schedule.phases[2].expect_advance, "n-1 replicas form a quorum");
        assert!(schedule.phases.last().unwrap().expect_advance);
    }
}
