//! Cluster-side probes: committed-counter reads and rejoin detection.
//!
//! Both probes speak the raw framed transport with per-request MACs and
//! verify replies with the same `f + 1` matching-quorum rule the load
//! generator uses — protocol-independent, so one probe serves all three
//! stacks. Reads are *ordered* operations: every replica executes them
//! at the same slot, so a matching quorum pins one committed counter
//! value, not a racy snapshot.

use bytes::Bytes;
use splitbft_crypto::client_mac_key;
use splitbft_loadgen::quorum::{CommitLog, QuorumTracker};
use splitbft_net::tcp::TcpClient;
use splitbft_types::{ClientId, ReplicaId, Request, RequestId, Timestamp};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock microseconds — the timestamp base that keeps re-used
/// probe client ids issuing fresh requests across incarnations.
fn wall_clock_ts() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1)
        .max(1)
}

fn authenticated_op(seed: u64, client: ClientId, ts: u64, op: &'static [u8]) -> Request {
    let mac = client_mac_key(seed, client);
    let id = RequestId { client, timestamp: Timestamp(ts) };
    let op = Bytes::from_static(op);
    let auth = mac.tag(&Request::auth_bytes(id, &op, false));
    Request { id, op, encrypted: false, auth }
}

fn authenticated_read(seed: u64, client: ClientId, ts: u64) -> Request {
    authenticated_op(seed, client, ts, b"read")
}

/// Reads the replicated counter: issues `read` requests to every
/// reachable replica until a `quorum` of MAC-verified matching replies
/// agrees on a value.
///
/// # Errors
///
/// `TimedOut` when no quorum forms within `timeout`; connect errors
/// when no replica is reachable at all.
pub fn read_counter(
    addrs: &[SocketAddr],
    seed: u64,
    quorum: usize,
    client: ClientId,
    timeout: Duration,
) -> io::Result<u64> {
    let mac = client_mac_key(seed, client);
    let mut tcp = TcpClient::connect(client, addrs, timeout.min(Duration::from_secs(10)))?;
    let deadline = Instant::now() + timeout;
    let mut ts = wall_clock_ts();
    let result = loop {
        if Instant::now() >= deadline {
            tcp.close();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no counter quorum within {timeout:?}"),
            ));
        }
        ts += 1;
        let request = authenticated_read(seed, client, ts);
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let mut tracker = QuorumTracker::new(mac.clone(), quorum);
        // One round: collect replies to *this* timestamp; stragglers
        // answering an older probe are ignored, and an unanswered round
        // falls through to a retransmission with a fresh timestamp.
        let round_deadline = (Instant::now() + Duration::from_millis(1_500)).min(deadline);
        let mut agreed = None;
        while Instant::now() < round_deadline && agreed.is_none() {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.request.timestamp.0 == ts => {
                    agreed = tracker.on_reply(&reply);
                }
                _ => {}
            }
        }
        if let Some(result) = agreed {
            break result;
        }
    };
    tcp.close();
    let bytes: [u8; 8] = result[..].try_into().map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "counter read returned a non-u64 result")
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// Waits until replica `from` itself executes a *fresh* request,
/// observed as a reply carrying its id with a timestamp issued here.
/// Execution is strictly sequential in every protocol, so this proves
/// the replica caught up (WAL + checkpoint + state transfer) and
/// rejoined live ordering. Returns `false` on deadline.
pub fn await_executed_by(
    addrs: &[SocketAddr],
    seed: u64,
    from: ReplicaId,
    client: ClientId,
    deadline: Duration,
) -> bool {
    let Ok(mut tcp) = TcpClient::connect(client, addrs, Duration::from_secs(10)) else {
        return false;
    };
    let start = Instant::now();
    let mut ts = wall_clock_ts();
    let mut rejoined = false;
    'outer: while start.elapsed() < deadline {
        ts += 1;
        let request = authenticated_read(seed, client, ts);
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let round_deadline = Instant::now() + Duration::from_millis(1_500);
        while Instant::now() < round_deadline {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.replica == from && reply.request.timestamp.0 >= ts => {
                    rejoined = true;
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    tcp.close();
    rejoined
}

/// How far a victim's execution progress may trail the most advanced
/// live peer and still count as rejoined — the same watermark the
/// `/readyz` endpoint uses, so "the chaos run calls it rejoined" and
/// "the node calls itself ready" agree.
pub const REJOIN_PROGRESS_GAP: u64 = 128;

/// Waits until replica `victim`'s `STATUS` snapshot proves it rejoined:
/// it answers on its client port, reports recovery finished, has
/// executed something, and its progress is within
/// [`REJOIN_PROGRESS_GAP`] of the most advanced peer. Polls every
/// 250 ms against an explicit deadline; returns `false` on timeout.
///
/// This replaces the old reply-race probe (issue a fresh request, wait
/// for a reply carrying the victim's id) whose round could time out on
/// a loaded machine even after the victim had fully caught up — the
/// snapshot is a direct read of the victim's own gauges, so there is
/// no race to lose.
pub fn await_rejoin_via_status(addrs: &[SocketAddr], victim: usize, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(snapshot) = splitbft_net::status::fetch_snapshot(addrs[victim]) {
            let peer_frontier = addrs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .filter_map(|(_, addr)| splitbft_net::status::fetch_snapshot(*addr).ok())
                .map(|s| s.progress)
                .max()
                .unwrap_or(0);
            if !snapshot.recovering
                && snapshot.progress > 0
                && snapshot.progress + REJOIN_PROGRESS_GAP >= peer_frontier
            {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    false
}

/// Base client id for the safety-monitor clients — distinct from the
/// probe client band (64+) and the load-generator band (1000+) so
/// their request streams never collide.
pub const SAFETY_CLIENT_BASE: u32 = 32;

/// What the safety monitor observed over a chaos run.
#[derive(Debug)]
pub struct SafetyOutcome {
    /// Requests that reached an `f + 1` MAC-verified matching quorum.
    pub commits: u64,
    /// Cross-check failures: two distinct requests whose quorums both
    /// claimed the same unique counter value — a committed fork.
    pub violations: Vec<String>,
}

/// Background safety cross-check: a handful of clients issue unique
/// authenticated `inc` requests for the whole chaos run and feed every
/// quorum-accepted result into one shared [`CommitLog`].
///
/// The counter application returns the *post-increment* value, so each
/// committed `inc` yields a globally unique result on any single
/// history. If two monitor requests ever commit the same value, the
/// replicas forked — exactly the divergence an equivocating primary or
/// a badly healed partition would produce. The check is probabilistic
/// (it only sees the monitor's own commits, not the load generator's)
/// but any conflict it does report is a hard safety violation.
pub struct SafetyMonitor {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<u64>>,
    violations: Arc<Mutex<Vec<String>>>,
}

impl SafetyMonitor {
    /// Starts `clients` monitor threads against `addrs`. `quorum` is
    /// the `f + 1` matching-reply threshold.
    pub fn start(addrs: Vec<SocketAddr>, seed: u64, quorum: usize, clients: u32) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(CommitLog::new()));
        let violations = Arc::new(Mutex::new(Vec::new()));
        let handles = (0..clients.max(1))
            .map(|i| {
                let client = ClientId(SAFETY_CLIENT_BASE + i);
                let (addrs, stop) = (addrs.clone(), Arc::clone(&stop));
                let (log, violations) = (Arc::clone(&log), Arc::clone(&violations));
                std::thread::spawn(move || {
                    safety_client_loop(&addrs, seed, quorum, client, &stop, &log, &violations)
                })
            })
            .collect();
        SafetyMonitor { stop, handles, violations }
    }

    /// Stops the monitor threads and returns what they saw.
    pub fn stop(self) -> SafetyOutcome {
        self.stop.store(true, Ordering::SeqCst);
        let commits = self.handles.into_iter().map(|h| h.join().unwrap_or(0)).sum();
        let violations = self.violations.lock().map(|v| v.clone()).unwrap_or_default();
        SafetyOutcome { commits, violations }
    }
}

fn safety_client_loop(
    addrs: &[SocketAddr],
    seed: u64,
    quorum: usize,
    client: ClientId,
    stop: &AtomicBool,
    log: &Mutex<CommitLog>,
    violations: &Mutex<Vec<String>>,
) -> u64 {
    let mac = client_mac_key(seed, client);
    let mut commits = 0u64;
    let mut ts = wall_clock_ts();
    while !stop.load(Ordering::SeqCst) {
        let Ok(mut tcp) = TcpClient::connect(client, addrs, Duration::from_secs(3)) else {
            std::thread::sleep(Duration::from_millis(300));
            continue;
        };
        // Reconnect every few requests so replicas restarted or healed
        // mid-schedule rejoin this client's fan-out.
        for _ in 0..16 {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            ts += 1;
            let request = authenticated_op(seed, client, ts, b"inc");
            let mut tracker = QuorumTracker::new(mac.clone(), quorum);
            let mut agreed = None;
            // Retransmit with the *same* timestamp until quorum or
            // shutdown: the request id must stay stable so a late
            // quorum still maps to one CommitLog entry.
            while agreed.is_none() && !stop.load(Ordering::SeqCst) {
                let _ = tcp.send_all(std::slice::from_ref(&request));
                let round_deadline = Instant::now() + Duration::from_millis(1_500);
                while Instant::now() < round_deadline && agreed.is_none() {
                    match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                        Ok(reply) if reply.request.timestamp.0 == ts => {
                            agreed = tracker.on_reply(&reply);
                        }
                        _ => {}
                    }
                }
            }
            if let Some(result) = agreed {
                commits += 1;
                if let Ok(mut log) = log.lock() {
                    if let Err(conflict) = log.record(request.id, &result) {
                        if let Ok(mut v) = violations.lock() {
                            v.push(conflict.to_string());
                        }
                    }
                }
            }
        }
        tcp.close();
    }
    commits
}
