//! Cluster-side probes: committed-counter reads and rejoin detection.
//!
//! Both probes speak the raw framed transport with per-request MACs and
//! verify replies with the same `f + 1` matching-quorum rule the load
//! generator uses — protocol-independent, so one probe serves all three
//! stacks. Reads are *ordered* operations: every replica executes them
//! at the same slot, so a matching quorum pins one committed counter
//! value, not a racy snapshot.

use bytes::Bytes;
use splitbft_crypto::client_mac_key;
use splitbft_loadgen::quorum::QuorumTracker;
use splitbft_net::tcp::TcpClient;
use splitbft_types::{ClientId, ReplicaId, Request, RequestId, Timestamp};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock microseconds — the timestamp base that keeps re-used
/// probe client ids issuing fresh requests across incarnations.
fn wall_clock_ts() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1)
        .max(1)
}

fn authenticated_read(seed: u64, client: ClientId, ts: u64) -> Request {
    let mac = client_mac_key(seed, client);
    let id = RequestId { client, timestamp: Timestamp(ts) };
    let op = Bytes::from_static(b"read");
    let auth = mac.tag(&Request::auth_bytes(id, &op, false));
    Request { id, op, encrypted: false, auth }
}

/// Reads the replicated counter: issues `read` requests to every
/// reachable replica until a `quorum` of MAC-verified matching replies
/// agrees on a value.
///
/// # Errors
///
/// `TimedOut` when no quorum forms within `timeout`; connect errors
/// when no replica is reachable at all.
pub fn read_counter(
    addrs: &[SocketAddr],
    seed: u64,
    quorum: usize,
    client: ClientId,
    timeout: Duration,
) -> io::Result<u64> {
    let mac = client_mac_key(seed, client);
    let mut tcp = TcpClient::connect(client, addrs, timeout.min(Duration::from_secs(10)))?;
    let deadline = Instant::now() + timeout;
    let mut ts = wall_clock_ts();
    let result = loop {
        if Instant::now() >= deadline {
            tcp.close();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no counter quorum within {timeout:?}"),
            ));
        }
        ts += 1;
        let request = authenticated_read(seed, client, ts);
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let mut tracker = QuorumTracker::new(mac.clone(), quorum);
        // One round: collect replies to *this* timestamp; stragglers
        // answering an older probe are ignored, and an unanswered round
        // falls through to a retransmission with a fresh timestamp.
        let round_deadline = (Instant::now() + Duration::from_millis(1_500)).min(deadline);
        let mut agreed = None;
        while Instant::now() < round_deadline && agreed.is_none() {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.request.timestamp.0 == ts => {
                    agreed = tracker.on_reply(&reply);
                }
                _ => {}
            }
        }
        if let Some(result) = agreed {
            break result;
        }
    };
    tcp.close();
    let bytes: [u8; 8] = result[..].try_into().map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "counter read returned a non-u64 result")
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// Waits until replica `from` itself executes a *fresh* request,
/// observed as a reply carrying its id with a timestamp issued here.
/// Execution is strictly sequential in every protocol, so this proves
/// the replica caught up (WAL + checkpoint + state transfer) and
/// rejoined live ordering. Returns `false` on deadline.
pub fn await_executed_by(
    addrs: &[SocketAddr],
    seed: u64,
    from: ReplicaId,
    client: ClientId,
    deadline: Duration,
) -> bool {
    let Ok(mut tcp) = TcpClient::connect(client, addrs, Duration::from_secs(10)) else {
        return false;
    };
    let start = Instant::now();
    let mut ts = wall_clock_ts();
    let mut rejoined = false;
    'outer: while start.elapsed() < deadline {
        ts += 1;
        let request = authenticated_read(seed, client, ts);
        let _ = tcp.send_all(std::slice::from_ref(&request));
        let round_deadline = Instant::now() + Duration::from_millis(1_500);
        while Instant::now() < round_deadline {
            match tcp.replies().recv_timeout(Duration::from_millis(200)) {
                Ok(reply) if reply.replica == from && reply.request.timestamp.0 >= ts => {
                    rejoined = true;
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    tcp.close();
    rejoined
}
