//! Subprocess cluster management for chaos runs.
//!
//! Every replica is a real `splitbft-node serve` **subprocess** (the
//! same binary the operator deploys) with a per-replica data directory
//! and its stderr captured to a log file — `SIGKILL` means exactly what
//! it means in production. Rejoin evidence comes from each replica's
//! structured event journal, polled over the `STATUS` frame kind on
//! the client port ([`RejoinEvidence::from_events`]); the stderr logs
//! remain for human post-mortems only.

use splitbft_net::backend::TransportKind;
use splitbft_types::StatusEvent;
use std::fs::OpenOptions;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything needed to spawn one replica of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Path to the `splitbft-node` binary (usually
    /// `std::env::current_exe()` when invoked as a subcommand).
    pub serve_binary: PathBuf,
    /// Protocol name as the CLI spells it (`pbft`, `splitbft`,
    /// `minbft`).
    pub protocol: String,
    /// Cluster size.
    pub n: usize,
    /// Master seed shared by replicas and probes.
    pub seed: u64,
    /// View-change timer period written into the cluster file.
    pub timeout_ms: u64,
    /// WAL group-commit linger written into the cluster file
    /// (`0` = one fsync per event).
    pub wal_group_commit_us: u64,
    /// Consensus groups per replica; written into the cluster file as
    /// the `shards` key when above one (one keeps the file — and the
    /// replicas' on-disk layout — identical to an unsharded run).
    pub shards: u32,
    /// Socket backend the replicas serve on; written into the cluster
    /// file as the `transport` key when not the blocking default (so
    /// default runs keep their pre-transport-plane cluster files).
    pub transport: TransportKind,
    /// Scratch root: cluster file, data dirs, and stderr logs live
    /// under it.
    pub root: PathBuf,
    /// Replicas served in a Byzantine mode, as `(replica, mode)` —
    /// written into the cluster file as per-replica `byzantine` keys so
    /// every incarnation of the replica (including chaos restarts)
    /// comes back adversarial.
    pub byzantine: Vec<(usize, String)>,
}

/// A live (partially live, mid-chaos) subprocess cluster.
///
/// Children are killed on drop, so a failing orchestration never leaks
/// replica processes into the caller.
#[derive(Debug)]
pub struct ChaosCluster {
    spec: ClusterSpec,
    children: Vec<Option<Child>>,
    /// Replica listen addresses in id order.
    pub addrs: Vec<SocketAddr>,
    config_path: PathBuf,
}

impl Drop for ChaosCluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserves `n` distinct localhost ports by binding and releasing
/// ephemeral listeners. (A small race with other processes remains; a
/// collision surfaces as the replica's serve failing loudly.)
fn free_ports(n: usize) -> io::Result<Vec<u16>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<io::Result<_>>()?;
    listeners.iter().map(|l| Ok(l.local_addr()?.port())).collect()
}

impl ChaosCluster {
    /// Writes the cluster file and prepares (but does not start) the
    /// cluster. Call [`ChaosCluster::start`] per replica, or
    /// [`ChaosCluster::start_all`].
    pub fn prepare(spec: ClusterSpec) -> io::Result<Self> {
        std::fs::create_dir_all(&spec.root)?;
        let ports = free_ports(spec.n)?;
        let addrs: Vec<SocketAddr> = ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("loopback literal"))
            .collect();
        let mut toml = format!(
            "protocol = \"{}\"\nseed = {}\napp = \"counter\"\ntimeout_ms = {}\nwal_group_commit_us = {}\n",
            spec.protocol, spec.seed, spec.timeout_ms, spec.wal_group_commit_us,
        );
        if spec.shards > 1 {
            toml.push_str(&format!("shards = {}\n", spec.shards));
        }
        if spec.transport != TransportKind::default() {
            toml.push_str(&format!("transport = \"{}\"\n", spec.transport));
        }
        for (id, port) in ports.iter().enumerate() {
            toml.push_str(&format!("\n[[replica]]\nid = {id}\naddr = \"127.0.0.1:{port}\"\n"));
            if let Some((_, mode)) = spec.byzantine.iter().find(|(r, _)| *r == id) {
                toml.push_str(&format!("byzantine = \"{mode}\"\n"));
            }
        }
        let config_path = spec.root.join("cluster.toml");
        std::fs::write(&config_path, toml)?;
        let children = (0..spec.n).map(|_| None).collect();
        Ok(ChaosCluster { spec, children, addrs, config_path })
    }

    /// The scratch root this cluster lives under.
    pub fn root(&self) -> &Path {
        &self.spec.root
    }

    /// The stderr log file of one replica (all incarnations append).
    pub fn log_path(&self, replica: usize) -> PathBuf {
        self.spec.root.join(format!("replica-{replica}.stderr.log"))
    }

    /// The durability root shared by all replicas (each persists under
    /// `data/replica-<id>/`).
    pub fn data_dir(&self) -> PathBuf {
        self.spec.root.join("data")
    }

    /// Spawns (or respawns) replica `id` from its data directory.
    /// Stderr is *appended* to the replica's log so recovery markers
    /// from every incarnation accumulate in order.
    ///
    /// # Errors
    ///
    /// Spawn failures; starting an already-running replica is refused.
    pub fn start(&mut self, id: usize) -> io::Result<()> {
        if self.children[id].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("replica {id} is already running"),
            ));
        }
        let log = OpenOptions::new().create(true).append(true).open(self.log_path(id))?;
        let child = Command::new(&self.spec.serve_binary)
            .args([
                "serve",
                "--config",
                self.config_path.to_str().ok_or_else(non_utf8)?,
                "--replica",
                &id.to_string(),
                "--data-dir",
                self.data_dir().to_str().ok_or_else(non_utf8)?,
                // Chaos replicas must accept the orchestrator's
                // FAULT_CONTROL frames (partitions, link rules); the
                // serve default refuses them.
                "--enable-fault-injection",
                // And its STATUS admin verbs (graceful drain), gated
                // the same way.
                "--enable-status-admin",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::from(log))
            .spawn()?;
        self.children[id] = Some(child);
        Ok(())
    }

    /// Starts every replica.
    pub fn start_all(&mut self) -> io::Result<()> {
        for id in 0..self.spec.n {
            self.start(id)?;
        }
        Ok(())
    }

    /// `SIGKILL`s replica `id` — no flush, no goodbye. A no-op if it is
    /// not running.
    pub fn kill(&mut self, id: usize) {
        if let Some(mut child) = self.children[id].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Gracefully drains replica `id`: sends `SIGTERM` (via `kill(1)` —
    /// the orchestrator crate forbids unsafe code, so no raw syscall)
    /// and waits for the process to seal its checkpoint, flush its WAL,
    /// and exit 0 within `timeout`.
    ///
    /// # Errors
    ///
    /// The replica not running, the signal failing to send, a nonzero
    /// exit status, or the deadline passing (the victim is `SIGKILL`ed
    /// then, so the cluster is never left with a zombie drainer).
    pub fn drain(&mut self, id: usize, timeout: Duration) -> io::Result<()> {
        let Some(child) = self.children[id].as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("replica {id} is not running"),
            ));
        };
        let pid = child.id();
        let sent = Command::new("kill").args(["-TERM", &pid.to_string()]).status()?;
        if !sent.success() {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                format!("kill -TERM {pid} exited with {sent}"),
            ));
        }
        let deadline = Instant::now() + timeout;
        loop {
            match child.try_wait()? {
                Some(status) if status.success() => {
                    self.children[id] = None;
                    return Ok(());
                }
                Some(status) => {
                    self.children[id] = None;
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("replica {id} exited with {status} instead of draining cleanly"),
                    ));
                }
                None if Instant::now() >= deadline => {
                    self.kill(id);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("replica {id} did not finish draining within {timeout:?}"),
                    ));
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// `true` while replica `id`'s process is alive.
    pub fn running(&mut self, id: usize) -> bool {
        match &mut self.children[id] {
            None => false,
            Some(child) => match child.try_wait() {
                Ok(None) => true,
                _ => {
                    self.children[id] = None;
                    false
                }
            },
        }
    }

    /// Kills every replica and removes the scratch root (unless
    /// `keep_data`).
    pub fn teardown(mut self, keep_data: bool) {
        for id in 0..self.children.len() {
            self.kill(id);
        }
        if !keep_data {
            let _ = std::fs::remove_dir_all(&self.spec.root);
        }
    }
}

fn non_utf8() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, "non-UTF-8 path")
}

/// A cursor over one replica's `STATUS` event journal, yielding only
/// events recorded since the last read — phase-scoped evidence
/// scanning, replacing the old stderr-log cursor.
///
/// Restart-aware: a respawned victim comes back with a fresh journal
/// whose head restarts from zero. The orchestrator calls
/// [`EventCursor::rewind`] when it respawns the victim (so the new
/// incarnation's whole journal — `Recovered`, `CheckpointRestored`,
/// `StateTransferApplied` — counts as phase evidence), and
/// [`EventCursor::read_new`] additionally detects a head below the
/// cursor and re-reads from the journal's start as a safety net.
#[derive(Debug)]
pub struct EventCursor {
    addr: SocketAddr,
    since: u64,
}

impl EventCursor {
    /// A cursor starting at the journal's current head (events from
    /// before this phase are skipped). An unreachable replica — not
    /// started yet, mid-crash — yields a cursor at zero, so its next
    /// incarnation's whole journal counts.
    pub fn at_head(addr: SocketAddr) -> Self {
        let since = splitbft_net::status::fetch_snapshot(addr)
            .map(|s| s.journal_head)
            .unwrap_or(0);
        EventCursor { addr, since }
    }

    /// Resets the cursor to the journal's start — called when the
    /// replica is respawned, so the fresh incarnation's recovery events
    /// are all captured.
    pub fn rewind(&mut self) {
        self.since = 0;
    }

    /// Every event recorded since the previous call. Transient fetch
    /// errors (the replica is down or mid-restart) yield no events and
    /// leave the cursor unchanged for a later retry.
    pub fn read_new(&mut self) -> Vec<StatusEvent> {
        let (head, events) = match splitbft_net::status::fetch_events(self.addr, self.since) {
            Ok((head, _)) if head < self.since => {
                // The journal restarted under us (a respawn the
                // orchestrator didn't announce): re-read it in full.
                self.since = 0;
                match splitbft_net::status::fetch_events(self.addr, 0) {
                    Ok(r) => r,
                    Err(_) => return Vec::new(),
                }
            }
            Ok(r) => r,
            Err(_) => return Vec::new(),
        };
        self.since = head;
        events.into_iter().map(|(_, event)| event).collect()
    }
}

/// Rejoin evidence distilled from a replica's structured event journal
/// (served over `STATUS` on the client port).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejoinEvidence {
    /// Total messages fed through the state-transfer log-suffix path
    /// ([`StatusEvent::StateTransferApplied`]). Each is re-verified by
    /// the protocol, so this counts what was *offered*.
    pub suffix_messages_applied: u64,
    /// Execution progress the suffix applications actually bought (the
    /// events' `from_progress → to_progress` deltas summed) — the
    /// honest proof of a log-path rejoin, since offered messages can be
    /// rejected.
    pub suffix_progress: u64,
    /// A peer (or local) checkpoint was restored
    /// ([`StatusEvent::CheckpointRestored`]).
    pub checkpoint_restored: bool,
    /// WAL events replayed by local crash recovery
    /// ([`StatusEvent::Recovered`]).
    pub wal_events_replayed: u64,
}

impl RejoinEvidence {
    /// Distills journal events (as `(index, event)` pairs from a
    /// `STATUS` events query) into rejoin evidence. Events that carry
    /// no recovery story (view changes, checkpoint seals, fault-plan
    /// mutations, drains) are ignored.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a StatusEvent>) -> Self {
        let mut evidence = RejoinEvidence::default();
        for event in events {
            match event {
                StatusEvent::StateTransferApplied { messages, from_progress, to_progress } => {
                    evidence.suffix_messages_applied += messages;
                    evidence.suffix_progress += to_progress.saturating_sub(*from_progress);
                }
                StatusEvent::CheckpointRestored { .. } => evidence.checkpoint_restored = true,
                StatusEvent::Recovered { replayed_events, .. } => {
                    evidence.wal_events_replayed += replayed_events;
                }
                _ => {}
            }
        }
        evidence
    }

    /// Merges a later excerpt's evidence into this one.
    pub fn merge(&mut self, other: RejoinEvidence) {
        self.suffix_messages_applied += other.suffix_messages_applied;
        self.suffix_progress += other.suffix_progress;
        self.checkpoint_restored |= other.checkpoint_restored;
        self.wal_events_replayed += other.wal_events_replayed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_distills_the_journal_events() {
        let events = vec![
            StatusEvent::Recovered { replayed_events: 7, checkpoint_seq: 40 },
            StatusEvent::StateTransferApplied { messages: 12, from_progress: 40, to_progress: 43 },
            StatusEvent::StateTransferApplied { messages: 3, from_progress: 43, to_progress: 43 },
            StatusEvent::CheckpointRestored { seq: 40, agreeing_peers: 2 },
            StatusEvent::ViewChange { view: 1 },
        ];
        let evidence = RejoinEvidence::from_events(&events);
        assert_eq!(evidence.suffix_messages_applied, 15);
        assert_eq!(evidence.suffix_progress, 3, "only real execution progress counts");
        assert!(evidence.checkpoint_restored);
        assert_eq!(evidence.wal_events_replayed, 7);
    }

    #[test]
    fn evidence_ignores_non_recovery_events() {
        let events = vec![
            StatusEvent::ViewChange { view: 2 },
            StatusEvent::CheckpointSealed { seq: 20 },
            StatusEvent::FaultPlanApplied,
            StatusEvent::DrainRequested,
        ];
        assert_eq!(RejoinEvidence::from_events(&events), RejoinEvidence::default());
    }

    #[test]
    fn evidence_merges_across_excerpts() {
        let mut a = RejoinEvidence {
            suffix_messages_applied: 2,
            suffix_progress: 1,
            checkpoint_restored: false,
            wal_events_replayed: 3,
        };
        a.merge(RejoinEvidence {
            suffix_messages_applied: 4,
            suffix_progress: 2,
            checkpoint_restored: true,
            wal_events_replayed: 0,
        });
        assert_eq!(a.suffix_messages_applied, 6);
        assert_eq!(a.suffix_progress, 3);
        assert!(a.checkpoint_restored);
        assert_eq!(a.wal_events_replayed, 3);
    }
}
