//! Subprocess cluster management for chaos runs.
//!
//! Every replica is a real `splitbft-node serve` **subprocess** (the
//! same binary the operator deploys) with a per-replica data directory
//! and its stderr captured to a log file — `SIGKILL` means exactly what
//! it means in production, and the recovery markers the runtime prints
//! (`state-transfer: …`) survive the process to be parsed as rejoin
//! evidence.

use splitbft_net::backend::TransportKind;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Everything needed to spawn one replica of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Path to the `splitbft-node` binary (usually
    /// `std::env::current_exe()` when invoked as a subcommand).
    pub serve_binary: PathBuf,
    /// Protocol name as the CLI spells it (`pbft`, `splitbft`,
    /// `minbft`).
    pub protocol: String,
    /// Cluster size.
    pub n: usize,
    /// Master seed shared by replicas and probes.
    pub seed: u64,
    /// View-change timer period written into the cluster file.
    pub timeout_ms: u64,
    /// WAL group-commit linger written into the cluster file
    /// (`0` = one fsync per event).
    pub wal_group_commit_us: u64,
    /// Consensus groups per replica; written into the cluster file as
    /// the `shards` key when above one (one keeps the file — and the
    /// replicas' on-disk layout — identical to an unsharded run).
    pub shards: u32,
    /// Socket backend the replicas serve on; written into the cluster
    /// file as the `transport` key when not the blocking default (so
    /// default runs keep their pre-transport-plane cluster files).
    pub transport: TransportKind,
    /// Scratch root: cluster file, data dirs, and stderr logs live
    /// under it.
    pub root: PathBuf,
    /// Replicas served in a Byzantine mode, as `(replica, mode)` —
    /// written into the cluster file as per-replica `byzantine` keys so
    /// every incarnation of the replica (including chaos restarts)
    /// comes back adversarial.
    pub byzantine: Vec<(usize, String)>,
}

/// A live (partially live, mid-chaos) subprocess cluster.
///
/// Children are killed on drop, so a failing orchestration never leaks
/// replica processes into the caller.
#[derive(Debug)]
pub struct ChaosCluster {
    spec: ClusterSpec,
    children: Vec<Option<Child>>,
    /// Replica listen addresses in id order.
    pub addrs: Vec<SocketAddr>,
    config_path: PathBuf,
}

impl Drop for ChaosCluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserves `n` distinct localhost ports by binding and releasing
/// ephemeral listeners. (A small race with other processes remains; a
/// collision surfaces as the replica's serve failing loudly.)
fn free_ports(n: usize) -> io::Result<Vec<u16>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<io::Result<_>>()?;
    listeners.iter().map(|l| Ok(l.local_addr()?.port())).collect()
}

impl ChaosCluster {
    /// Writes the cluster file and prepares (but does not start) the
    /// cluster. Call [`ChaosCluster::start`] per replica, or
    /// [`ChaosCluster::start_all`].
    pub fn prepare(spec: ClusterSpec) -> io::Result<Self> {
        std::fs::create_dir_all(&spec.root)?;
        let ports = free_ports(spec.n)?;
        let addrs: Vec<SocketAddr> = ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("loopback literal"))
            .collect();
        let mut toml = format!(
            "protocol = \"{}\"\nseed = {}\napp = \"counter\"\ntimeout_ms = {}\nwal_group_commit_us = {}\n",
            spec.protocol, spec.seed, spec.timeout_ms, spec.wal_group_commit_us,
        );
        if spec.shards > 1 {
            toml.push_str(&format!("shards = {}\n", spec.shards));
        }
        if spec.transport != TransportKind::default() {
            toml.push_str(&format!("transport = \"{}\"\n", spec.transport));
        }
        for (id, port) in ports.iter().enumerate() {
            toml.push_str(&format!("\n[[replica]]\nid = {id}\naddr = \"127.0.0.1:{port}\"\n"));
            if let Some((_, mode)) = spec.byzantine.iter().find(|(r, _)| *r == id) {
                toml.push_str(&format!("byzantine = \"{mode}\"\n"));
            }
        }
        let config_path = spec.root.join("cluster.toml");
        std::fs::write(&config_path, toml)?;
        let children = (0..spec.n).map(|_| None).collect();
        Ok(ChaosCluster { spec, children, addrs, config_path })
    }

    /// The scratch root this cluster lives under.
    pub fn root(&self) -> &Path {
        &self.spec.root
    }

    /// The stderr log file of one replica (all incarnations append).
    pub fn log_path(&self, replica: usize) -> PathBuf {
        self.spec.root.join(format!("replica-{replica}.stderr.log"))
    }

    /// The durability root shared by all replicas (each persists under
    /// `data/replica-<id>/`).
    pub fn data_dir(&self) -> PathBuf {
        self.spec.root.join("data")
    }

    /// Spawns (or respawns) replica `id` from its data directory.
    /// Stderr is *appended* to the replica's log so recovery markers
    /// from every incarnation accumulate in order.
    ///
    /// # Errors
    ///
    /// Spawn failures; starting an already-running replica is refused.
    pub fn start(&mut self, id: usize) -> io::Result<()> {
        if self.children[id].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("replica {id} is already running"),
            ));
        }
        let log = OpenOptions::new().create(true).append(true).open(self.log_path(id))?;
        let child = Command::new(&self.spec.serve_binary)
            .args([
                "serve",
                "--config",
                self.config_path.to_str().ok_or_else(non_utf8)?,
                "--replica",
                &id.to_string(),
                "--data-dir",
                self.data_dir().to_str().ok_or_else(non_utf8)?,
                // Chaos replicas must accept the orchestrator's
                // FAULT_CONTROL frames (partitions, link rules); the
                // serve default refuses them.
                "--enable-fault-injection",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::from(log))
            .spawn()?;
        self.children[id] = Some(child);
        Ok(())
    }

    /// Starts every replica.
    pub fn start_all(&mut self) -> io::Result<()> {
        for id in 0..self.spec.n {
            self.start(id)?;
        }
        Ok(())
    }

    /// `SIGKILL`s replica `id` — no flush, no goodbye. A no-op if it is
    /// not running.
    pub fn kill(&mut self, id: usize) {
        if let Some(mut child) = self.children[id].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// `true` while replica `id`'s process is alive.
    pub fn running(&mut self, id: usize) -> bool {
        match &mut self.children[id] {
            None => false,
            Some(child) => match child.try_wait() {
                Ok(None) => true,
                _ => {
                    self.children[id] = None;
                    false
                }
            },
        }
    }

    /// Kills every replica and removes the scratch root (unless
    /// `keep_data`).
    pub fn teardown(mut self, keep_data: bool) {
        for id in 0..self.children.len() {
            self.kill(id);
        }
        if !keep_data {
            let _ = std::fs::remove_dir_all(&self.spec.root);
        }
    }
}

fn non_utf8() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, "non-UTF-8 path")
}

/// A cursor over one replica's stderr log, yielding only the bytes
/// appended since the last read — phase-scoped evidence scanning.
#[derive(Debug)]
pub struct LogCursor {
    path: PathBuf,
    offset: u64,
}

impl LogCursor {
    /// A cursor starting at the log's current end (earlier incarnations'
    /// output is skipped).
    pub fn at_end(path: PathBuf) -> Self {
        let offset = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        LogCursor { path, offset }
    }

    /// A cursor reading from the beginning.
    pub fn from_start(path: PathBuf) -> Self {
        LogCursor { path, offset: 0 }
    }

    /// Everything appended since the previous call (lossy UTF-8).
    pub fn read_new(&mut self) -> String {
        let Ok(mut file) = File::open(&self.path) else { return String::new() };
        if file.seek(SeekFrom::Start(self.offset)).is_err() {
            return String::new();
        }
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            return String::new();
        }
        self.offset += bytes.len() as u64;
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// Rejoin evidence distilled from a replica's stderr markers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejoinEvidence {
    /// Total messages fed through the state-transfer log-suffix path
    /// (`state-transfer: … applied N suffix message(s) …`). Each is
    /// re-verified by the protocol, so this counts what was *offered*.
    pub suffix_messages_applied: u64,
    /// Execution progress the suffix applications actually bought (the
    /// `(progress B -> A)` deltas summed) — the honest proof of a
    /// log-path rejoin, since offered messages can be rejected.
    pub suffix_progress: u64,
    /// A peer checkpoint was restored (`state-transfer: … restored
    /// checkpoint …`).
    pub checkpoint_restored: bool,
    /// WAL events replayed by local crash recovery (`replica N:
    /// recovered …, replayed N WAL events`).
    pub wal_events_replayed: u64,
}

impl RejoinEvidence {
    /// Parses the marker lines out of a log excerpt. Unknown lines are
    /// ignored — the log also carries ordinary diagnostics.
    pub fn parse(log: &str) -> Self {
        let mut evidence = RejoinEvidence::default();
        for line in log.lines() {
            if let Some(rest) = line.strip_prefix("state-transfer: ") {
                if rest.contains("restored checkpoint") {
                    evidence.checkpoint_restored = true;
                } else if let Some(n) = number_before(rest, " suffix message") {
                    evidence.suffix_messages_applied += n;
                    evidence.suffix_progress += progress_delta(rest).unwrap_or(0);
                }
            } else if let Some(n) = number_before(line, " WAL events") {
                evidence.wal_events_replayed += n;
            }
        }
        evidence
    }

    /// Merges a later excerpt's evidence into this one.
    pub fn merge(&mut self, other: RejoinEvidence) {
        self.suffix_messages_applied += other.suffix_messages_applied;
        self.suffix_progress += other.suffix_progress;
        self.checkpoint_restored |= other.checkpoint_restored;
        self.wal_events_replayed += other.wal_events_replayed;
    }
}

/// The execution-progress delta from a suffix marker's trailing
/// `(progress B -> A)`, saturating at zero.
fn progress_delta(line: &str) -> Option<u64> {
    let rest = &line[line.find("(progress ")? + "(progress ".len()..];
    let (before, rest) = rest.split_once(" -> ")?;
    let after = rest.split(')').next()?;
    Some(after.trim().parse::<u64>().ok()?.saturating_sub(before.trim().parse().ok()?))
}

/// The integer immediately preceding `marker` in `line`, if any —
/// `"applied 12 suffix message(s)"` → `12` for marker
/// `" suffix message"`.
fn number_before(line: &str, marker: &str) -> Option<u64> {
    let end = line.find(marker)?;
    let head = &line[..end];
    let digits: String =
        head.chars().rev().take_while(char::is_ascii_digit).collect::<Vec<_>>().into_iter().rev().collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_parses_the_runtime_markers() {
        let log = "\
replica 3: recovered checkpoint Some(40), replayed 7 WAL events
state-transfer: replica 3 applied 12 suffix message(s) from replica 0 (progress 40 -> 43)
state-transfer: replica 3 applied 3 suffix message(s) from replica 1 (progress 43 -> 43)
state-transfer: replica 3 restored checkpoint seq=40 from 2 agreeing peer(s)
replica 3 serving splitbft on 127.0.0.1:7103 (4 replicas, app Counter)
";
        let evidence = RejoinEvidence::parse(log);
        assert_eq!(evidence.suffix_messages_applied, 15);
        assert_eq!(evidence.suffix_progress, 3, "only real execution progress counts");
        assert!(evidence.checkpoint_restored);
        assert_eq!(evidence.wal_events_replayed, 7);

        // Lines without the delta (older format / truncated) still
        // count their messages, contributing zero progress.
        let bare =
            RejoinEvidence::parse("state-transfer: replica 1 applied 5 suffix message(s) from replica 0\n");
        assert_eq!(bare.suffix_messages_applied, 5);
        assert_eq!(bare.suffix_progress, 0);
    }

    #[test]
    fn evidence_ignores_unrelated_noise() {
        let evidence = RejoinEvidence::parse("error: something unrelated\nsuffix message\n");
        assert_eq!(evidence, RejoinEvidence::default());
    }

    #[test]
    fn log_cursor_yields_only_new_bytes() {
        let dir = std::env::temp_dir().join(format!("splitbft-chaos-cursor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        std::fs::write(&path, "first\n").unwrap();
        let mut cursor = LogCursor::from_start(path.clone());
        assert_eq!(cursor.read_new(), "first\n");
        assert_eq!(cursor.read_new(), "");
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        use std::io::Write as _;
        file.write_all(b"second\n").unwrap();
        drop(file);
        assert_eq!(cursor.read_new(), "second\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
