//! Typed chaos-orchestration errors.
//!
//! A schedule that cannot possibly pass on the requested
//! protocol/cluster shape must fail *before* any subprocess spawns —
//! [`ChaosError::Unsupported`] carries enough structure for callers to
//! skip the combination under a `--compare` sweep instead of treating
//! it as a broken cluster. Everything the run itself can break on is an
//! [`ChaosError::Io`]; a run that completed but whose assertions did
//! not hold is [`ChaosError::Failed`], carrying the full report for
//! post-mortems.

use crate::report::ChaosReport;
use std::fmt;
use std::io;

/// Why a chaos run did not produce a passing report.
#[derive(Debug)]
pub enum ChaosError {
    /// The schedule requests something the protocol or cluster shape
    /// cannot support — detected up front, before any process spawns.
    Unsupported {
        /// The scenario that was requested.
        scenario: String,
        /// The protocol it was requested against.
        protocol: String,
        /// Why the combination cannot work.
        reason: String,
    },
    /// Orchestration I/O: spawns, probes, fault-command delivery.
    Io(io::Error),
    /// The run completed but a phase assertion (or the safety
    /// cross-check) failed; the report captures what happened.
    Failed {
        /// The first failure, human-readable.
        reason: String,
        /// The complete (failing) report.
        report: Box<ChaosReport>,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Unsupported { scenario, protocol, reason } => {
                write!(f, "scenario {scenario} is unsupported on {protocol}: {reason}")
            }
            ChaosError::Io(e) => write!(f, "chaos orchestration: {e}"),
            ChaosError::Failed { reason, report } => {
                write!(f, "chaos scenario {} failed: {reason}", report.scenario)
            }
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ChaosError {
    fn from(e: io::Error) -> Self {
        ChaosError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_unsupported_combination() {
        let e = ChaosError::Unsupported {
            scenario: "partition-primary".into(),
            protocol: "minbft".into(),
            reason: "no view change".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("partition-primary"));
        assert!(msg.contains("minbft"));
        assert!(msg.contains("no view change"));
    }
}
