//! End-to-end tests of the PBFT replica over a deterministic in-memory
//! message pump: normal operation, batching, checkpoint garbage
//! collection, state transfer, view changes (crash + byzantine primary),
//! and the safety of equivocation handling.

use bytes::Bytes;
use splitbft_app::{Application, CounterApp, KeyValueStore, KvOp};
use splitbft_pbft::{make_request, Action, ClientEvent, PbftClient, Replica, Status};
use splitbft_types::{
    ClientId, ClusterConfig, ConsensusMessage, ReplicaId, Reply, Request, SeqNum, Timestamp, View,
};
use std::collections::VecDeque;

const SEED: u64 = 1234;

/// A deterministic cluster harness: delivers messages in FIFO order,
/// optionally dropping everything to/from "down" replicas.
struct Cluster<A> {
    replicas: Vec<Replica<A>>,
    queues: Vec<VecDeque<ConsensusMessage>>,
    replies: Vec<Reply>,
    down: Vec<bool>,
}

impl<A: Application> Cluster<A> {
    fn new(n: usize, interval: u64, mk: impl Fn() -> A) -> Self {
        let cfg = ClusterConfig::new(n).unwrap().with_checkpoint_interval(interval);
        let replicas = (0..n as u32)
            .map(|i| Replica::new(cfg.clone(), ReplicaId(i), SEED, mk()))
            .collect();
        Cluster {
            replicas,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            replies: Vec::new(),
            down: vec![false; n],
        }
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    fn handle_actions(&mut self, from: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast { msg } => {
                    for to in 0..self.n() {
                        if to != from && !self.down[to] {
                            self.queues[to].push_back(msg.clone());
                        }
                    }
                }
                Action::Send { to, msg } => {
                    if !self.down[to.as_usize()] {
                        self.queues[to.as_usize()].push_back(msg);
                    }
                }
                Action::SendReply { reply, .. } => self.replies.push(reply),
                _ => {}
            }
        }
    }

    /// Runs the message pump until no replica has pending input.
    fn run(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.n() {
                if self.down[i] {
                    self.queues[i].clear();
                    continue;
                }
                while let Some(msg) = self.queues[i].pop_front() {
                    progressed = true;
                    let actions = self.replicas[i].on_message(msg).unwrap_or_default();
                    self.handle_actions(i, actions);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn submit(&mut self, primary: usize, requests: Vec<Request>) {
        let actions = self.replicas[primary].on_client_batch(requests);
        self.handle_actions(primary, actions);
        self.run();
    }

    fn timeout_all_up(&mut self) {
        for i in 0..self.n() {
            if !self.down[i] {
                let actions = self.replicas[i].on_view_timeout();
                self.handle_actions(i, actions);
            }
        }
        self.run();
    }
}

fn request(client: u32, ts: u64, op: Bytes) -> Request {
    make_request(SEED, ClientId(client), Timestamp(ts), op)
}

#[test]
fn single_request_executes_on_all_replicas() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![request(0, 1, Bytes::from_static(b"inc"))]);

    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(1), "replica {} lags", r.id());
        assert_eq!(r.app().value(), 1);
    }
    // One reply from each of the four replicas.
    assert_eq!(cluster.replies.len(), 4);
    assert!(cluster.replies.iter().all(|r| r.result == Bytes::copy_from_slice(&1u64.to_le_bytes())));
}

#[test]
fn client_collects_reply_quorum() {
    let cfg = ClusterConfig::new(4).unwrap();
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    let mut client = PbftClient::new(cfg, ClientId(3), SEED);
    let req = client.issue(KvOp::put(b"k", b"v").encode_op());
    cluster.submit(0, vec![req]);

    let mut completed = None;
    for reply in &cluster.replies {
        if let ClientEvent::Completed(result) = client.on_reply(reply) {
            completed = Some(result);
            break;
        }
    }
    // PUT returns the previous value: empty.
    assert_eq!(completed, Some(Bytes::new()));
}

#[test]
fn sequence_of_requests_stays_consistent() {
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    for i in 0..20u64 {
        let op = KvOp::put(format!("key{}", i % 4).as_bytes(), &i.to_le_bytes()).encode_op();
        cluster.submit(0, vec![request(0, i + 1, op)]);
    }
    let digest = cluster.replicas[0].state_digest();
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(20));
        assert_eq!(r.state_digest(), digest, "state divergence at {}", r.id());
    }
}

#[test]
fn duplicate_request_resends_cached_reply_without_reexecution() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    let req = request(0, 1, Bytes::from_static(b"inc"));
    cluster.submit(0, vec![req.clone()]);
    assert_eq!(cluster.replicas[0].app().value(), 1);
    let replies_before = cluster.replies.len();

    // Re-submission with the same timestamp: cached reply, no state change.
    cluster.submit(0, vec![req]);
    assert_eq!(cluster.replicas[0].app().value(), 1);
    assert_eq!(cluster.replicas[0].last_executed(), SeqNum(1));
    assert!(cluster.replies.len() > replies_before, "cached reply resent");
}

#[test]
fn forged_request_rejected_by_primary() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    let mut req = request(0, 1, Bytes::from_static(b"inc"));
    req.auth = [0u8; 32];
    cluster.submit(0, vec![req]);
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(0));
        assert_eq!(r.app().value(), 0);
    }
}

#[test]
fn checkpoints_advance_watermark_and_gc() {
    let mut cluster = Cluster::new(4, 4, CounterApp::new);
    for i in 0..9u64 {
        cluster.submit(0, vec![request(0, i + 1, Bytes::from_static(b"inc"))]);
    }
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(9));
        // Two checkpoints (at 4 and 8) should have stabilized.
        assert_eq!(r.stable_seq(), SeqNum(8), "stable at {}", r.id());
    }
}

#[test]
fn lagging_replica_catches_up_via_state_transfer() {
    let mut cluster = Cluster::new(4, 4, CounterApp::new);
    // Replica 3 is partitioned away; the other three keep the protocol
    // live (n=4 tolerates one fault).
    cluster.down[3] = true;
    for i in 0..8u64 {
        cluster.submit(0, vec![request(0, i + 1, Bytes::from_static(b"inc"))]);
    }
    assert_eq!(cluster.replicas[3].last_executed(), SeqNum(0));

    // Partition heals; replica 3 receives the next checkpoint quorum and
    // adopts the certified snapshot.
    cluster.down[3] = false;
    for i in 8..12u64 {
        cluster.submit(0, vec![request(0, i + 1, Bytes::from_static(b"inc"))]);
    }
    let r3 = &cluster.replicas[3];
    assert!(r3.stable_seq() >= SeqNum(12), "stable: {:?}", r3.stable_seq());
    assert_eq!(r3.app().value(), 12, "state transfer restored the counter");
}

#[test]
fn view_change_elects_next_primary_after_crash() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    cluster.submit(0, vec![request(0, 1, Bytes::from_static(b"inc"))]);

    // Primary r0 crashes.
    cluster.down[0] = true;
    cluster.timeout_all_up();

    for i in 1..4 {
        let r = &cluster.replicas[i];
        assert_eq!(r.view(), View(1), "replica {i} entered view 1");
        assert_eq!(r.status(), Status::Normal, "replica {i} back to normal");
    }

    // The new primary (r1) orders new requests.
    cluster.submit(1, vec![request(0, 2, Bytes::from_static(b"inc"))]);
    for i in 1..4 {
        assert_eq!(cluster.replicas[i].app().value(), 2, "replica {i} executed");
    }
}

#[test]
fn prepared_request_survives_view_change() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);

    // The primary proposes, prepares happen, but we cut commits off by
    // downing the primary after the proposal fully propagates prepares:
    // deliver the pre-prepare + prepares but then crash r0 before anyone
    // can finish. Simplest deterministic approximation: run the full
    // round but only to the point where prepares are exchanged. We do it
    // by submitting while replica 0 processes, then manually timing out.
    let actions = cluster.replicas[0].on_client_batch(vec![request(
        0,
        1,
        Bytes::from_static(b"inc"),
    )]);
    cluster.handle_actions(0, actions);
    // Deliver only to backups 1..3 and let them exchange prepares among
    // themselves but not commits back to a living primary.
    cluster.down[0] = true;
    cluster.run();

    // Execution may or may not have completed on backups depending on
    // commit exchange; either way, a view change must preserve the value.
    cluster.timeout_all_up();
    cluster.run();

    // After the view change the new primary re-issued the prepared
    // request (or it already executed); order more work and check the
    // counter reflects both.
    cluster.submit(1, vec![request(0, 2, Bytes::from_static(b"inc"))]);
    for i in 1..4 {
        assert_eq!(
            cluster.replicas[i].app().value(),
            2,
            "replica {i}: first request lost across view change"
        );
        assert_eq!(cluster.replicas[i].view(), View(1));
    }
}

#[test]
fn cascading_timeouts_reach_view_two() {
    let mut cluster = Cluster::new(4, 128, CounterApp::new);
    // r0 and r1 both down: view 1 (primary r1) cannot form either; the
    // remaining two replicas escalate to view 2, but with only 2
    // correct replicas there is no quorum — they stay in view change.
    // Escalation is *damped*: after voting a view, a replica spends two
    // timeouts re-broadcasting that vote (so stragglers can converge on
    // it) before targeting the next view, so reaching view 2 takes four
    // timeout rounds, not two.
    cluster.down[0] = true;
    cluster.down[1] = true;
    for _ in 0..4 {
        cluster.timeout_all_up();
    }
    for i in 2..4 {
        let r = &cluster.replicas[i];
        assert!(r.view() >= View(2), "replica {i} escalated");
        assert_eq!(r.status(), Status::InViewChange);
    }
}

#[test]
fn equivocating_primary_cannot_split_the_cluster() {
    // A byzantine primary sends different batches to different backups.
    // We simulate by constructing two conflicting client batches and
    // delivering the resulting PrePrepares selectively.
    let mut cluster = Cluster::new(4, 128, CounterApp::new);

    let a1 = cluster.replicas[0].on_client_batch(vec![request(0, 1, Bytes::from_static(b"inc"))]);
    let pp1 = a1.iter().find_map(Action::message).cloned().expect("pre-prepare");

    // Reset replica 0 by building a second, different proposal at the
    // same sequence from a fresh twin (same keys — byzantine behaviour).
    let cfg = ClusterConfig::new(4).unwrap();
    let mut twin = Replica::new(cfg, ReplicaId(0), SEED, CounterApp::new());
    let a2 = twin.on_client_batch(vec![request(1, 1, Bytes::from_static(b"inc"))]);
    let pp2 = a2.iter().find_map(Action::message).cloned().expect("pre-prepare");

    // r1 gets proposal A; r2 and r3 get proposal B.
    cluster.queues[1].push_back(pp1);
    cluster.queues[2].push_back(pp2.clone());
    cluster.queues[3].push_back(pp2);
    cluster.run();

    // No slot may execute two different batches: r1 prepared A but can
    // never gather 2f matching prepares (r2/r3 prepared B), so r1 must
    // not execute. r2/r3 can commit B only with primary+r2+r3 commits.
    let digests: Vec<_> = (1..4)
        .filter(|&i| cluster.replicas[i].last_executed() == SeqNum(1))
        .map(|i| cluster.replicas[i].state_digest())
        .collect();
    for w in digests.windows(2) {
        assert_eq!(w[0], w[1], "executed replicas diverged: safety violation");
    }
}

#[test]
fn batch_of_many_requests_executes_in_order() {
    let mut cluster = Cluster::new(4, 128, KeyValueStore::new);
    let requests: Vec<Request> = (0..50u64)
        .map(|i| {
            request(
                i as u32 % 7,
                i / 7 + 1,
                KvOp::put(format!("k{i}").as_bytes(), b"v").encode_op(),
            )
        })
        .collect();
    cluster.submit(0, requests);
    for r in &cluster.replicas {
        assert_eq!(r.last_executed(), SeqNum(1), "one batch, one slot");
        assert_eq!(r.app().len(), 50);
    }
}
