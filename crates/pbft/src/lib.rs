//! Practical Byzantine Fault Tolerance — the baseline protocol.
//!
//! This crate implements complete PBFT (Castro & Liskov, OSDI '99) as a
//! sans-I/O state machine: normal three-phase operation, checkpointing
//! with state transfer, the view-change sub-protocol with the `f + 1` join
//! rule, request batching, and the client-side reply-quorum logic. It is
//! the baseline the paper evaluates SplitBFT against, and it supplies the
//! building blocks ([`MessageLog`], [`CheckpointTracker`],
//! [`ViewChangeTracker`], new-view planning, deep verification) that the
//! SplitBFT compartments in `splitbft-core` reuse.
//!
//! # Architecture
//!
//! - [`replica::Replica`] — the per-replica state machine; feed it
//!   messages and timer events, interpret the returned
//!   [`action::Action`]s.
//! - [`client::PbftClient`] — issues authenticated requests and collects
//!   `f + 1` matching replies.
//! - [`batcher::Batcher`] — size/timeout request batching (untrusted-side
//!   logic per principle P1).
//! - [`log`], [`checkpoint`], [`viewchange`], [`verify`] — the protocol's
//!   data structures, shared with `splitbft-core`.
//!
//! # Example
//!
//! ```
//! use splitbft_app::CounterApp;
//! use splitbft_pbft::{Action, Replica, make_request};
//! use splitbft_types::{ClusterConfig, ClientId, ReplicaId, Timestamp};
//! use bytes::Bytes;
//!
//! let cfg = ClusterConfig::new(4).unwrap();
//! let mut primary = Replica::new(cfg.clone(), ReplicaId(0), 42, CounterApp::new());
//! let request = make_request(42, ClientId(0), Timestamp(1), Bytes::from_static(b"inc"));
//! let actions = primary.on_client_batch(vec![request]);
//! // The primary broadcasts a PrePrepare for the new batch.
//! assert!(matches!(actions[0], Action::Broadcast { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod batcher;
pub mod checkpoint;
pub mod hosting;
pub mod client;
pub mod log;
pub mod replica;
pub mod verify;
pub mod viewchange;

pub use action::{outbound, Action};
pub use batcher::Batcher;
pub use checkpoint::CheckpointTracker;
pub use client::{ClientEvent, PbftClient};
pub use log::{MessageLog, Slot};
pub use replica::{
    make_request, stall_budget, Replica, Status, CATCH_UP_CHUNK_SLOTS, STALLS_BEFORE_ADVANCE,
};
pub use verify::{SignerScheme, REPLICA_SCHEME};
pub use viewchange::{plan_new_view, validate_new_view, NewViewPlan, ViewChangeTracker};
