//! Deep cryptographic verification of protocol messages.
//!
//! Structural certificate checks live in `splitbft-types`; this module
//! adds the cryptographic layer: every signature — including those nested
//! inside certificates inside `ViewChange`s inside `NewView`s — is checked
//! against the key registry, and every signer is checked to be the
//! *expected principal* for its message type.
//!
//! Who that expected principal is differs between protocols: in plain PBFT
//! every message is signed by a replica; in SplitBFT a `Prepare` is signed
//! by a *Preparation enclave*, a `Commit` by a *Confirmation enclave*, a
//! `Checkpoint` by an *Execution enclave*. The [`SignerScheme`] table
//! abstracts that, so both protocol cores share this verifier.

use splitbft_crypto::{digest_bytes, KeyRegistry};
use splitbft_types::{
    CheckpointCertificate, ClusterConfig, NewView, PrepareCertificate, ProtocolError, ReplicaId,
    Signed, SignerId, ViewChange,
};

/// Maps a replica to the principal expected to sign each message type.
#[derive(Debug, Clone, Copy)]
pub struct SignerScheme {
    /// Signer of `PrePrepare` and `NewView` (the ordering role).
    pub proposer: fn(ReplicaId) -> SignerId,
    /// Signer of `Prepare`.
    pub preparer: fn(ReplicaId) -> SignerId,
    /// Signer of `Commit` and `ViewChange` (the confirmation role).
    pub confirmer: fn(ReplicaId) -> SignerId,
    /// Signer of `Checkpoint` (the execution role).
    pub executor: fn(ReplicaId) -> SignerId,
}

fn replica_signer(r: ReplicaId) -> SignerId {
    SignerId::Replica(r)
}

/// The plain-PBFT scheme: the whole replica signs everything.
pub const REPLICA_SCHEME: SignerScheme = SignerScheme {
    proposer: replica_signer,
    preparer: replica_signer,
    confirmer: replica_signer,
    executor: replica_signer,
};

/// Verifies the signature on `msg` and that it was produced by exactly
/// `expected`.
///
/// # Errors
///
/// [`ProtocolError::BadAuthenticator`] on signer mismatch or bad
/// signature.
pub fn verify_signed_from<T: splitbft_types::message::MessagePayload>(
    registry: &KeyRegistry,
    msg: &Signed<T>,
    expected: SignerId,
) -> Result<(), ProtocolError> {
    if msg.signer != expected {
        return Err(ProtocolError::BadAuthenticator { kind: std::any::type_name::<T>() });
    }
    registry.verify_signed(msg)
}

/// Deep-verifies a prepare certificate: structure, every signature, and
/// that the `PrePrepare` was signed by the primary of the certificate's
/// view.
pub fn verify_prepare_certificate(
    registry: &KeyRegistry,
    cert: &PrepareCertificate,
    config: &ClusterConfig,
    scheme: &SignerScheme,
) -> Result<(), ProtocolError> {
    if !cert.is_structurally_valid(config.f()) {
        return Err(ProtocolError::BadCertificate { kind: "prepare" });
    }
    let primary = cert.view().primary(config);
    verify_signed_from(registry, &cert.pre_prepare, (scheme.proposer)(primary))?;
    for p in &cert.prepares {
        verify_signed_from(registry, p, (scheme.preparer)(p.payload.replica))?;
    }
    Ok(())
}

/// Deep-verifies a checkpoint certificate: structure plus every
/// signature. Genesis (empty) certificates verify trivially.
pub fn verify_checkpoint_certificate(
    registry: &KeyRegistry,
    cert: &CheckpointCertificate,
    config: &ClusterConfig,
    scheme: &SignerScheme,
) -> Result<(), ProtocolError> {
    if !cert.is_structurally_valid(config.f()) {
        return Err(ProtocolError::BadCertificate { kind: "checkpoint" });
    }
    for c in &cert.checkpoints {
        verify_signed_from(registry, c, (scheme.executor)(c.payload.replica))?;
    }
    Ok(())
}

/// Deep-verifies a `ViewChange`: outer signature, embedded checkpoint
/// proof, and every embedded prepare certificate.
pub fn verify_view_change(
    registry: &KeyRegistry,
    vc: &Signed<ViewChange>,
    config: &ClusterConfig,
    scheme: &SignerScheme,
) -> Result<(), ProtocolError> {
    if !config.contains(vc.payload.replica) {
        return Err(ProtocolError::UnknownReplica(vc.payload.replica));
    }
    verify_signed_from(registry, vc, (scheme.confirmer)(vc.payload.replica))?;
    if !vc.payload.is_structurally_valid(config.f()) {
        return Err(ProtocolError::BadCertificate { kind: "view-change" });
    }
    verify_checkpoint_certificate(registry, &vc.payload.checkpoint_proof, config, scheme)?;
    for cert in &vc.payload.prepared {
        verify_prepare_certificate(registry, cert, config, scheme)?;
    }
    Ok(())
}

/// Deep-verifies the contents of a `NewView` (the outer signature is the
/// caller's job since `NewView` arrives wrapped): every embedded view
/// change and every embedded `PrePrepare`'s signature by the new primary.
pub fn verify_new_view_contents(
    registry: &KeyRegistry,
    nv: &NewView,
    config: &ClusterConfig,
    scheme: &SignerScheme,
) -> Result<(), ProtocolError> {
    for vc in &nv.view_changes {
        verify_view_change(registry, vc, config, scheme)?;
    }
    let primary = nv.view.primary(config);
    for pp in &nv.pre_prepares {
        verify_signed_from(registry, pp, (scheme.proposer)(primary))?;
    }
    Ok(())
}

/// Validates that a checkpoint certificate's embedded snapshot really
/// hashes to the certified digest, and returns the snapshot bytes to
/// restore. Byzantine senders can attach arbitrary snapshot bytes to an
/// otherwise-valid vote, so receivers must scan for one matching copy.
pub fn certified_snapshot(cert: &CheckpointCertificate) -> Option<&[u8]> {
    let digest = cert.state_digest()?;
    cert.checkpoints
        .iter()
        .map(|c| &c.payload.snapshot)
        .find(|snap| digest_bytes(snap) == digest)
        .map(|b| b.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_crypto::KeyPair;
    use splitbft_types::{
        Checkpoint, Digest, Prepare, PrePrepare, RequestBatch, SeqNum, View,
    };

    const SEED: u64 = 42;

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn registry() -> KeyRegistry {
        KeyRegistry::with_signers(SEED, (0..4).map(|i| SignerId::Replica(ReplicaId(i))))
    }

    fn kp(r: u32) -> KeyPair {
        KeyPair::for_signer(SEED, SignerId::Replica(ReplicaId(r)))
    }

    fn good_cert(view: u64, seq: u64) -> PrepareCertificate {
        let c = cfg();
        let primary = View(view).primary(&c);
        let batch = RequestBatch::null();
        let digest = splitbft_crypto::digest_of(&batch);
        let pp = kp(primary.0).sign_payload(
            PrePrepare { view: View(view), seq: SeqNum(seq), digest, batch },
            SignerId::Replica(primary),
        );
        let prepares = (0..4u32)
            .filter(|&r| ReplicaId(r) != primary)
            .take(2)
            .map(|r| {
                kp(r).sign_payload(
                    Prepare {
                        view: View(view),
                        seq: SeqNum(seq),
                        digest,
                        replica: ReplicaId(r),
                    },
                    SignerId::Replica(ReplicaId(r)),
                )
            })
            .collect();
        PrepareCertificate { pre_prepare: pp, prepares }
    }

    #[test]
    fn genuine_certificate_verifies() {
        let cert = good_cert(0, 1);
        assert!(verify_prepare_certificate(&registry(), &cert, &cfg(), &REPLICA_SCHEME).is_ok());
    }

    #[test]
    fn forged_prepare_in_certificate_rejected() {
        let mut cert = good_cert(0, 1);
        cert.prepares[0].payload.seq = SeqNum(2);
        assert!(verify_prepare_certificate(&registry(), &cert, &cfg(), &REPLICA_SCHEME).is_err());
    }

    #[test]
    fn pre_prepare_not_from_primary_rejected() {
        // Build a certificate whose PrePrepare is signed by replica 2 but
        // the view's primary is replica 0.
        let c = cfg();
        let batch = RequestBatch::null();
        let digest = splitbft_crypto::digest_of(&batch);
        let pp = kp(2).sign_payload(
            PrePrepare { view: View(0), seq: SeqNum(1), digest, batch },
            SignerId::Replica(ReplicaId(2)),
        );
        let prepares = [0u32, 1]
            .iter()
            .map(|&r| {
                kp(r).sign_payload(
                    Prepare { view: View(0), seq: SeqNum(1), digest, replica: ReplicaId(r) },
                    SignerId::Replica(ReplicaId(r)),
                )
            })
            .collect();
        let cert = PrepareCertificate { pre_prepare: pp, prepares };
        assert!(verify_prepare_certificate(&registry(), &cert, &c, &REPLICA_SCHEME).is_err());
    }

    fn good_checkpoint_cert(seq: u64) -> CheckpointCertificate {
        let snapshot = Bytes::from_static(b"state");
        let digest = digest_bytes(&snapshot);
        let checkpoints = (0..3u32)
            .map(|r| {
                kp(r).sign_payload(
                    Checkpoint {
                        seq: SeqNum(seq),
                        state_digest: digest,
                        replica: ReplicaId(r),
                        snapshot: snapshot.clone(),
                    },
                    SignerId::Replica(ReplicaId(r)),
                )
            })
            .collect();
        CheckpointCertificate { checkpoints }
    }

    #[test]
    fn checkpoint_certificate_verifies_and_snapshot_extracted() {
        let cert = good_checkpoint_cert(10);
        assert!(
            verify_checkpoint_certificate(&registry(), &cert, &cfg(), &REPLICA_SCHEME).is_ok()
        );
        assert_eq!(certified_snapshot(&cert), Some(&b"state"[..]));
    }

    #[test]
    fn snapshot_not_matching_digest_is_skipped() {
        let mut cert = good_checkpoint_cert(10);
        // First sender attaches garbage bytes; its *vote* stays valid
        // (signature covers the garbage) but the snapshot must be taken
        // from another copy... here we corrupt after signing, so the vote
        // signature breaks — emulate instead a certificate where all
        // snapshots are garbage.
        for c in &mut cert.checkpoints {
            c.payload.snapshot = Bytes::from_static(b"garbage");
        }
        assert_eq!(certified_snapshot(&cert), None);
    }

    #[test]
    fn genesis_checkpoint_cert_verifies() {
        let cert = CheckpointCertificate::genesis();
        assert!(
            verify_checkpoint_certificate(&registry(), &cert, &cfg(), &REPLICA_SCHEME).is_ok()
        );
        assert_eq!(certified_snapshot(&cert), None);
    }

    #[test]
    fn view_change_with_nested_certs_verifies() {
        let vc_payload = ViewChange {
            new_view: View(1),
            stable_seq: SeqNum(0),
            checkpoint_proof: CheckpointCertificate::genesis(),
            prepared: vec![good_cert(0, 1)],
            replica: ReplicaId(2),
        };
        let vc = kp(2).sign_payload(vc_payload, SignerId::Replica(ReplicaId(2)));
        assert!(verify_view_change(&registry(), &vc, &cfg(), &REPLICA_SCHEME).is_ok());

        // Corrupt the nested certificate: rejected.
        let mut bad = vc.clone();
        bad.payload.prepared[0].prepares[0].payload.digest = Digest::from_bytes([9; 32]);
        assert!(verify_view_change(&registry(), &bad, &cfg(), &REPLICA_SCHEME).is_err());
    }

    #[test]
    fn unknown_replica_view_change_rejected() {
        let vc_payload = ViewChange {
            new_view: View(1),
            stable_seq: SeqNum(0),
            checkpoint_proof: CheckpointCertificate::genesis(),
            prepared: vec![],
            replica: ReplicaId(17),
        };
        let kp17 = KeyPair::for_signer(SEED, SignerId::Replica(ReplicaId(17)));
        let vc = kp17.sign_payload(vc_payload, SignerId::Replica(ReplicaId(17)));
        assert!(matches!(
            verify_view_change(&registry(), &vc, &cfg(), &REPLICA_SCHEME),
            Err(ProtocolError::UnknownReplica(_))
        ));
    }
}
