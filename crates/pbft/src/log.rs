//! The per-slot message log (`in` log of the PBFT pseudocode) with
//! watermark windowing and garbage collection.
//!
//! PBFT accepts proposals only for sequence numbers in the window
//! `(low, low + window]` above the last stable checkpoint, and discards
//! slots at or below the watermark once a checkpoint becomes stable. The
//! paper's §3.2 calls the integrity of this log safety-critical (omissions
//! enable *amnesia* faults), which is why SplitBFT moves it inside the
//! enclaves — both the baseline replica and the compartments reuse this
//! type.

use splitbft_types::{
    ClusterConfig, Commit, Digest, PrePrepare, Prepare, PrepareCertificate, ProtocolError,
    ReplicaId, SeqNum, Signed, View,
};
use std::collections::BTreeMap;

/// One agreement slot: everything received for a sequence number in the
/// current view.
#[derive(Debug, Clone, Default)]
pub struct Slot {
    /// The accepted proposal, if any.
    pub pre_prepare: Option<Signed<PrePrepare>>,
    /// Prepare votes by sender.
    pub prepares: BTreeMap<ReplicaId, Signed<Prepare>>,
    /// Commit votes by sender.
    pub commits: BTreeMap<ReplicaId, Signed<Commit>>,
    /// This replica already broadcast its own `Prepare` for the slot.
    pub prepare_sent: bool,
    /// This replica already broadcast its own `Commit` for the slot.
    pub commit_sent: bool,
}

/// The windowed message log.
#[derive(Debug, Clone)]
pub struct MessageLog {
    low: SeqNum,
    window: u64,
    slots: BTreeMap<SeqNum, Slot>,
}

impl MessageLog {
    /// A log starting at the genesis watermark (sequence 0) with the
    /// configured window.
    pub fn new(config: &ClusterConfig) -> Self {
        MessageLog { low: SeqNum::zero(), window: config.window, slots: BTreeMap::new() }
    }

    /// The low watermark (last stable checkpoint).
    pub fn low(&self) -> SeqNum {
        self.low
    }

    /// The high watermark.
    pub fn high(&self) -> SeqNum {
        SeqNum(self.low.0 + self.window)
    }

    /// `true` if `seq` is inside the acceptance window.
    pub fn in_window(&self, seq: SeqNum) -> bool {
        seq > self.low && seq <= self.high()
    }

    /// Validates `seq` against the window.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfWindow`] when outside `(low, low + window]`.
    pub fn check_window(&self, seq: SeqNum) -> Result<(), ProtocolError> {
        if self.in_window(seq) {
            Ok(())
        } else {
            Err(ProtocolError::OutOfWindow { seq, low: self.low, high: self.high() })
        }
    }

    /// Read access to a slot, if it exists.
    pub fn slot(&self, seq: SeqNum) -> Option<&Slot> {
        self.slots.get(&seq)
    }

    /// Mutable access to a slot, creating it on demand.
    pub fn slot_mut(&mut self, seq: SeqNum) -> &mut Slot {
        self.slots.entry(seq).or_default()
    }

    /// Number of live slots (for memory accounting).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no slots are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Inserts an accepted `PrePrepare`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Equivocation`] if a *different* proposal for the
    /// same slot was already accepted (same digest re-delivery is
    /// idempotent and succeeds).
    pub fn insert_pre_prepare(&mut self, pp: Signed<PrePrepare>) -> Result<(), ProtocolError> {
        let slot = self.slot_mut(pp.payload.seq);
        match &slot.pre_prepare {
            Some(existing) if existing.payload.digest != pp.payload.digest => {
                Err(ProtocolError::Equivocation {
                    view: pp.payload.view,
                    seq: pp.payload.seq,
                })
            }
            Some(_) => Ok(()),
            None => {
                slot.pre_prepare = Some(pp);
                Ok(())
            }
        }
    }

    /// Inserts a `Prepare` vote (last write per sender wins; senders are
    /// honest-or-detected via signatures upstream).
    pub fn insert_prepare(&mut self, p: Signed<Prepare>) {
        let slot = self.slot_mut(p.payload.seq);
        slot.prepares.insert(p.payload.replica, p);
    }

    /// Inserts a `Commit` vote.
    pub fn insert_commit(&mut self, c: Signed<Commit>) {
        let slot = self.slot_mut(c.payload.seq);
        slot.commits.insert(c.payload.replica, c);
    }

    /// The *prepared* predicate of PBFT: an accepted proposal plus `2f`
    /// matching prepares from distinct replicas other than the proposer,
    /// all in `view`.
    pub fn prepared(&self, seq: SeqNum, view: View, config: &ClusterConfig) -> bool {
        self.matching_prepares(seq, view).map_or(false, |n| n >= config.prepare_quorum())
    }

    fn matching_prepares(&self, seq: SeqNum, view: View) -> Option<usize> {
        let slot = self.slots.get(&seq)?;
        let pp = slot.pre_prepare.as_ref()?;
        if pp.payload.view != view {
            return None;
        }
        let proposer = pp.signer.replica();
        let count = slot
            .prepares
            .values()
            .filter(|p| {
                p.payload.view == view
                    && p.payload.digest == pp.payload.digest
                    && Some(p.payload.replica) != proposer
            })
            .count();
        Some(count)
    }

    /// The *committed-local* predicate: prepared plus `2f + 1` matching
    /// commits from distinct replicas.
    pub fn committed(&self, seq: SeqNum, view: View, config: &ClusterConfig) -> bool {
        if !self.prepared(seq, view, config) {
            return false;
        }
        let Some(slot) = self.slots.get(&seq) else { return false };
        let Some(pp) = slot.pre_prepare.as_ref() else { return false };
        let count = slot
            .commits
            .values()
            .filter(|c| c.payload.view == view && c.payload.digest == pp.payload.digest)
            .count();
        count >= config.quorum()
    }

    /// The digest bound to `seq` by the accepted proposal, if any.
    pub fn accepted_digest(&self, seq: SeqNum) -> Option<Digest> {
        self.slots.get(&seq)?.pre_prepare.as_ref().map(|pp| pp.payload.digest)
    }

    /// Builds the prepare certificate for a prepared slot, for inclusion
    /// in a `ViewChange`.
    pub fn prepare_certificate(
        &self,
        seq: SeqNum,
        view: View,
        config: &ClusterConfig,
    ) -> Option<PrepareCertificate> {
        if !self.prepared(seq, view, config) {
            return None;
        }
        let slot = self.slots.get(&seq)?;
        let pp = slot.pre_prepare.clone()?;
        let proposer = pp.signer.replica();
        let prepares: Vec<_> = slot
            .prepares
            .values()
            .filter(|p| {
                p.payload.view == view
                    && p.payload.digest == pp.payload.digest
                    && Some(p.payload.replica) != proposer
            })
            .take(config.prepare_quorum())
            .cloned()
            .collect();
        Some(PrepareCertificate { pre_prepare: pp, prepares })
    }

    /// All slots above `from` that are prepared in `view`, as certificates
    /// — the `P` set of a `ViewChange`.
    pub fn prepared_certificates_above(
        &self,
        from: SeqNum,
        view: View,
        config: &ClusterConfig,
    ) -> Vec<PrepareCertificate> {
        self.slots
            .keys()
            .copied()
            .filter(|&seq| seq > from)
            .filter_map(|seq| self.prepare_certificate(seq, view, config))
            .collect()
    }

    /// Advances the low watermark to `new_low`, discarding all slots at or
    /// below it (checkpoint garbage collection).
    pub fn collect_garbage(&mut self, new_low: SeqNum) {
        if new_low <= self.low {
            return;
        }
        self.low = new_low;
        self.slots = self.slots.split_off(&SeqNum(new_low.0 + 1));
    }

    /// Drops agreement state for all slots strictly above `keep_up_to`
    /// (used when entering a new view: old-view votes are void; slots are
    /// re-proposed by the new primary).
    pub fn clear_above(&mut self, keep_up_to: SeqNum) {
        self.slots.split_off(&SeqNum(keep_up_to.0 + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::{
        ClientId, RequestBatch, Request, RequestId, Signature, SignerId, Timestamp,
    };

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn digest(x: u8) -> Digest {
        Digest::from_bytes([x; 32])
    }

    fn pp(view: u64, seq: u64, d: Digest, sender: u32) -> Signed<PrePrepare> {
        let req = Request {
            id: RequestId { client: ClientId(0), timestamp: Timestamp(seq) },
            op: Bytes::from_static(b"op"),
            encrypted: false,
            auth: [0u8; 32],
        };
        Signed::new(
            PrePrepare {
                view: View(view),
                seq: SeqNum(seq),
                digest: d,
                batch: RequestBatch::single(req),
            },
            SignerId::Replica(ReplicaId(sender)),
            Signature::ZERO,
        )
    }

    fn prep(view: u64, seq: u64, d: Digest, sender: u32) -> Signed<Prepare> {
        Signed::new(
            Prepare { view: View(view), seq: SeqNum(seq), digest: d, replica: ReplicaId(sender) },
            SignerId::Replica(ReplicaId(sender)),
            Signature::ZERO,
        )
    }

    fn com(view: u64, seq: u64, d: Digest, sender: u32) -> Signed<Commit> {
        Signed::new(
            Commit { view: View(view), seq: SeqNum(seq), digest: d, replica: ReplicaId(sender) },
            SignerId::Replica(ReplicaId(sender)),
            Signature::ZERO,
        )
    }

    #[test]
    fn window_boundaries() {
        let log = MessageLog::new(&cfg());
        assert!(!log.in_window(SeqNum(0)));
        assert!(log.in_window(SeqNum(1)));
        assert!(log.in_window(SeqNum(256)));
        assert!(!log.in_window(SeqNum(257)));
        assert!(log.check_window(SeqNum(300)).is_err());
    }

    #[test]
    fn prepared_requires_quorum_of_others() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        let d = digest(1);
        log.insert_pre_prepare(pp(0, 1, d, 0)).unwrap();
        assert!(!log.prepared(SeqNum(1), View(0), &c));

        log.insert_prepare(prep(0, 1, d, 1));
        assert!(!log.prepared(SeqNum(1), View(0), &c));

        // A prepare from the proposer itself must not count.
        log.insert_prepare(prep(0, 1, d, 0));
        assert!(!log.prepared(SeqNum(1), View(0), &c));

        log.insert_prepare(prep(0, 1, d, 2));
        assert!(log.prepared(SeqNum(1), View(0), &c));
    }

    #[test]
    fn mismatched_digest_prepares_do_not_count() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        log.insert_pre_prepare(pp(0, 1, digest(1), 0)).unwrap();
        log.insert_prepare(prep(0, 1, digest(2), 1));
        log.insert_prepare(prep(0, 1, digest(2), 2));
        assert!(!log.prepared(SeqNum(1), View(0), &c));
    }

    #[test]
    fn committed_requires_prepared_and_commit_quorum() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        let d = digest(1);
        log.insert_pre_prepare(pp(0, 1, d, 0)).unwrap();
        log.insert_prepare(prep(0, 1, d, 1));
        log.insert_prepare(prep(0, 1, d, 2));
        log.insert_commit(com(0, 1, d, 0));
        log.insert_commit(com(0, 1, d, 1));
        assert!(!log.committed(SeqNum(1), View(0), &c));
        log.insert_commit(com(0, 1, d, 2));
        assert!(log.committed(SeqNum(1), View(0), &c));
    }

    #[test]
    fn commits_without_prepared_are_not_committed() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        let d = digest(1);
        log.insert_pre_prepare(pp(0, 1, d, 0)).unwrap();
        for r in 0..4 {
            log.insert_commit(com(0, 1, d, r));
        }
        assert!(!log.committed(SeqNum(1), View(0), &c));
    }

    #[test]
    fn equivocation_detected() {
        let mut log = MessageLog::new(&cfg());
        log.insert_pre_prepare(pp(0, 1, digest(1), 0)).unwrap();
        // Same digest again: idempotent.
        assert!(log.insert_pre_prepare(pp(0, 1, digest(1), 0)).is_ok());
        // Different digest: equivocation.
        assert!(matches!(
            log.insert_pre_prepare(pp(0, 1, digest(2), 0)),
            Err(ProtocolError::Equivocation { .. })
        ));
        // The original proposal is untouched.
        assert_eq!(log.accepted_digest(SeqNum(1)), Some(digest(1)));
    }

    #[test]
    fn certificate_extraction_matches_structural_validity() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        let d = digest(1);
        log.insert_pre_prepare(pp(0, 3, d, 0)).unwrap();
        log.insert_prepare(prep(0, 3, d, 1));
        log.insert_prepare(prep(0, 3, d, 2));
        log.insert_prepare(prep(0, 3, d, 3));

        let cert = log.prepare_certificate(SeqNum(3), View(0), &c).unwrap();
        assert!(cert.is_structurally_valid(c.f()));
        assert_eq!(cert.prepares.len(), c.prepare_quorum());

        assert!(log.prepare_certificate(SeqNum(9), View(0), &c).is_none());
    }

    #[test]
    fn prepared_certificates_above_excludes_stable() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        let d = digest(1);
        for seq in 1..=3u64 {
            log.insert_pre_prepare(pp(0, seq, d, 0)).unwrap();
            log.insert_prepare(prep(0, seq, d, 1));
            log.insert_prepare(prep(0, seq, d, 2));
        }
        let certs = log.prepared_certificates_above(SeqNum(1), View(0), &c);
        let seqs: Vec<u64> = certs.iter().map(|cert| cert.seq().0).collect();
        assert_eq!(seqs, vec![2, 3]);
    }

    #[test]
    fn garbage_collection_advances_watermarks() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        for seq in 1..=10u64 {
            log.insert_pre_prepare(pp(0, seq, digest(seq as u8), 0)).unwrap();
        }
        log.collect_garbage(SeqNum(5));
        assert_eq!(log.low(), SeqNum(5));
        assert!(log.slot(SeqNum(5)).is_none());
        assert!(log.slot(SeqNum(6)).is_some());
        assert_eq!(log.len(), 5);
        assert!(!log.in_window(SeqNum(5)));
        assert!(log.in_window(SeqNum(6)));

        // Regression cannot move the watermark backwards.
        log.collect_garbage(SeqNum(2));
        assert_eq!(log.low(), SeqNum(5));
    }

    #[test]
    fn clear_above_keeps_lower_slots() {
        let c = cfg();
        let mut log = MessageLog::new(&c);
        for seq in 1..=6u64 {
            log.insert_pre_prepare(pp(0, seq, digest(1), 0)).unwrap();
        }
        log.clear_above(SeqNum(4));
        assert!(log.slot(SeqNum(4)).is_some());
        assert!(log.slot(SeqNum(5)).is_none());
    }
}
