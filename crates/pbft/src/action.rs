//! Outputs of the sans-I/O protocol cores.
//!
//! A replica state machine never touches sockets or clocks; every handler
//! returns a list of [`Action`]s for the surrounding runtime (threaded
//! cluster, discrete-event simulator, or model checker) to interpret. This
//! is what lets one protocol implementation serve examples, benchmarks and
//! verification alike.

use bytes::Bytes;
use splitbft_types::{
    ClientId, ConsensusMessage, Digest, ReplicaId, Reply, RequestId, SeqNum, View,
};

/// An effect requested by a protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a protocol message to one replica.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: ConsensusMessage,
    },
    /// Send a protocol message to every *other* replica. The sender's own
    /// copy is always processed internally before the action is emitted,
    /// so runtimes must not loop it back.
    Broadcast {
        /// The message.
        msg: ConsensusMessage,
    },
    /// Deliver an execution result to a client.
    SendReply {
        /// Destination client.
        to: ClientId,
        /// The reply (authenticated, possibly encrypted).
        reply: Reply,
    },
    /// Persist an application blob (e.g. a sealed blockchain block) to
    /// untrusted storage. In SplitBFT this surfaces as an ocall.
    Persist {
        /// The blob.
        blob: Bytes,
    },
    /// Observability: a batch committed at this sequence number.
    CommittedBatch {
        /// The slot.
        seq: SeqNum,
        /// Digest of the committed batch.
        digest: Digest,
    },
    /// Observability: one request finished executing.
    Executed {
        /// The slot it was ordered in.
        seq: SeqNum,
        /// The request.
        request: RequestId,
    },
    /// Observability: the checkpoint at `seq` became stable and the log
    /// was garbage-collected up to it.
    StableCheckpoint {
        /// The now-stable sequence number.
        seq: SeqNum,
    },
    /// Observability: the replica moved to a new view.
    EnteredView {
        /// The new view.
        view: View,
    },
}

impl Action {
    /// Convenience: the contained consensus message, if this is a
    /// `Send`/`Broadcast`.
    pub fn message(&self) -> Option<&ConsensusMessage> {
        match self {
            Action::Send { msg, .. } | Action::Broadcast { msg } => Some(msg),
            _ => None,
        }
    }
}

/// Filters the broadcast/send messages out of an action list — a helper
/// used pervasively in tests and runtimes.
pub fn outbound(actions: &[Action]) -> Vec<&ConsensusMessage> {
    actions.iter().filter_map(Action::message).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_extraction() {
        let a = Action::StableCheckpoint { seq: SeqNum(5) };
        assert!(a.message().is_none());
        assert!(outbound(&[a]).is_empty());
    }
}
