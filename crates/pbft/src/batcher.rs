//! Request batching, performed by the untrusted environment.
//!
//! Per principle P1, "batching of requests [is placed] into the untrusted
//! environment" — batching affects only liveness, never safety, so it
//! stays outside the enclaves. The paper's batched configuration closes a
//! batch "on either receiving 200 requests or expiration of a 10 ms
//! timeout"; see [`BatchConfig::paper_batched`].

use splitbft_types::{BatchConfig, Request};

/// Accumulates client requests into batches by size or age.
#[derive(Debug, Clone)]
pub struct Batcher {
    config: BatchConfig,
    pending: Vec<Request>,
    /// Virtual time (µs) at which the oldest pending request arrived.
    oldest_us: Option<u64>,
}

impl Batcher {
    /// Creates a batcher with the given policy.
    pub fn new(config: BatchConfig) -> Self {
        Batcher { config, pending: Vec::new(), oldest_us: None }
    }

    /// Number of pending requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Adds a request at time `now_us`; returns a full batch if the size
    /// threshold was reached.
    pub fn push(&mut self, request: Request, now_us: u64) -> Option<Vec<Request>> {
        if self.pending.is_empty() {
            self.oldest_us = Some(now_us);
        }
        self.pending.push(request);
        if self.pending.len() >= self.config.max_batch {
            return Some(self.flush());
        }
        None
    }

    /// Checks the timeout at `now_us`; returns the batch if the oldest
    /// pending request has waited long enough.
    pub fn poll(&mut self, now_us: u64) -> Option<Vec<Request>> {
        let oldest = self.oldest_us?;
        if now_us.saturating_sub(oldest) >= self.config.timeout_us {
            Some(self.flush())
        } else {
            None
        }
    }

    /// The time at which [`Batcher::poll`] will next release a batch, if
    /// any requests are pending — runtimes use this to arm their timers.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.oldest_us.map(|t| t + self.config.timeout_us)
    }

    /// Removes and returns everything pending.
    pub fn flush(&mut self) -> Vec<Request> {
        self.oldest_us = None;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::make_request;
    use bytes::Bytes;
    use splitbft_types::{ClientId, Timestamp};

    fn req(ts: u64) -> Request {
        make_request(1, ClientId(0), Timestamp(ts), Bytes::from_static(b"op"))
    }

    #[test]
    fn size_threshold_releases_batch() {
        let mut b = Batcher::new(BatchConfig { max_batch: 3, timeout_us: 1_000 });
        assert!(b.push(req(1), 0).is_none());
        assert!(b.push(req(2), 10).is_none());
        let batch = b.push(req(3), 20).expect("third request fills the batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.next_deadline_us(), None);
    }

    #[test]
    fn timeout_releases_partial_batch() {
        let mut b = Batcher::new(BatchConfig { max_batch: 100, timeout_us: 1_000 });
        b.push(req(1), 500);
        assert!(b.poll(1_000).is_none()); // only 500 µs old
        assert_eq!(b.next_deadline_us(), Some(1_500));
        let batch = b.poll(1_500).expect("timeout reached");
        assert_eq!(batch.len(), 1);
        assert!(b.poll(10_000).is_none(), "nothing pending");
    }

    #[test]
    fn timeout_measured_from_oldest_request() {
        let mut b = Batcher::new(BatchConfig { max_batch: 100, timeout_us: 1_000 });
        b.push(req(1), 0);
        b.push(req(2), 900);
        // Deadline derives from the first request, not the last.
        assert_eq!(b.next_deadline_us(), Some(1_000));
        assert_eq!(b.poll(1_000).unwrap().len(), 2);
    }

    #[test]
    fn unbatched_config_releases_immediately() {
        let mut b = Batcher::new(BatchConfig::unbatched());
        let batch = b.push(req(1), 0).expect("batch of one");
        assert_eq!(batch.len(), 1);
    }
}
