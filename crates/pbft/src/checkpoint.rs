//! Checkpoint collection and stability tracking.
//!
//! Replicas periodically broadcast a `Checkpoint` with a digest (and copy)
//! of their state. Once `2f + 1` matching checkpoints for the same
//! sequence number are collected, the checkpoint is *stable*: the proof is
//! retained, older log entries are discarded, and — per the paper —
//! "compartments keep the Checkpoints and discard messages for sequence
//! numbers before the checkpoint, even if they are received later".

use splitbft_types::{
    Checkpoint, CheckpointCertificate, ClusterConfig, ReplicaId, SeqNum, Signed,
};
use std::collections::BTreeMap;

/// Collects checkpoint votes and detects stability.
#[derive(Debug, Clone)]
pub struct CheckpointTracker {
    /// Votes by sequence number, then sender.
    pending: BTreeMap<SeqNum, BTreeMap<ReplicaId, Signed<Checkpoint>>>,
    /// Proof of the current stable checkpoint (genesis initially).
    stable: CheckpointCertificate,
}

impl Default for CheckpointTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl CheckpointTracker {
    /// A tracker at the genesis checkpoint.
    pub fn new() -> Self {
        CheckpointTracker { pending: BTreeMap::new(), stable: CheckpointCertificate::genesis() }
    }

    /// The current stable sequence number.
    pub fn stable_seq(&self) -> SeqNum {
        self.stable.seq()
    }

    /// The proof of the current stable checkpoint.
    pub fn stable_proof(&self) -> &CheckpointCertificate {
        &self.stable
    }

    /// Installs an externally validated certificate (from a `NewView` or a
    /// `ViewChange`) if it is newer than the current stable point.
    /// Returns `true` if the stable point advanced.
    pub fn install_certificate(&mut self, cert: CheckpointCertificate) -> bool {
        if cert.seq() > self.stable.seq() {
            let seq = cert.seq();
            self.stable = cert;
            self.drop_up_to(seq);
            true
        } else {
            false
        }
    }

    /// Inserts one checkpoint vote. Votes for sequence numbers at or below
    /// the stable point are ignored ("discard messages for sequence
    /// numbers before the checkpoint, even if they are received later").
    ///
    /// Returns the new stable certificate when this vote completes a
    /// `2f + 1` matching quorum beyond the current stable point.
    pub fn insert(
        &mut self,
        ckpt: Signed<Checkpoint>,
        config: &ClusterConfig,
    ) -> Option<CheckpointCertificate> {
        let seq = ckpt.payload.seq;
        if seq <= self.stable.seq() {
            return None;
        }
        let votes = self.pending.entry(seq).or_default();
        votes.insert(ckpt.payload.replica, ckpt);

        // Group by state digest: byzantine replicas may vote for a wrong
        // digest, so we need 2f+1 matching on the *same* digest.
        let mut by_digest: BTreeMap<_, Vec<&Signed<Checkpoint>>> = BTreeMap::new();
        for v in votes.values() {
            by_digest.entry(v.payload.state_digest).or_default().push(v);
        }
        let quorum = by_digest
            .into_values()
            .find(|group| group.len() >= config.quorum())?;

        let cert = CheckpointCertificate {
            checkpoints: quorum.into_iter().cloned().collect(),
        };
        debug_assert!(cert.is_structurally_valid(config.f()));
        self.stable = cert.clone();
        self.drop_up_to(seq);
        Some(cert)
    }

    fn drop_up_to(&mut self, seq: SeqNum) {
        self.pending = self.pending.split_off(&SeqNum(seq.0 + 1));
    }

    /// Number of sequence numbers with pending votes (memory accounting).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::{Digest, Signature, SignerId};

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn vote(seq: u64, digest: u8, replica: u32) -> Signed<Checkpoint> {
        Signed::new(
            Checkpoint {
                seq: SeqNum(seq),
                state_digest: Digest::from_bytes([digest; 32]),
                replica: ReplicaId(replica),
                snapshot: Bytes::from_static(b"snapshot"),
            },
            SignerId::Replica(ReplicaId(replica)),
            Signature::ZERO,
        )
    }

    #[test]
    fn quorum_makes_checkpoint_stable() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        assert_eq!(t.stable_seq(), SeqNum(0));
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert!(t.insert(vote(10, 1, 1), &c).is_none());
        let cert = t.insert(vote(10, 1, 2), &c).expect("third matching vote is a quorum");
        assert_eq!(cert.seq(), SeqNum(10));
        assert_eq!(t.stable_seq(), SeqNum(10));
    }

    #[test]
    fn mismatched_digests_do_not_form_quorum() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert!(t.insert(vote(10, 2, 1), &c).is_none());
        assert!(t.insert(vote(10, 3, 2), &c).is_none());
        assert!(t.insert(vote(10, 1, 3), &c).is_none());
        assert_eq!(t.stable_seq(), SeqNum(0));
    }

    #[test]
    fn byzantine_minority_cannot_block_stability() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        assert!(t.insert(vote(10, 9, 3), &c).is_none()); // wrong digest
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert!(t.insert(vote(10, 1, 1), &c).is_none());
        assert!(t.insert(vote(10, 1, 2), &c).is_some());
    }

    #[test]
    fn duplicate_votes_count_once() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert!(t.insert(vote(10, 1, 0), &c).is_none());
        assert_eq!(t.stable_seq(), SeqNum(0));
    }

    #[test]
    fn old_votes_ignored_after_stability() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        for r in 0..3 {
            t.insert(vote(10, 1, r), &c);
        }
        // Late vote for an already-collected checkpoint: dropped.
        assert!(t.insert(vote(10, 1, 3), &c).is_none());
        assert!(t.insert(vote(5, 1, 3), &c).is_none());
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn pending_votes_below_new_stable_are_discarded() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        t.insert(vote(5, 1, 0), &c);
        t.insert(vote(10, 2, 0), &c);
        t.insert(vote(10, 2, 1), &c);
        assert_eq!(t.pending_len(), 2);
        t.insert(vote(10, 2, 2), &c);
        // Stability at 10 discards pending votes at 5.
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn install_certificate_only_advances() {
        let c = cfg();
        let mut t = CheckpointTracker::new();
        let cert10 = {
            let mut t2 = CheckpointTracker::new();
            t2.insert(vote(10, 1, 0), &c);
            t2.insert(vote(10, 1, 1), &c);
            t2.insert(vote(10, 1, 2), &c).unwrap()
        };
        assert!(t.install_certificate(cert10.clone()));
        assert_eq!(t.stable_seq(), SeqNum(10));
        // Re-installing the same or an older certificate is a no-op.
        assert!(!t.install_certificate(cert10));
        assert!(!t.install_certificate(CheckpointCertificate::genesis()));
        assert_eq!(t.stable_seq(), SeqNum(10));
    }
}
