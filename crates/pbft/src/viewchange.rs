//! View-change vote tracking and new-view planning.
//!
//! This module implements the *logic* of PBFT's view-change sub-protocol:
//! collecting `ViewChange` votes, deciding when to join an ongoing view
//! change (the `f + 1` rule), and computing the `PrePrepare`s a new
//! primary must re-issue. The paper notes this logic "is complex and it is
//! repeated when validating the NewView in the Preparation Compartment" —
//! both the baseline replica and the SplitBFT Preparation compartment call
//! into this one implementation, and validation literally re-runs the
//! planning function and compares.

use splitbft_crypto::digest_of;
use splitbft_types::{
    CheckpointCertificate, ClusterConfig, NewView, PrePrepare, PrepareCertificate, ProtocolError,
    ReplicaId, RequestBatch, SeqNum, Signed, View, ViewChange,
};
use std::collections::BTreeMap;

/// Collects `ViewChange` votes per target view.
#[derive(Debug, Clone, Default)]
pub struct ViewChangeTracker {
    per_view: BTreeMap<View, BTreeMap<ReplicaId, Signed<ViewChange>>>,
}

impl ViewChangeTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a vote; returns the number of distinct voters for that
    /// view.
    pub fn insert(&mut self, vc: Signed<ViewChange>) -> usize {
        let votes = self.per_view.entry(vc.payload.new_view).or_default();
        votes.insert(vc.payload.replica, vc);
        votes.len()
    }

    /// Number of distinct voters for `view`.
    pub fn count(&self, view: View) -> usize {
        self.per_view.get(&view).map_or(0, |v| v.len())
    }

    /// The vote set for `view` if it reaches `2f + 1`, in replica order.
    pub fn quorum(&self, view: View, config: &ClusterConfig) -> Option<Vec<Signed<ViewChange>>> {
        let votes = self.per_view.get(&view)?;
        if votes.len() < config.quorum() {
            return None;
        }
        Some(votes.values().take(config.quorum()).cloned().collect())
    }

    /// The PBFT liveness rule: if `f + 1` distinct replicas already voted
    /// for views above `current`, a correct replica joins the *smallest*
    /// such view (so it cannot be kept out of sync by byzantine voters).
    pub fn join_view(&self, current: View, config: &ClusterConfig) -> Option<View> {
        let mut voters: BTreeMap<ReplicaId, View> = BTreeMap::new();
        for (&view, votes) in self.per_view.range(View(current.0 + 1)..) {
            for &replica in votes.keys() {
                // Track the smallest above-current view each replica voted
                // for.
                voters.entry(replica).or_insert(view);
            }
        }
        if voters.len() <= config.f() {
            return None;
        }
        voters.values().min().copied()
    }

    /// Drops vote sets for views at or below `view` (stale after entering
    /// a newer view).
    pub fn collect_garbage(&mut self, view: View) {
        self.per_view = self.per_view.split_off(&View(view.0 + 1));
    }

    /// Number of views with live votes.
    pub fn len(&self) -> usize {
        self.per_view.len()
    }

    /// `true` if no votes are tracked.
    pub fn is_empty(&self) -> bool {
        self.per_view.is_empty()
    }
}

/// What a new primary must announce: the stable baseline and the
/// re-issued proposals.
#[derive(Debug, Clone, PartialEq)]
pub struct NewViewPlan {
    /// The highest stable checkpoint among the view changes (`min-s`).
    pub min_s: SeqNum,
    /// The highest prepared sequence number among the view changes
    /// (`max-s`).
    pub max_s: SeqNum,
    /// The checkpoint certificate establishing `min_s`.
    pub checkpoint: CheckpointCertificate,
    /// Unsigned `PrePrepare` payloads for every slot in `(min_s, max_s]`:
    /// the highest-view prepare certificate's batch where one exists, the
    /// null batch otherwise.
    pub pre_prepares: Vec<PrePrepare>,
}

/// Computes the new-view plan from a quorum of view changes, exactly as
/// PBFT's new primary does.
pub fn plan_new_view(view: View, view_changes: &[Signed<ViewChange>]) -> NewViewPlan {
    let mut min_s = SeqNum::zero();
    let mut checkpoint = CheckpointCertificate::genesis();
    for vc in view_changes {
        if vc.payload.stable_seq > min_s {
            min_s = vc.payload.stable_seq;
            checkpoint = vc.payload.checkpoint_proof.clone();
        }
    }

    // For each slot, keep the prepare certificate with the highest view
    // (ties broken by digest order for determinism; matching certificates
    // from different replicas are identical in view/digest).
    let mut best: BTreeMap<SeqNum, &PrepareCertificate> = BTreeMap::new();
    for vc in view_changes {
        for cert in &vc.payload.prepared {
            let seq = cert.seq();
            if seq <= min_s {
                continue;
            }
            match best.get(&seq) {
                Some(existing)
                    if (existing.view(), existing.digest()) >= (cert.view(), cert.digest()) => {}
                _ => {
                    best.insert(seq, cert);
                }
            }
        }
    }
    let max_s = best.keys().max().copied().unwrap_or(min_s);

    let mut pre_prepares = Vec::new();
    for seq in (min_s.0 + 1)..=max_s.0 {
        let seq = SeqNum(seq);
        let pp = match best.get(&seq) {
            Some(cert) => PrePrepare {
                view,
                seq,
                digest: cert.digest(),
                batch: cert.pre_prepare.payload.batch.clone(),
            },
            None => {
                let batch = RequestBatch::null();
                PrePrepare { view, seq, digest: digest_of(&batch), batch }
            }
        };
        pre_prepares.push(pp);
    }

    NewViewPlan { min_s, max_s, checkpoint, pre_prepares }
}

/// Validates a received `NewView` by *re-running the planning logic* over
/// its embedded view changes and comparing with what the primary sent —
/// the repetition the paper describes for the Preparation compartment.
///
/// Signature checks (outer message, embedded view changes, nested
/// certificates) are the caller's responsibility; this validates structure
/// and plan consistency.
///
/// # Errors
///
/// [`ProtocolError::BadCertificate`] if the structure or the recomputed
/// plan does not match.
pub fn validate_new_view(
    nv: &NewView,
    config: &ClusterConfig,
) -> Result<NewViewPlan, ProtocolError> {
    if !nv.is_structurally_valid(config.f()) {
        return Err(ProtocolError::BadCertificate { kind: "NewView" });
    }
    let plan = plan_new_view(nv.view, &nv.view_changes);
    if nv.pre_prepares.len() != plan.pre_prepares.len() {
        return Err(ProtocolError::BadCertificate { kind: "NewView pre-prepares" });
    }
    for (got, expect) in nv.pre_prepares.iter().zip(&plan.pre_prepares) {
        let got = &got.payload;
        if got.view != expect.view
            || got.seq != expect.seq
            || got.digest != expect.digest
            || digest_of(&got.batch) != expect.digest
        {
            return Err(ProtocolError::BadCertificate { kind: "NewView pre-prepares" });
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::{
        ClientId, Digest, Prepare, Request, RequestId, Signature, SignerId, Timestamp,
    };

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn request(ts: u64) -> Request {
        Request {
            id: RequestId { client: ClientId(0), timestamp: Timestamp(ts) },
            op: Bytes::from_static(b"op"),
            encrypted: false,
            auth: [0u8; 32],
        }
    }

    fn cert(view: u64, seq: u64, proposer: u32) -> PrepareCertificate {
        let batch = RequestBatch::single(request(seq));
        let digest = digest_of(&batch);
        let pp = Signed::new(
            PrePrepare { view: View(view), seq: SeqNum(seq), digest, batch },
            SignerId::Replica(ReplicaId(proposer)),
            Signature::ZERO,
        );
        let prepares = (0..4u32)
            .filter(|&r| r != proposer)
            .take(2)
            .map(|r| {
                Signed::new(
                    Prepare { view: View(view), seq: SeqNum(seq), digest, replica: ReplicaId(r) },
                    SignerId::Replica(ReplicaId(r)),
                    Signature::ZERO,
                )
            })
            .collect();
        PrepareCertificate { pre_prepare: pp, prepares }
    }

    fn vc(new_view: u64, replica: u32, stable: u64, prepared: Vec<PrepareCertificate>) -> Signed<ViewChange> {
        // Tests use a genesis checkpoint when stable == 0.
        assert_eq!(stable, 0, "test helper only models genesis-stable view changes");
        Signed::new(
            ViewChange {
                new_view: View(new_view),
                stable_seq: SeqNum(stable),
                checkpoint_proof: CheckpointCertificate::genesis(),
                prepared,
                replica: ReplicaId(replica),
            },
            SignerId::Replica(ReplicaId(replica)),
            Signature::ZERO,
        )
    }

    #[test]
    fn tracker_counts_distinct_voters() {
        let mut t = ViewChangeTracker::new();
        assert_eq!(t.insert(vc(1, 0, 0, vec![])), 1);
        assert_eq!(t.insert(vc(1, 0, 0, vec![])), 1); // duplicate
        assert_eq!(t.insert(vc(1, 1, 0, vec![])), 2);
        assert_eq!(t.count(View(1)), 2);
        assert_eq!(t.count(View(2)), 0);
    }

    #[test]
    fn quorum_requires_2f_plus_1() {
        let c = cfg();
        let mut t = ViewChangeTracker::new();
        t.insert(vc(1, 0, 0, vec![]));
        t.insert(vc(1, 1, 0, vec![]));
        assert!(t.quorum(View(1), &c).is_none());
        t.insert(vc(1, 2, 0, vec![]));
        let q = t.quorum(View(1), &c).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn join_rule_needs_f_plus_1_distinct_voters() {
        let c = cfg();
        let mut t = ViewChangeTracker::new();
        t.insert(vc(3, 1, 0, vec![]));
        assert_eq!(t.join_view(View(0), &c), None); // one voter = f, not enough
        t.insert(vc(5, 2, 0, vec![]));
        // Two distinct voters (> f) for higher views; join the smallest.
        assert_eq!(t.join_view(View(0), &c), Some(View(3)));
        // Already at view 3: the single remaining higher-view voter is not
        // enough.
        assert_eq!(t.join_view(View(3), &c), None);
    }

    #[test]
    fn join_rule_ignores_duplicate_voter_across_views() {
        let c = cfg();
        let mut t = ViewChangeTracker::new();
        t.insert(vc(3, 1, 0, vec![]));
        t.insert(vc(4, 1, 0, vec![]));
        // Same replica voting for two views counts once.
        assert_eq!(t.join_view(View(0), &c), None);
    }

    #[test]
    fn garbage_collection_drops_stale_views() {
        let mut t = ViewChangeTracker::new();
        t.insert(vc(1, 0, 0, vec![]));
        t.insert(vc(2, 0, 0, vec![]));
        t.insert(vc(3, 0, 0, vec![]));
        t.collect_garbage(View(2));
        assert_eq!(t.count(View(1)), 0);
        assert_eq!(t.count(View(2)), 0);
        assert_eq!(t.count(View(3)), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn plan_reissues_highest_view_certificate() {
        let old = cert(0, 1, 0);
        let newer = cert(1, 1, 1); // same slot, higher view
        let vcs = vec![
            vc(2, 0, 0, vec![old]),
            vc(2, 1, 0, vec![newer.clone()]),
            vc(2, 2, 0, vec![]),
        ];
        let plan = plan_new_view(View(2), &vcs);
        assert_eq!(plan.min_s, SeqNum(0));
        assert_eq!(plan.max_s, SeqNum(1));
        assert_eq!(plan.pre_prepares.len(), 1);
        assert_eq!(plan.pre_prepares[0].digest, newer.digest());
        assert_eq!(plan.pre_prepares[0].view, View(2));
    }

    #[test]
    fn plan_fills_gaps_with_null_batches() {
        let vcs = vec![
            vc(1, 0, 0, vec![cert(0, 3, 0)]),
            vc(1, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
        ];
        let plan = plan_new_view(View(1), &vcs);
        assert_eq!(plan.max_s, SeqNum(3));
        assert_eq!(plan.pre_prepares.len(), 3);
        assert!(plan.pre_prepares[0].batch.is_empty()); // seq 1: gap
        assert!(plan.pre_prepares[1].batch.is_empty()); // seq 2: gap
        assert!(!plan.pre_prepares[2].batch.is_empty()); // seq 3: re-issued
        // Null batches carry the canonical null digest.
        assert_eq!(plan.pre_prepares[0].digest, digest_of(&RequestBatch::null()));
    }

    #[test]
    fn plan_with_no_prepared_slots_is_empty() {
        let vcs = vec![vc(1, 0, 0, vec![]), vc(1, 1, 0, vec![]), vc(1, 2, 0, vec![])];
        let plan = plan_new_view(View(1), &vcs);
        assert_eq!(plan.min_s, SeqNum(0));
        assert_eq!(plan.max_s, SeqNum(0));
        assert!(plan.pre_prepares.is_empty());
    }

    fn signed_nv(view: u64, vcs: Vec<Signed<ViewChange>>, primary: u32) -> NewView {
        let plan = plan_new_view(View(view), &vcs);
        NewView {
            view: View(view),
            view_changes: vcs,
            pre_prepares: plan
                .pre_prepares
                .into_iter()
                .map(|pp| Signed::new(pp, SignerId::Replica(ReplicaId(primary)), Signature::ZERO))
                .collect(),
        }
    }

    #[test]
    fn honest_new_view_validates() {
        let c = cfg();
        let vcs = vec![
            vc(1, 0, 0, vec![cert(0, 1, 0)]),
            vc(1, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
        ];
        let nv = signed_nv(1, vcs, 1);
        let plan = validate_new_view(&nv, &c).expect("honest new-view validates");
        assert_eq!(plan.max_s, SeqNum(1));
    }

    #[test]
    fn forged_new_view_rejected() {
        let c = cfg();
        let vcs = vec![
            vc(1, 0, 0, vec![cert(0, 1, 0)]),
            vc(1, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
        ];
        let mut nv = signed_nv(1, vcs, 1);
        // A byzantine primary swaps the re-issued batch for its own.
        let evil_batch = RequestBatch::single(request(999));
        nv.pre_prepares[0].payload.batch = evil_batch;
        assert!(validate_new_view(&nv, &c).is_err());

        // Or claims a different digest outright.
        let vcs = vec![
            vc(1, 0, 0, vec![cert(0, 1, 0)]),
            vc(1, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
        ];
        let mut nv = signed_nv(1, vcs, 1);
        nv.pre_prepares[0].payload.digest = Digest::from_bytes([9; 32]);
        assert!(validate_new_view(&nv, &c).is_err());
    }

    #[test]
    fn new_view_with_dropped_slot_rejected() {
        let c = cfg();
        let vcs = vec![
            vc(1, 0, 0, vec![cert(0, 2, 0)]),
            vc(1, 1, 0, vec![]),
            vc(1, 2, 0, vec![]),
        ];
        let mut nv = signed_nv(1, vcs, 1);
        // Byzantine primary omits a slot it should have re-issued.
        nv.pre_prepares.pop();
        assert!(validate_new_view(&nv, &c).is_err());
    }
}
