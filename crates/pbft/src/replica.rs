//! The sans-I/O PBFT replica state machine.
//!
//! This is the baseline the paper evaluates SplitBFT against: a complete
//! PBFT replica — normal operation, checkpointing, and view changes — as a
//! deterministic state machine. All I/O, timers, and batching live in the
//! surrounding runtime, which feeds events in and interprets the returned
//! [`Action`]s.
//!
//! # Protocol summary
//!
//! Normal operation is the classic three-phase pattern: the view's primary
//! assigns a sequence number in a `PrePrepare`; backups validate and vote
//! `Prepare`; once a replica holds a *prepare certificate* (the proposal
//! plus `2f` matching prepares) it votes `Commit`; once it holds `2f + 1`
//! matching commits the batch is committed and executed in sequence order,
//! with one authenticated `Reply` per request. Every
//! `checkpoint_interval` executions the replica broadcasts a `Checkpoint`
//! carrying its state snapshot; `2f + 1` matching checkpoints advance the
//! watermark and garbage-collect the log. When the environment's timer
//! fires ([`Replica::on_view_timeout`]) the replica votes `ViewChange`;
//! the next primary assembles `2f + 1` votes into a `NewView` that
//! re-issues every prepared-but-unstable proposal (see
//! [`crate::viewchange::plan_new_view`]).

use crate::action::Action;
use crate::checkpoint::CheckpointTracker;
use crate::log::MessageLog;
use crate::verify::{
    self, verify_signed_from, SignerScheme, REPLICA_SCHEME,
};
use crate::viewchange::{plan_new_view, validate_new_view, NewViewPlan, ViewChangeTracker};
use splitbft_app::Application;
use splitbft_crypto::{client_mac_key, digest_bytes, digest_of, KeyPair, KeyRegistry};
use splitbft_types::wire::{decode, encode, Decode, Encode, Reader};
use splitbft_types::{
    Checkpoint, CheckpointCertificate, ClientId, ClusterConfig, Commit, ConsensusMessage, Digest,
    DurableCheckpoint, DurableEvent, NewView, PrePrepare, Prepare, PrepareCertificate,
    ProtocolError, ReplicaId, Reply, Request, RequestBatch, SeqNum, Signed, SignerId, Timestamp,
    View, ViewChange,
};
use std::collections::BTreeMap;

/// Upper bound on buffered future-view messages (defence against memory
/// exhaustion by a byzantine peer flooding messages for far-future views).
const MAX_FUTURE_BUFFER: usize = 4_096;

/// Base number of timeouts spent re-broadcasting the same `ViewChange`
/// before the target advances anyway (the escape hatch for a dead
/// target-primary). Public because the SplitBFT Confirmation compartment
/// implements the same convergence fix and imports this constant — one
/// damping knob, both stacks in lockstep.
pub const STALLS_BEFORE_ADVANCE: u32 = 2;

/// Exponential view-change backoff: the re-broadcast budget for the
/// `escalations`-th consecutive view hop without entering a view.
///
/// The first failover keeps the base budget (fast recovery from a single
/// crashed primary); each further hop doubles it, capped at 8× — PBFT's
/// doubling view-change timer expressed in timer ticks. Without backoff,
/// replicas whose timers interleave keep leapfrogging each other's
/// target views under churn and convergence is only ever accidental.
/// Entering any view resets the escalation count.
pub fn stall_budget(escalations: u32) -> u32 {
    STALLS_BEFORE_ADVANCE << escalations.min(3)
}

/// Most slots served per catch-up response (state transfer is chunked:
/// a deeply lagging peer requests again with a higher `have_seq`).
/// Shared with the SplitBFT broker's suffix ring for the same reason.
pub const CATCH_UP_CHUNK_SLOTS: usize = 64;

/// Where the replica is in the view-change life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal three-phase operation.
    Normal,
    /// Voted for a view change and waiting for the `NewView`.
    InViewChange,
}

/// A complete PBFT replica.
///
/// Generic over the [`Application`] it replicates (the paper's key-value
/// store or blockchain).
pub struct Replica<A> {
    config: ClusterConfig,
    id: ReplicaId,
    signer: SignerId,
    keypair: KeyPair,
    registry: KeyRegistry,
    auth_seed: u64,
    scheme: SignerScheme,

    view: View,
    status: Status,
    log: MessageLog,
    checkpoints: CheckpointTracker,
    view_changes: ViewChangeTracker,
    /// Highest-view prepare certificate per slot, kept across view changes
    /// for inclusion in `ViewChange` messages.
    prepared_certs: BTreeMap<SeqNum, PrepareCertificate>,
    /// Buffered messages for views above the current one, re-injected
    /// after entering a new view.
    future_buffer: Vec<ConsensusMessage>,
    /// The latest `NewView` this replica emitted or accepted, retained
    /// for peer catch-up: a replica that was down during the broadcast
    /// can only join the view through this (self-certifying) message,
    /// so it leads every served catch-up suffix.
    last_new_view: Option<Signed<NewView>>,
    /// Consecutive timeouts spent in view-change status awaiting the
    /// same `NewView`. Below the current [`stall_budget`] the replica
    /// *re-broadcasts* its current `ViewChange` instead of targeting the
    /// next view — without this backoff one fast-ticking replica
    /// leapfrogs a view ahead of the cluster forever and the view change
    /// never converges.
    stalled_timeouts: u32,
    /// Consecutive view hops without entering a view; exponent of the
    /// [`stall_budget`]. Resets on [`Replica::enter_view`].
    view_change_escalations: u32,

    app: A,
    /// Highest sequence number assigned by this replica as primary.
    next_seq: SeqNum,
    /// Highest sequence number executed.
    last_exec: SeqNum,
    /// Cached last reply per client, for duplicate suppression and resend.
    last_replies: BTreeMap<ClientId, Reply>,
    /// Highest authenticated-but-not-yet-executed request timestamp per
    /// client: the evidence a request-aware view-change timer needs.
    /// Entries clear on execution and on starting a view change (each
    /// stall buys one failover attempt; client retransmission re-arms).
    pending_requests: BTreeMap<ClientId, Timestamp>,
    /// Durable consensus events buffered for the hosting runtime's WAL.
    /// Only populated when a durable runtime opted in via
    /// [`Replica::enable_durable_events`]; plain in-memory hosting pays
    /// nothing.
    durable: Vec<DurableEvent>,
    /// Whether durable events are being recorded.
    durable_enabled: bool,
}

impl<A: Application> Replica<A> {
    /// Creates replica `id` of an `n`-replica cluster. All keys are
    /// derived deterministically from `master_seed` (see
    /// [`KeyRegistry::with_signers`]).
    pub fn new(config: ClusterConfig, id: ReplicaId, master_seed: u64, app: A) -> Self {
        let signer = SignerId::Replica(id);
        let registry =
            KeyRegistry::with_signers(master_seed, config.replicas().map(SignerId::Replica));
        let keypair = KeyPair::for_signer(master_seed, signer);
        let log = MessageLog::new(&config);
        Replica {
            config,
            id,
            signer,
            keypair,
            registry,
            auth_seed: master_seed,
            scheme: REPLICA_SCHEME,
            view: View::initial(),
            status: Status::Normal,
            log,
            checkpoints: CheckpointTracker::new(),
            view_changes: ViewChangeTracker::new(),
            prepared_certs: BTreeMap::new(),
            future_buffer: Vec::new(),
            last_new_view: None,
            stalled_timeouts: 0,
            view_change_escalations: 0,
            app,
            next_seq: SeqNum::zero(),
            last_exec: SeqNum::zero(),
            last_replies: BTreeMap::new(),
            pending_requests: BTreeMap::new(),
            durable: Vec::new(),
            durable_enabled: false,
        }
    }

    // --- accessors ---------------------------------------------------------

    /// This replica's identifier.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The current status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// `true` if this replica is the primary of its current view.
    pub fn is_primary(&self) -> bool {
        self.view.primary(&self.config) == self.id
    }

    /// Highest executed sequence number.
    pub fn last_executed(&self) -> SeqNum {
        self.last_exec
    }

    /// The last stable checkpoint.
    pub fn stable_seq(&self) -> SeqNum {
        self.checkpoints.stable_seq()
    }

    /// Read access to the replicated application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Digest of the current checkpointable state (application snapshot
    /// plus reply cache).
    pub fn state_digest(&self) -> Digest {
        digest_bytes(&self.checkpoint_state_bytes())
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Approximate memory in use by protocol state (for EPC accounting).
    pub fn memory_usage(&self) -> usize {
        self.log.len() * 512 + self.app.memory_usage() + self.last_replies.len() * 128
    }

    /// `true` while an authenticated client request has been accepted
    /// but not yet executed. Request-aware view-change timers fire only
    /// when this holds across a full period with no execution progress.
    pub fn has_pending_requests(&self) -> bool {
        !self.pending_requests.is_empty()
    }

    // --- durability --------------------------------------------------------

    /// Records `event` if a durable runtime opted in. Takes a closure so
    /// disabled replicas do not even build the event (the `Committed`
    /// variant clones the whole batch).
    fn record(&mut self, event: impl FnOnce() -> DurableEvent) {
        if self.durable_enabled {
            self.durable.push(event());
        }
    }

    /// Starts recording durable consensus events for
    /// [`Replica::drain_durable_events`]. Called once by durable
    /// runtimes; in-memory hosting leaves it off and pays nothing.
    pub fn enable_durable_events(&mut self) {
        self.durable_enabled = true;
    }

    /// Drains the durable events recorded since the last drain.
    pub fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        std::mem::take(&mut self.durable)
    }

    /// Replays one WAL event during crash recovery. Replay is idempotent
    /// (`Committed` below the current execution point is skipped) and
    /// produces no outputs.
    pub fn replay_durable_event(&mut self, event: DurableEvent) {
        match event {
            DurableEvent::Accepted { seq, .. } => {
                // Never reuse a slot this replica already proposed or
                // accepted — a restarted primary re-proposing a used
                // sequence number would equivocate.
                if self.next_seq < seq {
                    self.next_seq = seq;
                }
            }
            DurableEvent::Committed { seq, batch } => {
                if seq == self.last_exec.next() {
                    let _ = self.execute_batch(seq, &batch);
                    self.last_exec = seq;
                    if self.next_seq < seq {
                        self.next_seq = seq;
                    }
                }
            }
            DurableEvent::EnteredView { view } => {
                if self.view < view {
                    self.view = view;
                    self.status = Status::Normal;
                }
            }
            // Trusted counters are the hybrid's concern, the stable
            // marker only matters to the WAL's garbage collector, and
            // the shard tag to the sharding shim above this replica.
            DurableEvent::CounterIssued { .. }
            | DurableEvent::StableCheckpoint { .. }
            | DurableEvent::ShardTag { .. } => {}
        }
    }

    /// The replica's durable state at its latest stable checkpoint: the
    /// stable [`CheckpointCertificate`] itself, which is
    /// self-authenticating (`2f + 1` signed `Checkpoint`s carrying the
    /// snapshot). `None` at genesis.
    pub fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        let cert = self.checkpoints.stable_proof();
        let digest = cert.state_digest()?;
        Some(DurableCheckpoint {
            seq: cert.seq(),
            digest,
            state: encode(cert).into(),
        })
    }

    /// Restores from a [`DurableCheckpoint`] produced by
    /// [`Replica::durable_checkpoint`] — the sealed local copy or an
    /// `f + 1`-agreed peer copy. The embedded certificate is deep
    /// verified (structure + every signature + snapshot digest) before
    /// anything is applied.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CorruptState`] when the bytes do not decode or
    /// do not match the claimed `(seq, digest)`; certificate validation
    /// errors pass through.
    pub fn restore_durable_checkpoint(
        &mut self,
        cp: &DurableCheckpoint,
    ) -> Result<(), ProtocolError> {
        let cert: CheckpointCertificate = decode(&cp.state)
            .map_err(|e| ProtocolError::CorruptState(format!("checkpoint decode: {e}")))?;
        if cert.seq() != cp.seq || cert.state_digest() != Some(cp.digest) {
            return Err(ProtocolError::CorruptState(
                "checkpoint certificate does not match its claimed seq/digest".into(),
            ));
        }
        verify::verify_checkpoint_certificate(&self.registry, &cert, &self.config, &self.scheme)?;
        if verify::certified_snapshot(&cert).is_none() {
            return Err(ProtocolError::CorruptState(
                "no embedded snapshot matches the certified digest".into(),
            ));
        }
        if self.checkpoints.install_certificate(cert.clone()) {
            let _ = self.apply_stable_checkpoint(cert);
        }
        Ok(())
    }

    /// Retained messages that let a peer at `have_seq` catch up through
    /// its normal message handlers: for every slot above
    /// `max(have_seq, stable)` up to the last executed one, the accepted
    /// proposal plus all collected commit votes.
    pub fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<ConsensusMessage> {
        let from = have_seq.max(self.checkpoints.stable_seq());
        let mut msgs = Vec::new();
        // The latest NewView leads: a peer that was down during the
        // view-change broadcast rejects everything from the current
        // view until it processes this (a receiver already in the view
        // simply drops it).
        if let Some(nv) = &self.last_new_view {
            msgs.push(ConsensusMessage::NewView(nv.clone()));
        }
        // Chunked: a deeply lagging peer catches up incrementally (its
        // next state-request round carries a higher have_seq) instead
        // of drowning in one giant suffix.
        let mut served = 0usize;
        for seq in (from.0 + 1)..=self.last_exec.0 {
            if served >= CATCH_UP_CHUNK_SLOTS {
                break;
            }
            let Some(slot) = self.log.slot(SeqNum(seq)) else { continue };
            let Some(pp) = &slot.pre_prepare else { continue };
            msgs.push(ConsensusMessage::PrePrepare(pp.clone()));
            for commit in slot.commits.values() {
                msgs.push(ConsensusMessage::Commit(commit.clone()));
            }
            served += 1;
        }
        msgs
    }

    // --- event handlers ------------------------------------------------

    /// Handles a batch of client requests. The primary orders fresh,
    /// authenticated requests; *every* replica re-sends its cached reply
    /// for an already-executed timestamp (the PBFT retransmission rule —
    /// clients broadcast after a timeout, and backups answering from
    /// cache is what completes the reply quorum when the reply was lost)
    /// and records fresh requests as pending so the request-aware
    /// view-change timer can detect a stalled primary.
    pub fn on_client_batch(&mut self, requests: Vec<Request>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut fresh = Vec::new();
        for req in requests {
            if !self.verify_request(&req) {
                continue;
            }
            match self.last_replies.get(&req.client()) {
                Some(cached) if cached.request.timestamp == req.id.timestamp => {
                    actions.push(Action::SendReply { to: req.client(), reply: cached.clone() });
                }
                Some(cached) if cached.request.timestamp > req.id.timestamp => {}
                _ => {
                    self.note_pending(req.client(), req.id.timestamp);
                    fresh.push(req);
                }
            }
        }
        if !self.is_primary() || self.status != Status::Normal || fresh.is_empty() {
            return actions;
        }

        let seq = SeqNum(self.next_seq.0.max(self.last_exec.0) + 1);
        if !self.log.in_window(seq) {
            // Watermark exhausted: wait for a checkpoint to stabilize.
            // The runtime will retry the batch.
            return actions;
        }
        self.next_seq = seq;
        let batch = RequestBatch::new(fresh);
        let digest = digest_of(&batch);
        let pp = self.keypair.sign_payload(
            PrePrepare { view: self.view, seq, digest, batch },
            self.signer,
        );
        self.log
            .insert_pre_prepare(pp.clone())
            .expect("own fresh slot cannot conflict");
        self.record(|| DurableEvent::Accepted { view: pp.payload.view, seq, digest });
        actions.push(Action::Broadcast { msg: ConsensusMessage::PrePrepare(pp) });
        actions
    }

    /// Handles one verified-on-arrival protocol message.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]: rejected messages are normal in a byzantine
    /// system; the runtime typically just logs them.
    pub fn on_message(&mut self, msg: ConsensusMessage) -> Result<Vec<Action>, ProtocolError> {
        match msg {
            ConsensusMessage::PrePrepare(pp) => self.handle_pre_prepare(pp),
            ConsensusMessage::Prepare(p) => self.handle_prepare(p),
            ConsensusMessage::Commit(c) => self.handle_commit(c),
            ConsensusMessage::Checkpoint(c) => self.handle_checkpoint(c),
            ConsensusMessage::ViewChange(vc) => self.handle_view_change(vc),
            ConsensusMessage::NewView(nv) => self.handle_new_view(nv),
        }
    }

    /// The environment's view-change timer fired: vote to depose the
    /// current primary (or escalate to the next view if already changing).
    pub fn on_view_timeout(&mut self) -> Vec<Action> {
        if self.status == Status::InViewChange {
            if self.stalled_timeouts < stall_budget(self.view_change_escalations) {
                // Still awaiting the NewView for the view we already
                // voted: re-broadcast the vote (the target's primary may
                // have missed or restarted past it) instead of hopping
                // onward.
                self.stalled_timeouts += 1;
                let signed = self.signed_view_change(self.view);
                return vec![Action::Broadcast { msg: ConsensusMessage::ViewChange(signed) }];
            }
            // Budget exhausted: escalate, doubling the next hop's
            // budget so repeatedly-failing view changes back off
            // exponentially instead of racing each other.
            self.view_change_escalations = self.view_change_escalations.saturating_add(1);
        }
        let target = self.view.next();
        self.start_view_change(target)
    }

    /// This replica's `ViewChange` for `target`, freshly signed.
    fn signed_view_change(&self, target: View) -> Signed<ViewChange> {
        let vc = ViewChange {
            new_view: target,
            stable_seq: self.checkpoints.stable_seq(),
            checkpoint_proof: self.checkpoints.stable_proof().clone(),
            prepared: self
                .prepared_certs
                .range(SeqNum(self.checkpoints.stable_seq().0 + 1)..)
                .map(|(_, cert)| cert.clone())
                .collect(),
            replica: self.id,
        };
        self.keypair.sign_payload(vc, self.signer)
    }

    // --- normal operation ------------------------------------------------

    fn verify_request(&self, req: &Request) -> bool {
        let key = client_mac_key(self.auth_seed, req.client());
        key.verify(&Request::auth_bytes(req.id, &req.op, req.encrypted), &req.auth)
    }

    /// Authenticates every request in a proposed batch at once: the
    /// per-request tags are still computed, but accept/reject collapses
    /// to a single constant-time digest comparison
    /// ([`splitbft_crypto::verify_tag_batch`]) — the whole batch is
    /// rejected on any failure, so no per-request verdict is needed.
    fn verify_request_batch(&self, requests: &[Request]) -> bool {
        splitbft_crypto::verify_tag_batch(requests.iter().map(|req| {
            let key = client_mac_key(self.auth_seed, req.client());
            (key.tag(&Request::auth_bytes(req.id, &req.op, req.encrypted)), req.auth)
        }))
    }

    /// Records an accepted-but-unexecuted request for the view-change
    /// timer. One entry per client (the highest timestamp seen) bounds
    /// the map at one entry per live client.
    fn note_pending(&mut self, client: ClientId, timestamp: Timestamp) {
        let entry = self.pending_requests.entry(client).or_insert(timestamp);
        if *entry < timestamp {
            *entry = timestamp;
        }
    }

    /// Clears a client's pending marker once execution caught up to it.
    fn clear_pending(&mut self, client: ClientId, executed: Timestamp) {
        if self.pending_requests.get(&client).is_some_and(|t| *t <= executed) {
            self.pending_requests.remove(&client);
        }
    }

    fn check_active_view(&self, view: View, seq: SeqNum) -> Result<(), ProtocolError> {
        if view != self.view {
            return Err(ProtocolError::WrongView { got: view, current: self.view });
        }
        if self.status != Status::Normal {
            return Err(ProtocolError::Other("in view change".into()));
        }
        self.log.check_window(seq)
    }

    fn buffer_future(&mut self, msg: ConsensusMessage) {
        if self.future_buffer.len() < MAX_FUTURE_BUFFER {
            self.future_buffer.push(msg);
        }
    }

    fn handle_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<Action>, ProtocolError> {
        let view = pp.payload.view;
        let seq = pp.payload.seq;
        if view > self.view {
            self.buffer_future(ConsensusMessage::PrePrepare(pp));
            return Ok(Vec::new());
        }
        let primary = view.primary(&self.config);
        verify_signed_from(&self.registry, &pp, (self.scheme.proposer)(primary))?;
        self.check_active_view(view, seq)?;
        if digest_of(&pp.payload.batch) != pp.payload.digest {
            return Err(ProtocolError::BadCertificate { kind: "pre-prepare digest" });
        }
        // Backups refuse to prepare a batch containing unauthenticated
        // requests: a byzantine primary must not be able to launder
        // forged client operations through agreement.
        if !self.verify_request_batch(&pp.payload.batch.requests) {
            return Err(ProtocolError::BadAuthenticator { kind: "request in batch" });
        }
        self.accept_pre_prepare(pp)
    }

    /// Inserts an already-validated proposal and emits this backup's
    /// `Prepare`. Shared between the network path and `NewView`
    /// processing.
    fn accept_pre_prepare(
        &mut self,
        pp: Signed<PrePrepare>,
    ) -> Result<Vec<Action>, ProtocolError> {
        let view = pp.payload.view;
        let seq = pp.payload.seq;
        let digest = pp.payload.digest;
        self.log.insert_pre_prepare(pp)?;
        self.record(|| DurableEvent::Accepted { view, seq, digest });

        let mut actions = Vec::new();
        if !self.is_primary() && !self.log.slot(seq).map_or(false, |s| s.prepare_sent) {
            let prepare = self.keypair.sign_payload(
                Prepare { view, seq, digest, replica: self.id },
                self.signer,
            );
            self.log.insert_prepare(prepare.clone());
            self.log.slot_mut(seq).prepare_sent = true;
            actions.push(Action::Broadcast { msg: ConsensusMessage::Prepare(prepare) });
        }
        actions.extend(self.maybe_prepared(seq));
        Ok(actions)
    }

    fn handle_prepare(&mut self, p: Signed<Prepare>) -> Result<Vec<Action>, ProtocolError> {
        let view = p.payload.view;
        let seq = p.payload.seq;
        if view > self.view {
            self.buffer_future(ConsensusMessage::Prepare(p));
            return Ok(Vec::new());
        }
        verify_signed_from(&self.registry, &p, (self.scheme.preparer)(p.payload.replica))?;
        if !self.config.contains(p.payload.replica) {
            return Err(ProtocolError::UnknownReplica(p.payload.replica));
        }
        self.check_active_view(view, seq)?;
        self.log.insert_prepare(p);
        Ok(self.maybe_prepared(seq))
    }

    fn maybe_prepared(&mut self, seq: SeqNum) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.log.prepared(seq, self.view, &self.config) {
            return actions;
        }
        // Remember the certificate for future view changes.
        if let Some(cert) = self.log.prepare_certificate(seq, self.view, &self.config) {
            match self.prepared_certs.get(&seq) {
                Some(existing) if existing.view() >= cert.view() => {}
                _ => {
                    self.prepared_certs.insert(seq, cert);
                }
            }
        }
        if !self.log.slot_mut(seq).commit_sent {
            let digest = self.log.accepted_digest(seq).expect("prepared implies proposal");
            let commit = self.keypair.sign_payload(
                Commit { view: self.view, seq, digest, replica: self.id },
                self.signer,
            );
            self.log.insert_commit(commit.clone());
            self.log.slot_mut(seq).commit_sent = true;
            actions.push(Action::Broadcast { msg: ConsensusMessage::Commit(commit) });
        }
        actions.extend(self.try_execute());
        actions
    }

    fn handle_commit(&mut self, c: Signed<Commit>) -> Result<Vec<Action>, ProtocolError> {
        let view = c.payload.view;
        let seq = c.payload.seq;
        if view > self.view {
            self.buffer_future(ConsensusMessage::Commit(c));
            return Ok(Vec::new());
        }
        verify_signed_from(&self.registry, &c, (self.scheme.confirmer)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        self.check_active_view(view, seq)?;
        self.log.insert_commit(c);
        let mut actions = self.maybe_prepared(seq);
        actions.extend(self.try_execute());
        Ok(actions)
    }

    fn try_execute(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        loop {
            let next = self.last_exec.next();
            if !self.log.committed(next, self.view, &self.config) {
                break;
            }
            let pp = self
                .log
                .slot(next)
                .and_then(|s| s.pre_prepare.clone())
                .expect("committed implies proposal");
            actions.push(Action::CommittedBatch { seq: next, digest: pp.payload.digest });
            self.record(|| DurableEvent::Committed { seq: next, batch: pp.payload.batch.clone() });
            actions.extend(self.execute_batch(next, &pp.payload.batch));
            self.last_exec = next;

            if next.0 % self.config.checkpoint_interval == 0 {
                actions.extend(self.emit_checkpoint(next));
            }
        }
        actions
    }

    fn execute_batch(&mut self, seq: SeqNum, batch: &RequestBatch) -> Vec<Action> {
        let mut actions = Vec::new();
        for req in &batch.requests {
            let client = req.client();
            match self.last_replies.get(&client) {
                Some(cached) if cached.request.timestamp == req.id.timestamp => {
                    actions.push(Action::SendReply { to: client, reply: cached.clone() });
                    continue;
                }
                Some(cached) if cached.request.timestamp > req.id.timestamp => continue,
                _ => {}
            }
            // The baseline executes plaintext operations; an encrypted
            // operation (SplitBFT's confidential mode) is opaque bytes
            // here and will execute as a no-op.
            let result = self.app.execute(&req.op);
            let auth_key = client_mac_key(self.auth_seed, client);
            let auth = auth_key
                .tag(&Reply::auth_bytes(self.view, req.id, self.id, &result, false));
            let reply =
                Reply { view: self.view, request: req.id, replica: self.id, result, encrypted: false, auth };
            self.last_replies.insert(client, reply.clone());
            self.clear_pending(client, req.id.timestamp);
            actions.push(Action::Executed { seq, request: req.id });
            actions.push(Action::SendReply { to: client, reply });
        }
        for blob in self.app.drain_persist() {
            actions.push(Action::Persist { blob });
        }
        actions
    }

    // --- checkpointing ----------------------------------------------------

    /// The canonical checkpoint state. It must be **bit-identical across
    /// replicas**, so the reply cache is reduced to its replica-independent
    /// core `(client, timestamp, result)`; replica-specific reply fields
    /// (sender id, MAC, view) are reconstructed on restore.
    fn checkpoint_state_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let snapshot = self.app.snapshot();
        (snapshot.len() as u32).encode(&mut buf);
        buf.extend_from_slice(&snapshot);
        let replies: Vec<(ClientId, splitbft_types::Timestamp, bytes::Bytes)> = self
            .last_replies
            .iter()
            .map(|(c, r)| (*c, r.request.timestamp, r.result.clone()))
            .collect();
        replies.encode(&mut buf);
        buf
    }

    fn restore_checkpoint_state(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        let mut r = Reader::new(bytes);
        let len = u32::decode(&mut r)? as usize;
        let snapshot = r.take(len)?.to_vec();
        let replies: Vec<(ClientId, splitbft_types::Timestamp, bytes::Bytes)> =
            Vec::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(ProtocolError::Other("trailing checkpoint bytes".into()));
        }
        self.app
            .restore(&snapshot)
            .map_err(|e| ProtocolError::Other(format!("snapshot restore failed: {e}")))?;
        self.last_replies = replies
            .into_iter()
            .map(|(client, timestamp, result)| {
                let request = splitbft_types::RequestId { client, timestamp };
                let auth_key = client_mac_key(self.auth_seed, client);
                let auth = auth_key
                    .tag(&Reply::auth_bytes(self.view, request, self.id, &result, false));
                let reply = Reply {
                    view: self.view,
                    request,
                    replica: self.id,
                    result,
                    encrypted: false,
                    auth,
                };
                (client, reply)
            })
            .collect();
        // State transfer executed (on our behalf) everything up to the
        // checkpoint: drop pending markers the restored replies cover.
        let executed: Vec<(ClientId, Timestamp)> =
            self.last_replies.iter().map(|(c, r)| (*c, r.request.timestamp)).collect();
        for (client, timestamp) in executed {
            self.clear_pending(client, timestamp);
        }
        Ok(())
    }

    fn emit_checkpoint(&mut self, seq: SeqNum) -> Vec<Action> {
        let state = self.checkpoint_state_bytes();
        let ckpt = Checkpoint {
            seq,
            state_digest: digest_bytes(&state),
            replica: self.id,
            snapshot: state.into(),
        };
        let signed = self.keypair.sign_payload(ckpt, self.signer);
        let mut actions = Vec::new();
        if let Some(cert) = self.checkpoints.insert(signed.clone(), &self.config) {
            actions.extend(self.apply_stable_checkpoint(cert));
        }
        actions.push(Action::Broadcast { msg: ConsensusMessage::Checkpoint(signed) });
        actions
    }

    fn handle_checkpoint(
        &mut self,
        c: Signed<Checkpoint>,
    ) -> Result<Vec<Action>, ProtocolError> {
        verify_signed_from(&self.registry, &c, (self.scheme.executor)(c.payload.replica))?;
        if !self.config.contains(c.payload.replica) {
            return Err(ProtocolError::UnknownReplica(c.payload.replica));
        }
        let mut actions = Vec::new();
        if let Some(cert) = self.checkpoints.insert(c, &self.config) {
            actions.extend(self.apply_stable_checkpoint(cert));
        }
        Ok(actions)
    }

    fn apply_stable_checkpoint(&mut self, cert: CheckpointCertificate) -> Vec<Action> {
        let seq = cert.seq();
        let mut actions = Vec::new();
        // State transfer: if this replica fell behind the stable point,
        // adopt the certified snapshot (after checking it hashes to the
        // certified digest).
        if self.last_exec < seq {
            if let Some(snapshot) = verify::certified_snapshot(&cert) {
                if self.restore_checkpoint_state(snapshot).is_ok() {
                    self.last_exec = seq;
                    if self.next_seq < seq {
                        self.next_seq = seq;
                    }
                }
            }
        }
        self.log.collect_garbage(seq);
        self.prepared_certs = self.prepared_certs.split_off(&SeqNum(seq.0 + 1));
        self.record(|| DurableEvent::StableCheckpoint { seq });
        actions.push(Action::StableCheckpoint { seq });
        actions
    }

    // --- view changes -----------------------------------------------------

    fn start_view_change(&mut self, target: View) -> Vec<Action> {
        if target <= self.view && self.status == Status::InViewChange {
            return Vec::new();
        }
        let target = target.max(self.view.next());
        self.status = Status::InViewChange;
        self.view = target;
        self.stalled_timeouts = 0;
        self.record(|| DurableEvent::EnteredView { view: target });
        // Each stall converts into exactly one failover attempt: clients
        // that still care keep retransmitting, which re-arms the timer
        // in the (possibly again faulty) next view.
        self.pending_requests.clear();

        let signed = self.signed_view_change(target);
        self.view_changes.insert(signed.clone());
        let mut actions =
            vec![Action::Broadcast { msg: ConsensusMessage::ViewChange(signed) }];
        actions.extend(self.maybe_new_view(target));
        actions
    }

    fn handle_view_change(
        &mut self,
        vc: Signed<ViewChange>,
    ) -> Result<Vec<Action>, ProtocolError> {
        verify::verify_view_change(&self.registry, &vc, &self.config, &self.scheme)?;
        let target = vc.payload.new_view;
        if target <= self.view && !(target == self.view && self.status == Status::InViewChange) {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        self.view_changes.insert(vc);

        let mut actions = Vec::new();
        // Join rule: f + 1 replicas already want a higher view.
        let effective = match self.status {
            Status::InViewChange => self.view, // already voted up to self.view
            Status::Normal => self.view,
        };
        if let Some(join) = self.view_changes.join_view(effective, &self.config) {
            if join > self.view || self.status == Status::Normal {
                actions.extend(self.start_view_change(join));
                return Ok(actions);
            }
        }
        actions.extend(self.maybe_new_view(target));
        Ok(actions)
    }

    fn maybe_new_view(&mut self, target: View) -> Vec<Action> {
        let mut actions = Vec::new();
        if target.primary(&self.config) != self.id {
            return actions;
        }
        if !(self.status == Status::InViewChange && self.view == target) {
            return actions;
        }
        let Some(quorum) = self.view_changes.quorum(target, &self.config) else {
            return actions;
        };
        let plan = plan_new_view(target, &quorum);
        let pre_prepares: Vec<Signed<PrePrepare>> = plan
            .pre_prepares
            .iter()
            .cloned()
            .map(|pp| self.keypair.sign_payload(pp, self.signer))
            .collect();
        let nv = NewView { view: target, view_changes: quorum, pre_prepares: pre_prepares.clone() };
        let signed_nv = self.keypair.sign_payload(nv, self.signer);
        self.last_new_view = Some(signed_nv.clone());
        actions.push(Action::Broadcast { msg: ConsensusMessage::NewView(signed_nv) });

        actions.extend(self.enter_view(target, &plan));
        // The new primary installs its own re-issued proposals; backups
        // will Prepare them on receipt of the NewView.
        for pp in pre_prepares {
            if self.log.in_window(pp.payload.seq) {
                let _ = self.log.insert_pre_prepare(pp);
            }
        }
        self.next_seq = SeqNum(plan.max_s.0.max(self.next_seq.0).max(self.last_exec.0));
        actions.extend(self.drain_future_buffer());
        actions
    }

    fn handle_new_view(&mut self, nv: Signed<NewView>) -> Result<Vec<Action>, ProtocolError> {
        let target = nv.payload.view;
        if target < self.view || (target == self.view && self.status == Status::Normal) {
            return Err(ProtocolError::WrongView { got: target, current: self.view });
        }
        let primary = target.primary(&self.config);
        verify_signed_from(&self.registry, &nv, (self.scheme.proposer)(primary))?;
        verify::verify_new_view_contents(&self.registry, &nv.payload, &self.config, &self.scheme)?;
        let plan = validate_new_view(&nv.payload, &self.config)?;
        self.last_new_view = Some(nv.clone());

        let mut actions = self.enter_view(target, &plan);
        for pp in nv.payload.pre_prepares {
            if self.log.in_window(pp.payload.seq) {
                match self.accept_pre_prepare(pp) {
                    Ok(more) => actions.extend(more),
                    Err(_) => {}
                }
            }
        }
        actions.extend(self.drain_future_buffer());
        Ok(actions)
    }

    /// Common view-entry bookkeeping: apply the plan's checkpoint, clear
    /// stale agreement state, leave view-change status.
    fn enter_view(&mut self, view: View, plan: &NewViewPlan) -> Vec<Action> {
        let mut actions = Vec::new();
        if plan.checkpoint.seq() > self.checkpoints.stable_seq() {
            let cert = plan.checkpoint.clone();
            if self.checkpoints.install_certificate(cert.clone()) {
                actions.extend(self.apply_stable_checkpoint(cert));
            }
        }
        self.log.clear_above(self.checkpoints.stable_seq());
        self.view = view;
        self.status = Status::Normal;
        self.stalled_timeouts = 0;
        self.view_change_escalations = 0;
        self.view_changes.collect_garbage(view);
        self.record(|| DurableEvent::EnteredView { view });
        actions.push(Action::EnteredView { view });
        actions
    }

    fn drain_future_buffer(&mut self) -> Vec<Action> {
        let buffered = std::mem::take(&mut self.future_buffer);
        let mut actions = Vec::new();
        for msg in buffered {
            if let Ok(more) = self.on_message(msg) {
                actions.extend(more);
            }
        }
        actions
    }
}

impl<A: Application> std::fmt::Debug for Replica<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("status", &self.status)
            .field("last_exec", &self.last_exec)
            .field("stable", &self.checkpoints.stable_seq())
            .finish_non_exhaustive()
    }
}

/// Builds an authenticated request the way a client library would —
/// shared by tests, benchmarks, and the [`crate::client::PbftClient`].
pub fn make_request(
    master_seed: u64,
    client: ClientId,
    timestamp: splitbft_types::Timestamp,
    op: bytes::Bytes,
) -> Request {
    let id = splitbft_types::RequestId { client, timestamp };
    let key = client_mac_key(master_seed, client);
    let auth = key.tag(&Request::auth_bytes(id, &op, false));
    Request { id, op, encrypted: false, auth }
}

