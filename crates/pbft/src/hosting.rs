//! Hosting adapter: [`Replica`] as a [`Protocol`].
//!
//! With this impl a PBFT replica drops unchanged into any
//! `splitbft-net` runtime — the in-process [`ThreadedCluster`] or the
//! deployable [`TcpNode`] — which is how the socket demo and the
//! `splitbft-node` binary run the baseline.
//!
//! [`ThreadedCluster`]: splitbft_net::runtime::ThreadedCluster
//! [`TcpNode`]: splitbft_net::tcp::TcpNode

use crate::action::Action;
use crate::replica::Replica;
use splitbft_app::Application;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_types::{
    ConsensusMessage, DurableCheckpoint, DurableEvent, ProtocolError, Request, SeqNum,
};

fn to_outputs(actions: Vec<Action>) -> Vec<ProtocolOutput<ConsensusMessage>> {
    actions
        .into_iter()
        .filter_map(|action| match action {
            Action::Broadcast { msg } => Some(ProtocolOutput::Broadcast(msg)),
            Action::Send { to, msg } => Some(ProtocolOutput::Send { to, msg }),
            Action::SendReply { to, reply } => Some(ProtocolOutput::Reply { to, reply }),
            // Persistence and observability actions have no network
            // footprint; runtimes that care (the simulator, the model
            // checker) consume Actions directly instead.
            _ => None,
        })
        .collect()
}

impl<A: Application + 'static> Protocol for Replica<A> {
    type Message = ConsensusMessage;

    fn on_message(&mut self, msg: ConsensusMessage) -> Vec<ProtocolOutput<ConsensusMessage>> {
        // A malformed or unverifiable message yields no outputs — the
        // byzantine-tolerant stance is to ignore it, not to crash.
        to_outputs(Replica::on_message(self, msg).unwrap_or_default())
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<ProtocolOutput<ConsensusMessage>> {
        to_outputs(self.on_client_batch(requests))
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<ConsensusMessage>> {
        to_outputs(self.on_view_timeout())
    }

    fn progress(&self) -> u64 {
        self.last_executed().0
    }

    fn has_pending_requests(&self) -> bool {
        Replica::has_pending_requests(self)
    }

    fn current_view(&self) -> u64 {
        self.view().0
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.enable_durable_events();
        Replica::drain_durable_events(self)
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        Replica::replay_durable_event(self, event)
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        Replica::durable_checkpoint(self)
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        self.restore_durable_checkpoint(cp)
    }

    fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<ConsensusMessage> {
        Replica::catch_up_messages(self, have_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::make_request;
    use splitbft_app::CounterApp;
    use splitbft_types::{ClientId, ClusterConfig, ReplicaId, Timestamp};

    #[test]
    fn replica_hosts_as_protocol() {
        let cfg = ClusterConfig::new(4).unwrap();
        let mut primary: Replica<CounterApp> =
            Replica::new(cfg, ReplicaId(0), 42, CounterApp::new());
        let request =
            make_request(42, ClientId(0), Timestamp(1), bytes::Bytes::from_static(b"inc"));
        let outputs = Protocol::on_client_requests(&mut primary, vec![request]);
        assert!(
            outputs.iter().any(|o| matches!(o, ProtocolOutput::Broadcast(_))),
            "primary should broadcast a PrePrepare"
        );
    }
}
