//! The client-side protocol: issue authenticated requests, collect
//! `f + 1` matching replies.
//!
//! PBFT clients accept a result only once `f + 1` replicas — at least one
//! of them correct — report the same value. The paper's workload
//! ("clients constantly issue synchronous requests ... and measure the
//! time it takes to collect the replies") is a closed loop over this state
//! machine.

use splitbft_crypto::{client_mac_key, MacKey};
use splitbft_types::{
    ClientId, ClusterConfig, Reply, ReplicaId, Request, RequestId, Timestamp,
};
use std::collections::BTreeMap;

/// The outcome of delivering a reply to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// Still waiting for more matching replies.
    Pending,
    /// The operation completed with this result.
    Completed(bytes::Bytes),
    /// The reply was ignored (bad MAC, wrong request, duplicate sender).
    Ignored,
}

/// A PBFT service client.
#[derive(Debug)]
pub struct PbftClient {
    id: ClientId,
    mac: MacKey,
    config: ClusterConfig,
    next_timestamp: Timestamp,
    in_flight: Option<InFlight>,
}

#[derive(Debug)]
struct InFlight {
    request: RequestId,
    /// result bytes keyed by replying replica.
    replies: BTreeMap<ReplicaId, bytes::Bytes>,
}

impl PbftClient {
    /// Creates client `id` against a cluster whose keys derive from
    /// `master_seed`.
    pub fn new(config: ClusterConfig, id: ClientId, master_seed: u64) -> Self {
        PbftClient {
            id,
            mac: client_mac_key(master_seed, id),
            config,
            next_timestamp: Timestamp(1),
            in_flight: None,
        }
    }


    /// Resumes this client identity at `timestamp`. Replicas suppress
    /// duplicates by each client's last-seen timestamp, so a *new
    /// session* of a previously-used client id must start above every
    /// timestamp it ever issued — deployed clients use wall-clock time.
    pub fn starting_at(mut self, timestamp: Timestamp) -> Self {
        self.next_timestamp = timestamp;
        self
    }

    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// `true` if a request is awaiting its reply quorum.
    pub fn has_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// The in-flight request id, if any (used by runtimes to key timers).
    pub fn in_flight_request(&self) -> Option<RequestId> {
        self.in_flight.as_ref().map(|f| f.request)
    }

    /// Builds and tracks the next request. Synchronous clients call this
    /// only after the previous call completed.
    ///
    /// # Panics
    ///
    /// Panics if a request is still in flight — the closed-loop contract.
    pub fn issue(&mut self, op: bytes::Bytes) -> Request {
        assert!(self.in_flight.is_none(), "client already has a request in flight");
        let id = RequestId { client: self.id, timestamp: self.next_timestamp };
        self.next_timestamp = self.next_timestamp.next();
        let auth = self.mac.tag(&Request::auth_bytes(id, &op, false));
        self.in_flight = Some(InFlight { request: id, replies: BTreeMap::new() });
        Request { id, op, encrypted: false, auth }
    }

    /// Delivers one replica reply.
    pub fn on_reply(&mut self, reply: &Reply) -> ClientEvent {
        let Some(flight) = self.in_flight.as_mut() else {
            return ClientEvent::Ignored;
        };
        if reply.request != flight.request {
            return ClientEvent::Ignored;
        }
        let expected = self.mac.tag(&Reply::auth_bytes(
            reply.view,
            reply.request,
            reply.replica,
            &reply.result,
            reply.encrypted,
        ));
        if !splitbft_crypto::hmac::ct_eq(&expected, &reply.auth) {
            return ClientEvent::Ignored;
        }
        flight.replies.insert(reply.replica, reply.result.clone());

        // f + 1 matching results from distinct replicas complete the call.
        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in flight.replies.values() {
            *counts.entry(result.as_ref()).or_insert(0) += 1;
        }
        let quorum = self.config.reply_quorum();
        if let Some((&result, _)) = counts.iter().find(|(_, &n)| n >= quorum) {
            let result = bytes::Bytes::copy_from_slice(result);
            self.in_flight = None;
            return ClientEvent::Completed(result);
        }
        ClientEvent::Pending
    }

    /// Abandons the in-flight request (used after a client-side timeout,
    /// before re-issuing with the same timestamp via broadcast — our
    /// runtimes simply re-send).
    pub fn abort_in_flight(&mut self) {
        self.in_flight = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::View;

    const SEED: u64 = 7;

    fn cfg() -> ClusterConfig {
        ClusterConfig::new(4).unwrap()
    }

    fn reply_for(request: RequestId, replica: u32, result: &'static [u8], seed: u64) -> Reply {
        let mac = client_mac_key(seed, request.client);
        let result = Bytes::from_static(result);
        let auth = mac.tag(&Reply::auth_bytes(
            View(0),
            request,
            ReplicaId(replica),
            &result,
            false,
        ));
        Reply { view: View(0), request, replica: ReplicaId(replica), result, encrypted: false, auth }
    }

    #[test]
    fn completes_on_f_plus_1_matching_replies() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let req = client.issue(Bytes::from_static(b"op"));
        assert!(client.has_in_flight());

        assert_eq!(client.on_reply(&reply_for(req.id, 0, b"ok", SEED)), ClientEvent::Pending);
        assert_eq!(
            client.on_reply(&reply_for(req.id, 1, b"ok", SEED)),
            ClientEvent::Completed(Bytes::from_static(b"ok"))
        );
        assert!(!client.has_in_flight());
    }

    #[test]
    fn conflicting_replies_do_not_complete() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let req = client.issue(Bytes::from_static(b"op"));
        assert_eq!(client.on_reply(&reply_for(req.id, 0, b"a", SEED)), ClientEvent::Pending);
        assert_eq!(client.on_reply(&reply_for(req.id, 1, b"b", SEED)), ClientEvent::Pending);
        // A third, matching one of them, completes.
        assert_eq!(
            client.on_reply(&reply_for(req.id, 2, b"a", SEED)),
            ClientEvent::Completed(Bytes::from_static(b"a"))
        );
    }

    #[test]
    fn duplicate_replica_counts_once() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let req = client.issue(Bytes::from_static(b"op"));
        assert_eq!(client.on_reply(&reply_for(req.id, 0, b"ok", SEED)), ClientEvent::Pending);
        assert_eq!(client.on_reply(&reply_for(req.id, 0, b"ok", SEED)), ClientEvent::Pending);
    }

    #[test]
    fn forged_reply_ignored() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let req = client.issue(Bytes::from_static(b"op"));
        // A reply MACed under the wrong key (attacker does not know the
        // client key).
        let forged = reply_for(req.id, 0, b"evil", SEED + 1);
        assert_eq!(client.on_reply(&forged), ClientEvent::Ignored);
    }

    #[test]
    fn stale_reply_ignored() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let req1 = client.issue(Bytes::from_static(b"op"));
        client.on_reply(&reply_for(req1.id, 0, b"ok", SEED));
        client.on_reply(&reply_for(req1.id, 1, b"ok", SEED));
        // Request 2 in flight; a late reply for request 1 is ignored.
        let _req2 = client.issue(Bytes::from_static(b"op2"));
        assert_eq!(client.on_reply(&reply_for(req1.id, 2, b"ok", SEED)), ClientEvent::Ignored);
    }

    #[test]
    fn timestamps_increase() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let r1 = client.issue(Bytes::from_static(b"a"));
        client.abort_in_flight();
        let r2 = client.issue(Bytes::from_static(b"b"));
        assert!(r2.id.timestamp > r1.id.timestamp);
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn double_issue_panics() {
        let mut client = PbftClient::new(cfg(), ClientId(1), SEED);
        let _ = client.issue(Bytes::from_static(b"a"));
        let _ = client.issue(Bytes::from_static(b"b"));
    }
}
