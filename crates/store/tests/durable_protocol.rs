//! Lifecycle tests for [`DurableProtocol`] with a minimal deterministic
//! protocol: events are durable before outputs are released, sealed
//! checkpoints bound the WAL, and recovery replays exactly what was
//! synced — falling back gracefully when the checkpoint is corrupt.

use bytes::Bytes;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_store::{replica_sealing_identity, DurableProtocol};
use splitbft_types::{
    ClientId, Digest, DurableCheckpoint, DurableEvent, ProtocolError, ReplicaId, Request,
    RequestBatch, RequestId, SeqNum, Timestamp,
};
use std::path::PathBuf;

/// Executes one request per call, checkpointing every 4 executions.
/// State is just the execution count, which makes divergence obvious.
#[derive(Default)]
struct ToyProtocol {
    count: u64,
    durable: Vec<DurableEvent>,
    enabled: bool,
    /// Prepended to the first non-empty drain, the way the sharding
    /// plane's `ShardMember` writes its `ShardTag` header.
    pending_tag: Option<DurableEvent>,
    /// Shard recorded from a replayed `ShardTag`, if any.
    seen_tag: Option<u32>,
}

const TOY_INTERVAL: u64 = 4;

fn toy_digest(count: u64) -> Digest {
    splitbft_crypto::digest_bytes(&count.to_le_bytes())
}

impl Protocol for ToyProtocol {
    type Message = u64;

    fn on_message(&mut self, _msg: u64) -> Vec<ProtocolOutput<u64>> {
        Vec::new()
    }

    fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
        for request in requests {
            self.count += 1;
            if self.enabled {
                self.durable.push(DurableEvent::Committed {
                    seq: SeqNum(self.count),
                    batch: RequestBatch::single(request),
                });
                if self.count % TOY_INTERVAL == 0 {
                    self.durable.push(DurableEvent::StableCheckpoint { seq: SeqNum(self.count) });
                }
            }
        }
        vec![ProtocolOutput::Broadcast(self.count)]
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
        Vec::new()
    }

    fn progress(&self) -> u64 {
        self.count
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        self.enabled = true;
        let mut events = std::mem::take(&mut self.durable);
        if !events.is_empty() {
            if let Some(tag) = self.pending_tag.take() {
                events.insert(0, tag);
            }
        }
        events
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        match event {
            DurableEvent::Committed { seq, .. } if seq.0 == self.count + 1 => {
                self.count = seq.0;
            }
            DurableEvent::ShardTag { shard } => self.seen_tag = Some(shard.0),
            _ => {}
        }
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        let stable = self.count - self.count % TOY_INTERVAL;
        if stable == 0 {
            return None;
        }
        Some(DurableCheckpoint {
            seq: SeqNum(stable),
            digest: toy_digest(stable),
            state: Bytes::copy_from_slice(&stable.to_le_bytes()),
        })
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        let bytes: [u8; 8] = cp.state[..]
            .try_into()
            .map_err(|_| ProtocolError::CorruptState("toy state must be 8 bytes".into()))?;
        let count = u64::from_le_bytes(bytes);
        if toy_digest(count) != cp.digest || SeqNum(count) != cp.seq {
            return Err(ProtocolError::CorruptState("toy digest mismatch".into()));
        }
        self.count = count;
        Ok(())
    }
}

fn request(ts: u64) -> Request {
    Request {
        id: RequestId { client: ClientId(1), timestamp: Timestamp(ts) },
        op: Bytes::from_static(b"op"),
        encrypted: false,
        auth: [0u8; 32],
    }
}

fn scenario(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "splitbft-durable-proto-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn identity() -> splitbft_tee::seal::SealingIdentity {
    replica_sealing_identity(7, ReplicaId(0))
}

#[test]
fn crash_before_checkpoint_replays_the_wal() {
    let dir = scenario("wal-replay");
    {
        let mut durable =
            DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
        for ts in 1..=3u64 {
            // Below the checkpoint interval: everything lives in the WAL.
            let out = durable.on_client_requests(vec![request(ts)]);
            assert_eq!(out, vec![ProtocolOutput::Broadcast(ts)]);
        }
        assert_eq!(durable.progress(), 3);
        // Dropped without any graceful shutdown: only the WAL survives.
    }
    let recovered = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    assert_eq!(recovered.progress(), 3, "WAL replay must restore all three executions");
    assert_eq!(recovered.recovery_report().replayed_events, 3);
    assert!(recovered.recovery_report().restored_checkpoint.is_none());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkpoints_bound_the_wal_and_anchor_recovery() {
    let dir = scenario("gc");
    let wal_after_burst;
    {
        let mut durable =
            DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
        for ts in 1..=41u64 {
            durable.on_client_requests(vec![request(ts)]);
        }
        // 41 executions = 10 sealed checkpoints; the WAL must hold only
        // the tail beyond the last one (seq 40), not all 41 commits.
        wal_after_burst = durable.wal_len();
        assert!(
            wal_after_burst < 1024,
            "WAL not GC'd past sealed checkpoints: {wal_after_burst} bytes"
        );
    }
    let recovered = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    assert_eq!(recovered.progress(), 41);
    let report = recovered.recovery_report();
    assert_eq!(report.restored_checkpoint, Some(SeqNum(40)));
    assert_eq!(report.replayed_events, 1, "only the post-checkpoint tail replays");
    // At most two sealed files are retained.
    let sealed = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".sealed"))
        .count();
    assert!(sealed >= 1 && sealed <= 2, "expected 1-2 sealed checkpoints, found {sealed}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn shard_tag_survives_wal_gc_and_replays_on_recovery() {
    let dir = scenario("shard-tag");
    {
        let toy = ToyProtocol {
            pending_tag: Some(DurableEvent::ShardTag { shard: splitbft_types::ShardId(3) }),
            ..ToyProtocol::default()
        };
        let mut durable = DurableProtocol::recover(toy, &dir, identity()).unwrap();
        // Far past the checkpoint interval: the WAL is GC'd repeatedly,
        // and each GC must carry the shard tag forward even though every
        // pre-checkpoint Committed record is dropped.
        for ts in 1..=41u64 {
            durable.on_client_requests(vec![request(ts)]);
        }
        assert!(durable.wal_len() < 1024, "WAL must still be GC'd with a tag present");
    }
    let recovered = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    assert_eq!(recovered.progress(), 41);
    assert_eq!(
        recovered.inner().seen_tag,
        Some(3),
        "the shard tag must survive every GC rewrite and replay on recovery"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_checkpoint_falls_back_to_the_older_one_and_the_wal() {
    let dir = scenario("corrupt");
    {
        let mut durable =
            DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
        for ts in 1..=9u64 {
            durable.on_client_requests(vec![request(ts)]);
        }
    }
    // Newest checkpoint (seq 8) gets tampered with on disk.
    let newest = dir.join("checkpoint-8.sealed");
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let recovered = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    let report = recovered.recovery_report();
    assert_eq!(
        report.checkpoint_errors.len(),
        1,
        "the tampered checkpoint must surface as a typed error"
    );
    assert!(matches!(report.checkpoint_errors[0], ProtocolError::CorruptState(_)));
    // Recovery fell back to checkpoint 4; the WAL covers 5..=9 — but it
    // was GC'd past 8, so only 9 replays locally. The replica comes up
    // at 4+ (peer state transfer would close the rest in a cluster):
    // startup is degraded, never aborted.
    assert_eq!(report.restored_checkpoint, Some(SeqNum(4)));
    assert!(recovered.progress() >= 4);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn group_commit_withholds_outputs_until_the_batch_fsync() {
    let dir = scenario("group-commit");
    {
        let mut durable = DurableProtocol::recover(ToyProtocol::default(), &dir, identity())
            .unwrap()
            .with_group_commit(true);
        assert_eq!(durable.fsyncs(), 0);

        // Three handler calls forming one drain batch: no output may
        // escape before the batch's single fsync returns...
        for ts in 1..=3u64 {
            let escaped = durable.on_client_requests(vec![request(ts)]);
            assert!(escaped.is_empty(), "output escaped before the batch fsync: {escaped:?}");
        }
        assert_eq!(durable.fsyncs(), 0, "fsync ran before the flush point");

        // ...and the flush releases all of them at once, after exactly
        // one fsync for the whole batch.
        let released = durable.flush_durable();
        assert_eq!(
            released,
            vec![
                ProtocolOutput::Broadcast(1),
                ProtocolOutput::Broadcast(2),
                ProtocolOutput::Broadcast(3),
            ]
        );
        assert_eq!(durable.fsyncs(), 1, "one fsync per drain batch");

        // A checkpoint stabilizing mid-batch seals only after the batch
        // fsync (the sealed file must never claim events the log could
        // still lose) — and everything released was durable.
        durable.on_client_requests(vec![request(4)]);
        let released = durable.flush_durable();
        assert_eq!(released, vec![ProtocolOutput::Broadcast(4)]);
        assert_eq!(durable.fsyncs(), 2);
        // Dropped without a graceful shutdown, like a crash.
    }
    let recovered = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    assert_eq!(
        recovered.progress(),
        4,
        "everything released before the crash must replay after it"
    );
    assert_eq!(
        recovered.recovery_report().restored_checkpoint,
        Some(SeqNum(4)),
        "the mid-batch stable checkpoint was sealed at the flush point"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn plain_mode_fsyncs_every_handler_call() {
    // The group-commit baseline: without the mode, each handler call
    // with events pays its own fsync and returns its outputs directly.
    let dir = scenario("plain-fsyncs");
    let mut durable =
        DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    for ts in 1..=3u64 {
        let outputs = durable.on_client_requests(vec![request(ts)]);
        assert_eq!(outputs, vec![ProtocolOutput::Broadcast(ts)]);
    }
    assert_eq!(durable.fsyncs(), 3, "plain mode: one fsync per event");
    assert!(durable.flush_durable().is_empty(), "nothing withheld in plain mode");
    assert_eq!(durable.fsyncs(), 3, "an all-clean flush adds no fsync");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn wiped_data_dir_starts_fresh() {
    let dir = scenario("fresh");
    let durable = DurableProtocol::recover(ToyProtocol::default(), &dir, identity()).unwrap();
    assert_eq!(durable.progress(), 0);
    assert!(!durable.recovery_report().recovered_anything());
    let _ = std::fs::remove_dir_all(dir);
}
