//! Property tests for the WAL codec under hostile input.
//!
//! The recovery scanner's contract is *total*: any byte image — torn
//! tails, flipped bits, appended garbage, length bombs — yields the
//! longest valid record prefix without panicking, and a freshly written
//! log always recovers exactly what was appended.

use proptest::prelude::*;
use splitbft_store::wal::{encode_record, scan, Wal, MAX_RECORD_LEN, RECORD_HEADER_LEN};
use splitbft_types::wire::{decode, encode};
use splitbft_types::{DurableEvent, SeqNum, View};

fn image_of(records: &[Vec<u8>]) -> Vec<u8> {
    records.iter().flat_map(|r| encode_record(r)).collect()
}

fn scenario_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("splitbft-wal-props-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Any sequence of records survives the encode → scan roundtrip.
    #[test]
    fn random_record_sequences_roundtrip(
        records in collection::vec(collection::vec(any::<u8>(), 0..200), 0..20),
    ) {
        let image = image_of(&records);
        let (recovered, valid_len) = scan(&image);
        prop_assert_eq!(&recovered, &records);
        prop_assert_eq!(valid_len, image.len());
    }

    // ...and the same through a real file: append, sync, reopen.
    #[test]
    fn file_roundtrip_matches_appends(
        records in collection::vec(collection::vec(any::<u8>(), 0..100), 1..12),
        case in any::<u64>(),
    ) {
        let dir = scenario_dir(&format!("file-{case}"));
        let path = dir.join("wal.log");
        {
            let (mut wal, existing) = Wal::open(&path).expect("open");
            prop_assert!(existing.is_empty());
            for record in &records {
                wal.append(record).expect("append");
            }
            wal.sync().expect("sync");
        }
        let (_, recovered) = Wal::open(&path).expect("reopen");
        prop_assert_eq!(recovered, records);
        let _ = std::fs::remove_dir_all(dir);
    }

    // Truncating a valid image anywhere recovers a prefix of the
    // original records — the torn-tail contract.
    #[test]
    fn truncated_tail_recovers_longest_valid_prefix(
        records in collection::vec(collection::vec(any::<u8>(), 1..100), 1..12),
        cut_permille in 0usize..1000,
    ) {
        let image = image_of(&records);
        let cut = image.len() * cut_permille / 1000;
        let (recovered, valid_len) = scan(&image[..cut]);
        prop_assert!(valid_len <= cut);
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&recovered[..], &records[..recovered.len()]);
    }

    // A single flipped bit anywhere yields a (possibly shorter) prefix
    // of the original records and never a corrupted record. (The flip
    // can only shorten recovery: every payload is guarded by its CRC
    // and every header by magic + CRC + length bounds.)
    #[test]
    fn bit_flip_never_yields_corrupt_records(
        records in collection::vec(collection::vec(any::<u8>(), 1..60), 1..8),
        flip_permille in 0usize..1000,
        bit in 0u8..8,
    ) {
        let mut image = image_of(&records);
        let at = (image.len() - 1) * flip_permille / 1000;
        image[at] ^= 1 << bit;
        let (recovered, _) = scan(&image);
        // Every recovered record must literally be one of the originals
        // in prefix order — never a mutated payload that happened to
        // slip through.
        prop_assert!(recovered.len() <= records.len());
        for (got, want) in recovered.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    // Pure garbage never panics and never produces records, no matter
    // what lengths it claims.
    #[test]
    fn garbage_never_panics(bytes in collection::vec(any::<u8>(), 0..600)) {
        let (records, valid_len) = scan(&bytes);
        prop_assert!(valid_len <= bytes.len());
        // Whatever was recovered must re-encode into exactly the valid
        // prefix.
        prop_assert_eq!(image_of(&records).len(), valid_len);
    }

    // Garbage appended after a valid log does not damage the valid part.
    #[test]
    fn garbage_suffix_keeps_valid_prefix(
        records in collection::vec(collection::vec(any::<u8>(), 1..60), 1..8),
        garbage in collection::vec(any::<u8>(), 1..100),
    ) {
        let mut image = image_of(&records);
        let valid = image.len();
        image.extend_from_slice(&garbage);
        let (recovered, valid_len) = scan(&image);
        // The garbage may accidentally start with a valid-looking
        // record only if it *is* one; either way the original prefix
        // survives intact.
        prop_assert!(valid_len >= valid || recovered.len() <= records.len());
        for (got, want) in recovered.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    // Typed WAL contents: random DurableEvents roundtrip through the
    // record layer and the wire codec together.
    #[test]
    fn durable_events_roundtrip_through_records(
        seqs in collection::vec(any::<u64>(), 1..20),
    ) {
        let events: Vec<DurableEvent> = seqs
            .iter()
            .enumerate()
            .map(|(i, &s)| match i % 3 {
                0 => DurableEvent::StableCheckpoint { seq: SeqNum(s) },
                1 => DurableEvent::CounterIssued { counter: s },
                _ => DurableEvent::EnteredView { view: View(s) },
            })
            .collect();
        let image = image_of(&events.iter().map(encode).collect::<Vec<_>>());
        let (records, _) = scan(&image);
        let back: Vec<DurableEvent> = records
            .iter()
            .map(|r| decode::<DurableEvent>(r).expect("CRC-valid record decodes"))
            .collect();
        prop_assert_eq!(back, events);
    }
}

#[test]
fn length_bomb_header_is_rejected_without_allocation() {
    // A record claiming MAX_RECORD_LEN + 1 bytes: the scanner must stop
    // rather than trust the length.
    let mut image = vec![0xD7u8];
    image.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
    image.extend_from_slice(&[0u8; 4]);
    image.extend_from_slice(&[0xAAu8; 64]);
    let (records, valid_len) = scan(&image);
    assert!(records.is_empty());
    assert_eq!(valid_len, 0);
    let _ = RECORD_HEADER_LEN; // re-exported constant stays public API
}
