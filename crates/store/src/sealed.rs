//! Sealed checkpoint files.
//!
//! Checkpoints are serialized with the wire codec and sealed with
//! [`splitbft_tee::seal`] under the replica's measurement before they
//! touch untrusted storage — the paper's enclave-recovery story
//! (§4): only the same replica code on the same platform can unseal its
//! own state, so a compromised host can destroy a checkpoint (a
//! liveness loss recovered via peer state transfer) but cannot read or
//! forge one.
//!
//! Each checkpoint lives in its own `checkpoint-<seq>.sealed` file,
//! written via temp-file + rename so a crash mid-write never corrupts
//! an existing checkpoint. The two newest files are retained: if the
//! latest turns out torn or tampered at recovery, the previous one
//! still bounds the WAL replay.

use splitbft_crypto::digest_bytes;
use splitbft_tee::seal::{seal_data, unseal_data, SealingIdentity};
use splitbft_types::wire::{decode, encode};
use splitbft_types::{DurableCheckpoint, ProtocolError, ReplicaId};
use std::io;
use std::path::{Path, PathBuf};

/// Context bound into every sealed checkpoint (the AEAD's associated
/// data): a blob sealed as something else can never unseal as a
/// checkpoint.
const CHECKPOINT_AAD: &[u8] = b"splitbft-store-checkpoint";

/// How many sealed checkpoints to retain.
const KEEP: usize = 2;

/// Derives the sealing identity a replica's store uses: a per-platform
/// secret (simulated per replica, as each replica models one machine)
/// bound to the store's measurement. Restarting the same replica on the
/// same "platform" re-derives the same identity and can unseal; any
/// other replica or code cannot.
pub fn replica_sealing_identity(master_seed: u64, replica: ReplicaId) -> SealingIdentity {
    let platform = digest_bytes(
        &[b"splitbft-platform".as_slice(), &master_seed.to_le_bytes(), &replica.0.to_le_bytes()]
            .concat(),
    );
    SealingIdentity {
        platform_secret: platform.0,
        measurement: digest_bytes(b"splitbft-store-v1").0,
    }
}

/// The on-disk collection of sealed checkpoints for one replica.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    identity: SealingIdentity,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created by the caller) sealing under
    /// `identity`.
    pub fn new(dir: &Path, identity: SealingIdentity) -> Self {
        CheckpointStore { dir: dir.to_path_buf(), identity }
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{seq}.sealed"))
    }

    /// Seals and atomically writes `cp`, then prunes all but the two
    /// newest checkpoints.
    ///
    /// The data is fsynced before the rename and the directory after
    /// it: the caller garbage-collects the WAL past this checkpoint the
    /// moment `save` returns, so a power loss must not be able to lose
    /// the checkpoint *and* the log entries it replaced.
    pub fn save(&self, cp: &DurableCheckpoint) -> io::Result<PathBuf> {
        use std::io::Write as _;
        let sealed = seal_data(&self.identity, cp.seq.0, CHECKPOINT_AAD, &encode(cp));
        let path = self.path_for(cp.seq.0);
        let tmp = path.with_extension("sealed.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&sealed)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Durable directory entry (best effort where the platform
        // supports fsync on directories, as Linux does).
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_data();
        }
        for (_, old) in self.list()?.into_iter().rev().skip(KEEP) {
            let _ = std::fs::remove_file(old);
        }
        Ok(path)
    }

    /// All checkpoint files, sorted by sequence number ascending.
    fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = name
                .strip_prefix("checkpoint-")
                .and_then(|rest| rest.strip_suffix(".sealed"))
                .and_then(|seq| seq.parse::<u64>().ok())
            else {
                continue;
            };
            found.push((seq, entry.path()));
        }
        found.sort_by_key(|(seq, _)| *seq);
        Ok(found)
    }

    /// Unseals one checkpoint file.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CorruptState`] naming the file for unreadable,
    /// unsealable (wrong platform / measurement / tampered) or
    /// undecodable contents — typed all the way, no panics.
    fn load_one(&self, seq: u64, path: &Path) -> Result<DurableCheckpoint, ProtocolError> {
        let sealed = std::fs::read(path).map_err(|e| {
            ProtocolError::CorruptState(format!("cannot read {}: {e}", path.display()))
        })?;
        let plain = unseal_data(&self.identity, seq, CHECKPOINT_AAD, &sealed).map_err(|e| {
            ProtocolError::CorruptState(format!("cannot unseal {}: {e}", path.display()))
        })?;
        let cp: DurableCheckpoint = decode(&plain).map_err(|e| {
            ProtocolError::CorruptState(format!("cannot decode {}: {e}", path.display()))
        })?;
        if cp.seq.0 != seq {
            return Err(ProtocolError::CorruptState(format!(
                "{} claims seq {} but contains seq {}",
                path.display(),
                seq,
                cp.seq.0
            )));
        }
        Ok(cp)
    }

    /// Loads the newest checkpoint that unseals and decodes, newest
    /// first. Corrupt files are skipped (and reported in the second
    /// return value) so one bad file degrades recovery instead of
    /// aborting it — the caller falls back to older checkpoints, the
    /// WAL, and finally peer state transfer.
    pub fn load_latest(&self) -> io::Result<(Option<DurableCheckpoint>, Vec<ProtocolError>)> {
        let mut errors = Vec::new();
        for (seq, path) in self.list()?.into_iter().rev() {
            match self.load_one(seq, &path) {
                Ok(cp) => return Ok((Some(cp), errors)),
                Err(e) => errors.push(e),
            }
        }
        Ok((None, errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::SeqNum;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "splitbft-sealed-{}-{}",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cp(seq: u64) -> DurableCheckpoint {
        let state = Bytes::from(format!("state at {seq}"));
        DurableCheckpoint { seq: SeqNum(seq), digest: digest_bytes(&state), state }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp("roundtrip");
        let store = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(1)));
        store.save(&cp(128)).unwrap();
        let (loaded, errors) = store.load_latest().unwrap();
        assert_eq!(loaded, Some(cp(128)));
        assert!(errors.is_empty());
    }

    #[test]
    fn newest_wins_and_old_ones_are_pruned() {
        let dir = tmp("prune");
        let store = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(1)));
        for seq in [64, 128, 192, 256] {
            store.save(&cp(seq)).unwrap();
        }
        let (loaded, _) = store.load_latest().unwrap();
        assert_eq!(loaded.unwrap().seq, SeqNum(256));
        // Only KEEP files remain.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, KEEP);
    }

    #[test]
    fn tampered_checkpoint_falls_back_to_previous() {
        let dir = tmp("tamper");
        let store = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(1)));
        store.save(&cp(64)).unwrap();
        store.save(&cp(128)).unwrap();
        // Flip a bit in the newest sealed file.
        let path = dir.join("checkpoint-128.sealed");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 1;
        std::fs::write(&path, &bytes).unwrap();

        let (loaded, errors) = store.load_latest().unwrap();
        assert_eq!(loaded.unwrap().seq, SeqNum(64), "falls back to the older checkpoint");
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], ProtocolError::CorruptState(_)));
        assert!(errors[0].to_string().contains("checkpoint-128"));
    }

    #[test]
    fn other_replica_cannot_unseal() {
        let dir = tmp("other");
        let store = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(1)));
        store.save(&cp(64)).unwrap();
        let thief = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(2)));
        let (loaded, errors) = thief.load_latest().unwrap();
        assert!(loaded.is_none());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn empty_store_is_not_an_error() {
        let dir = tmp("empty");
        let store = CheckpointStore::new(&dir, replica_sealing_identity(42, ReplicaId(1)));
        let (loaded, errors) = store.load_latest().unwrap();
        assert!(loaded.is_none());
        assert!(errors.is_empty());
    }
}
