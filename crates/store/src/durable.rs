//! [`DurableProtocol`] — the hosting wrapper that makes any
//! [`Protocol`] durable.
//!
//! The wrapper interposes on every handler call: after the inner state
//! machine processes an input, its freshly recorded
//! [`DurableEvent`]s are appended to the WAL and fsynced **before** the
//! handler's outputs are returned to the runtime for routing. A crash
//! at any point therefore never "un-happens" anything the cluster may
//! already have observed from this replica.
//!
//! Checkpoints bound the log: whenever the inner protocol reports a new
//! stable checkpoint, its [`DurableCheckpoint`] is sealed to disk (see
//! [`crate::sealed`]) and the WAL is atomically rewritten down to the
//! records still needed beyond it — bounded disk growth under sustained
//! load.
//!
//! [`DurableProtocol::recover`] is the restart path: newest valid
//! sealed checkpoint (corrupt ones are skipped with typed errors),
//! then WAL replay, then normal hosting. Whatever the local data could
//! not cover is fetched from peers by the runtime's state-transfer
//! client (`splitbft-net`).
//!
//! # Group commit
//!
//! One fsync per handler call is the durability plane's throughput
//! ceiling: under load the core loop drains events far faster than a
//! disk can sync. [`DurableProtocol::with_group_commit`] moves the
//! fsync to the runtime's batch boundary — handler calls append their
//! WAL records *without* syncing and withhold their outputs; the
//! runtime's [`Protocol::flush_durable`] call at the end of each event
//! drain-batch performs one fsync for the whole batch and releases
//! everything withheld. The invariant is identical (no output escapes
//! before the records justifying it are on disk); only the fsync count
//! drops, from one per event to one per batch.
//!
//! # Example: the crash/recover lifecycle
//!
//! A protocol opts in by buffering [`DurableEvent`]s; the wrapper makes
//! them durable and replays them on restart:
//!
//! ```
//! use splitbft_net::transport::{Protocol, ProtocolOutput};
//! use splitbft_store::{replica_sealing_identity, DurableProtocol};
//! use splitbft_types::{DurableEvent, ReplicaId, Request, SeqNum};
//!
//! /// Counts executed requests; each execution is one durable event.
//! #[derive(Default)]
//! struct Counting {
//!     count: u64,
//!     buffered: Vec<DurableEvent>,
//! }
//!
//! impl Protocol for Counting {
//!     type Message = u64;
//!     fn on_message(&mut self, _: u64) -> Vec<ProtocolOutput<u64>> { Vec::new() }
//!     fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> { Vec::new() }
//!     fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
//!         for request in requests {
//!             self.count += 1;
//!             self.buffered.push(DurableEvent::Committed {
//!                 seq: SeqNum(self.count),
//!                 batch: splitbft_types::RequestBatch::single(request),
//!             });
//!         }
//!         Vec::new()
//!     }
//!     fn progress(&self) -> u64 { self.count }
//!     fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
//!         std::mem::take(&mut self.buffered)
//!     }
//!     fn replay_durable_event(&mut self, event: DurableEvent) {
//!         if let DurableEvent::Committed { seq, .. } = event { self.count = seq.0; }
//!     }
//! }
//!
//! # fn request(ts: u64) -> Request {
//! #     Request {
//! #         id: splitbft_types::RequestId {
//! #             client: splitbft_types::ClientId(1),
//! #             timestamp: splitbft_types::Timestamp(ts),
//! #         },
//! #         op: bytes::Bytes::from_static(b"inc"),
//! #         encrypted: false,
//! #         auth: [0u8; 32],
//! #     }
//! # }
//! let dir = std::env::temp_dir().join(format!("splitbft-doc-recover-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let identity = replica_sealing_identity(42, ReplicaId(0));
//!
//! // First incarnation: execute two requests, then "crash" (drop).
//! let mut node = DurableProtocol::recover(Counting::default(), &dir, identity.clone())?;
//! node.on_client_requests(vec![request(1)]);
//! node.on_client_requests(vec![request(2)]);
//! assert_eq!(node.progress(), 2);
//! drop(node); // no graceful shutdown: only the fsynced WAL survives
//!
//! // Second incarnation: the WAL replays both executions.
//! let recovered = DurableProtocol::recover(Counting::default(), &dir, identity)?;
//! assert_eq!(recovered.progress(), 2);
//! assert_eq!(recovered.recovery_report().replayed_events, 2);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::sealed::CheckpointStore;
use crate::wal::Wal;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_tee::seal::SealingIdentity;
use splitbft_types::wire::{decode, encode};
use splitbft_types::{
    DurableCheckpoint, DurableEvent, ProtocolError, Request, SeqNum,
};
use std::io;
use std::path::Path;

/// What [`DurableProtocol::recover`] found on disk — surfaced so nodes
/// can log it and tests can assert on it.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number of the restored sealed checkpoint, if any.
    pub restored_checkpoint: Option<SeqNum>,
    /// WAL events replayed after the checkpoint.
    pub replayed_events: usize,
    /// Corrupt sealed checkpoints that were skipped (typed, per file).
    pub checkpoint_errors: Vec<ProtocolError>,
    /// A checkpoint existed but the protocol rejected it (it will be
    /// re-fetched from peers instead).
    pub rejected_checkpoint: Option<ProtocolError>,
}

impl RecoveryReport {
    /// `true` when any local durable state was applied.
    pub fn recovered_anything(&self) -> bool {
        self.restored_checkpoint.is_some() || self.replayed_events > 0
    }
}

/// A [`Protocol`] wrapper adding write-ahead logging and sealed
/// checkpoints. See the module docs for the contract.
pub struct DurableProtocol<P: Protocol> {
    inner: P,
    wal: Wal,
    checkpoints: CheckpointStore,
    /// Sequence number of the newest checkpoint sealed to disk.
    sealed_seq: u64,
    /// In-memory mirror of the WAL's records, used to rewrite the log
    /// at GC time. Bounded by the checkpoint interval.
    tail: Vec<DurableEvent>,
    report: RecoveryReport,
    /// Group-commit mode: handler calls append WAL records without
    /// syncing and *withhold* their outputs; `flush_durable` performs
    /// the batch's single fsync and releases them. Off by default —
    /// only enable under a runtime that calls
    /// [`Protocol::flush_durable`] after every handler batch.
    group_commit: bool,
    /// Outputs withheld until the next group-commit fsync.
    withheld: Vec<ProtocolOutput<P::Message>>,
    /// Appended-but-unsynced WAL records exist.
    dirty: bool,
    /// Stable checkpoint seen since the last fsync, sealed after it.
    pending_stable: Option<SeqNum>,
    /// Monotone count of WAL fsyncs (the group-commit metric).
    fsyncs: u64,
    /// Monotone count of checkpoints sealed to disk since startup
    /// (excludes the one recovery restored).
    seals: u64,
}

impl<P: Protocol> DurableProtocol<P> {
    /// Recovers (or initializes) replica state from `dir` and wraps
    /// `inner` for durable hosting.
    ///
    /// Recovery order: the newest sealed checkpoint that unseals and
    /// validates — corrupt or protocol-rejected ones are *skipped*, not
    /// fatal — then WAL replay of everything beyond it. The report says
    /// what happened.
    pub fn recover(mut inner: P, dir: &Path, identity: SealingIdentity) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        // The first drain opts the inner protocol into event recording;
        // anything it had buffered before we owned it is not ours to
        // persist.
        let _ = inner.drain_durable_events();

        let checkpoints = CheckpointStore::new(dir, identity);
        let mut report = RecoveryReport::default();
        let mut sealed_seq = 0u64;
        let (found, errors) = checkpoints.load_latest()?;
        report.checkpoint_errors = errors;
        if let Some(cp) = found {
            match inner.restore_checkpoint(&cp) {
                Ok(()) => {
                    sealed_seq = cp.seq.0;
                    report.restored_checkpoint = Some(cp.seq);
                }
                Err(e) => report.rejected_checkpoint = Some(e),
            }
        }

        let (wal, records) = Wal::open(&dir.join("wal.log"))?;
        let mut tail = Vec::new();
        for record in records {
            // CRC-valid but undecodable records (version drift) are
            // skipped: replay is best-effort, state transfer covers the
            // rest.
            let Ok(event) = decode::<DurableEvent>(&record) else { continue };
            inner.replay_durable_event(event.clone());
            report.replayed_events += 1;
            tail.push(event);
        }
        // Replay may itself record events (it should not, but protocols
        // are free to); they describe state that is already durable.
        let _ = inner.drain_durable_events();

        let mut this = DurableProtocol {
            inner,
            wal,
            checkpoints,
            sealed_seq,
            tail,
            report,
            group_commit: false,
            withheld: Vec::new(),
            dirty: false,
            pending_stable: None,
            fsyncs: 0,
            seals: 0,
        };
        if this.sealed_seq > 0 {
            // A crash between sealing and GC leaves a long log; compact
            // it now so replay length stays bounded by one interval.
            this.gc(SeqNum(this.sealed_seq));
        }
        Ok(this)
    }

    /// Switches group-commit mode on or off (builder style, off by
    /// default).
    ///
    /// In group-commit mode, handler calls append their WAL records
    /// without syncing and **withhold their outputs**; the hosting
    /// runtime's [`Protocol::flush_durable`] call at the end of each
    /// event drain-batch performs one fsync for the whole batch and
    /// releases everything withheld. The fsync-before-release invariant
    /// is unchanged — outputs still cannot reach the network before the
    /// records justifying them are durable — but a batch of `k` events
    /// costs one fsync instead of `k`.
    ///
    /// Only enable this under a runtime that calls `flush_durable`
    /// after every batch (the TCP runtime does); otherwise outputs are
    /// withheld forever.
    #[must_use]
    pub fn with_group_commit(mut self, enabled: bool) -> Self {
        self.group_commit = enabled;
        self
    }

    /// Number of WAL fsyncs performed so far (one per handler call with
    /// events in plain mode; one per drain batch in group-commit mode).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// What recovery found on disk.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Current WAL size in bytes (tests assert bounded growth).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Read access to the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Makes the inner protocol's recent events durable. Called after
    /// every handler invocation. In plain mode the records are fsynced
    /// here, before the handler's outputs are released; in group-commit
    /// mode they are only appended, and [`DurableProtocol::sync_and_seal`]
    /// (driven by `flush_durable`) performs the batch's single fsync.
    ///
    /// # Panics
    ///
    /// On WAL I/O errors: a replica that cannot persist its log must
    /// not keep emitting messages, or a later restart could contradict
    /// what it already told the cluster.
    fn persist(&mut self) {
        let events = self.inner.drain_durable_events();
        if events.is_empty() {
            return;
        }
        let mut new_stable: Option<SeqNum> = None;
        for event in &events {
            self.wal.append(&encode(event)).expect("WAL append failed — cannot continue durably");
            if let DurableEvent::StableCheckpoint { seq } = event {
                new_stable = Some(new_stable.map_or(*seq, |s| s.max(*seq)));
            }
        }
        self.dirty = true;
        self.tail.extend(events);
        if let Some(stable) = new_stable {
            self.pending_stable =
                Some(self.pending_stable.map_or(stable, |s: SeqNum| s.max(stable)));
        }
        if !self.group_commit {
            self.sync_and_seal();
        }
    }

    /// Forces appended records to disk (one fsync) and seals/GCs any
    /// checkpoint that stabilized since the last sync. Sealing happens
    /// strictly *after* the fsync so a sealed checkpoint never claims
    /// events the log could still lose.
    fn sync_and_seal(&mut self) {
        if self.dirty {
            self.wal.sync().expect("WAL fsync failed — cannot continue durably");
            self.fsyncs += 1;
            self.dirty = false;
        }
        if let Some(stable) = self.pending_stable.take() {
            if stable.0 > self.sealed_seq {
                self.seal_and_gc();
            }
        }
    }

    /// Handler epilogue: persist the call's events, then either release
    /// its outputs (plain mode — they are durable now) or withhold them
    /// until the batch's group-commit fsync.
    fn finish(
        &mut self,
        outputs: Vec<ProtocolOutput<P::Message>>,
    ) -> Vec<ProtocolOutput<P::Message>> {
        self.persist();
        if self.group_commit {
            self.withheld.extend(outputs);
            Vec::new()
        } else {
            outputs
        }
    }

    /// Seals the inner protocol's current stable checkpoint and GCs the
    /// WAL past it. Seal failures are non-fatal: the WAL still holds
    /// everything, it just does not shrink this round.
    fn seal_and_gc(&mut self) {
        let Some(cp) = self.inner.durable_checkpoint() else { return };
        if cp.seq.0 <= self.sealed_seq {
            return;
        }
        match self.checkpoints.save(&cp) {
            Ok(_) => {
                self.sealed_seq = cp.seq.0;
                self.seals += 1;
                self.gc(cp.seq);
            }
            Err(e) => {
                eprintln!("splitbft-store: sealing checkpoint {} failed: {e}", cp.seq.0);
            }
        }
    }

    /// Rewrites the WAL with only the records still needed beyond
    /// `stable`: per-slot events above it, plus one summary each of the
    /// latest view and the highest issued counter (whose originals may
    /// predate the checkpoint but remain replay-relevant).
    fn gc(&mut self, stable: SeqNum) {
        let old = std::mem::take(&mut self.tail);
        let mut latest_view = None;
        let mut max_counter = 0u64;
        let mut kept = Vec::new();
        for event in old {
            match event {
                DurableEvent::Accepted { seq, .. } | DurableEvent::Committed { seq, .. }
                    if seq <= stable => {}
                DurableEvent::EnteredView { view } => {
                    latest_view = Some(latest_view.map_or(view, |v: splitbft_types::View| v.max(view)));
                }
                DurableEvent::CounterIssued { counter } => max_counter = max_counter.max(counter),
                DurableEvent::StableCheckpoint { .. } => {}
                other => kept.push(other),
            }
        }
        let mut tail = Vec::new();
        if max_counter > 0 {
            tail.push(DurableEvent::CounterIssued { counter: max_counter });
        }
        if let Some(view) = latest_view {
            tail.push(DurableEvent::EnteredView { view });
        }
        tail.extend(kept);
        let encoded: Vec<Vec<u8>> = tail.iter().map(encode).collect();
        match self.wal.rewrite(encoded.iter().map(Vec::as_slice)) {
            Ok(()) => self.tail = tail,
            Err(e) => {
                // Non-fatal: the un-GC'd log is merely larger.
                eprintln!("splitbft-store: WAL GC rewrite failed: {e}");
                self.tail = tail;
            }
        }
    }
}

impl<P: Protocol> Protocol for DurableProtocol<P> {
    type Message = P::Message;

    fn on_message(&mut self, msg: Self::Message) -> Vec<ProtocolOutput<Self::Message>> {
        let outputs = self.inner.on_message(msg);
        self.finish(outputs)
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<ProtocolOutput<Self::Message>> {
        let outputs = self.inner.on_client_requests(requests);
        self.finish(outputs)
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        let outputs = self.inner.on_timeout();
        self.finish(outputs)
    }

    fn progress(&self) -> u64 {
        self.inner.progress()
    }

    fn has_pending_requests(&self) -> bool {
        self.inner.has_pending_requests()
    }

    fn current_view(&self) -> u64 {
        self.inner.current_view()
    }

    fn pending_request_count(&self) -> u64 {
        self.inner.pending_request_count()
    }

    fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    fn checkpoint_seal_count(&self) -> u64 {
        self.seals
    }

    fn shard_views(&self) -> Vec<u64> {
        self.inner.shard_views()
    }

    fn drain_seal(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        let outputs = self.inner.drain_seal();
        // Even without a newly stabilized checkpoint, a drain wants the
        // latest durable one sealed and the log compacted, so a restart
        // after the drain replays as little WAL as possible.
        self.persist();
        self.sync_and_seal();
        self.seal_and_gc();
        self.finish(outputs)
    }

    // The wrapper consumes the inner protocol's durable events itself,
    // so it deliberately presents *no* durable events of its own
    // (`drain_durable_events` keeps the empty default): stacking two
    // DurableProtocols must not double-log.

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        self.inner.durable_checkpoint()
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        // The peer state-transfer path: make the restored state durable
        // immediately, so a crash right after catch-up does not repeat
        // the whole transfer. Synced eagerly even in group-commit mode —
        // the sealed copy written below must never outrun the log.
        self.inner.restore_checkpoint(cp)?;
        self.persist();
        self.sync_and_seal();
        if cp.seq.0 > self.sealed_seq {
            match self.checkpoints.save(cp) {
                Ok(_) => {
                    self.sealed_seq = cp.seq.0;
                    self.seals += 1;
                    self.gc(cp.seq);
                }
                Err(e) => eprintln!(
                    "splitbft-store: sealing transferred checkpoint {} failed: {e}",
                    cp.seq.0
                ),
            }
        }
        Ok(())
    }

    fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<Self::Message> {
        self.inner.catch_up_messages(have_seq)
    }

    fn flush_durable(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        self.sync_and_seal();
        let mut released = std::mem::take(&mut self.withheld);
        // An inner protocol stack may itself withhold (stacked durable
        // wrappers are prevented from double-*logging* but not from
        // forwarding the hook).
        released.extend(self.inner.flush_durable());
        released
    }

    fn durable_fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

impl<P: Protocol> std::fmt::Debug for DurableProtocol<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableProtocol")
            .field("sealed_seq", &self.sealed_seq)
            .field("wal_len", &self.wal.len())
            .field("tail_events", &self.tail.len())
            .finish_non_exhaustive()
    }
}
