//! The append-only write-ahead log.
//!
//! One file per replica (`wal.log` under its data directory) holding a
//! sequence of checksummed records, each one canonically-encoded
//! [`splitbft_types::DurableEvent`] bytes. The format is designed for
//! exactly one failure mode: a crash (or `SIGKILL`) mid-write leaves a
//! *torn tail* — a final record that is truncated or corrupt. Recovery
//! keeps the longest valid prefix and truncates the rest; it never
//! panics on garbage.
//!
//! # Record format
//!
//! ```text
//! offset  size  field     contents
//! 0       1     magic     0xD7 — resync / sanity byte
//! 1       4     length    payload byte count, u32 little-endian
//! 5       4     crc32     IEEE CRC-32 of the payload
//! 9       len   payload   opaque record bytes
//! ```
//!
//! Growth is bounded by the sealed-checkpoint garbage collector in
//! [`crate::durable`]: whenever a checkpoint is sealed, the log is
//! atomically rewritten with only the records still needed beyond it.
//!
//! # Example: record framing and torn-tail recovery
//!
//! [`encode_record`] frames a payload; [`scan`] recovers the longest
//! valid prefix of a raw log image, treating anything after it —
//! including a record cut mid-write — as the torn tail to truncate:
//!
//! ```
//! use splitbft_store::wal::{crc32, encode_record, scan, RECORD_HEADER_LEN, RECORD_MAGIC};
//!
//! let record = encode_record(b"committed slot 7");
//! assert_eq!(record[0], RECORD_MAGIC);
//! assert_eq!(record.len(), RECORD_HEADER_LEN + 16);
//! assert_eq!(
//!     u32::from_le_bytes(record[5..9].try_into().unwrap()),
//!     crc32(b"committed slot 7"),
//! );
//!
//! // Two intact records followed by a crash mid-append…
//! let mut image = encode_record(b"first");
//! image.extend(encode_record(b"second"));
//! image.extend(&encode_record(b"torn")[..7]); // header cut short
//!
//! // …recover exactly the intact prefix; the tail is corruption.
//! let (records, valid_len) = scan(&image);
//! assert_eq!(records, vec![b"first".to_vec(), b"second".to_vec()]);
//! assert_eq!(valid_len, image.len() - 7);
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First byte of every record.
pub const RECORD_MAGIC: u8 = 0xD7;

/// Fixed bytes before each record's payload: magic (1) + length (4) +
/// crc32 (4).
pub const RECORD_HEADER_LEN: usize = 9;

/// Upper bound on a single record's payload. Recovery treats a larger
/// declared length as corruption (it would exceed anything the codec
/// can legally produce, see `MAX_FRAME_LEN`) rather than allocating it.
pub const MAX_RECORD_LEN: u32 = 32 * 1024 * 1024;

/// IEEE CRC-32 (the polynomial used by zlib/PNG/Ethernet), computed
/// bitwise per byte with the reflected polynomial. The WAL writes few,
/// small records per flush, so a lookup table would buy nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames one payload as a WAL record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD_LEN as usize, "WAL record too large");
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.push(RECORD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans a raw WAL image and returns `(records, valid_len)`: the
/// payloads of every valid record in order, and the byte length of the
/// valid prefix. Anything after `valid_len` — a torn final record, a
/// flipped bit, appended garbage — is corruption to be truncated away.
/// Never panics on hostile input.
pub fn scan(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER_LEN {
        let header = &bytes[pos..pos + RECORD_HEADER_LEN];
        if header[0] != RECORD_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN as usize || bytes.len() - pos - RECORD_HEADER_LEN < len {
            break; // corrupt length or torn tail
        }
        let expected_crc = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        let payload = &bytes[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        if crc32(payload) != expected_crc {
            break; // bit rot or torn overwrite
        }
        records.push(payload.to_vec());
        pos += RECORD_HEADER_LEN + len;
    }
    (records, pos)
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, recovering its
    /// contents: the longest valid record prefix is returned and any
    /// torn tail is truncated off the file before new appends.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = scan(&bytes);
        if (valid_len as u64) < bytes.len() as u64 {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok((Wal { file, path: path.to_path_buf(), len: valid_len as u64 }, records))
    }

    /// Appends one record. Not durable until [`Wal::sync`] returns.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let record = encode_record(payload);
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically replaces the log's contents with `records` — the
    /// garbage-collection primitive. A new file is written and synced
    /// next to the old one, then renamed over it, so a crash during GC
    /// leaves either the old or the new log, never a mix.
    pub fn rewrite<'a>(&mut self, records: impl Iterator<Item = &'a [u8]>) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        let mut out = File::create(&tmp)?;
        let mut len = 0u64;
        for payload in records {
            let record = encode_record(payload);
            out.write_all(&record)?;
            len += record.len() as u64;
        }
        out.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.len = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "splitbft-wal-{}-{}",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = tmp("roundtrip");
        {
            let (mut wal, records) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(&[0u8; 1000]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec(), vec![0u8; 1000]]);
        assert_eq!(wal.len(), std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let path = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"intact").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let half = &encode_record(b"torn record")[..7];
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(half);
        std::fs::write(&path, &bytes).unwrap();

        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"intact".to_vec()]);
        // The torn tail is gone from the file, and appends continue.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), wal.len());
        drop(wal);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"intact".to_vec(), b"after".to_vec()]);
    }

    #[test]
    fn bit_flip_truncates_from_the_flip() {
        let path = tmp("flip");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload_at = bytes.len() - 3;
        bytes[second_payload_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"first".to_vec()]);
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmp("rewrite");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for i in 0..100u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let big = wal.len();

        let keep: Vec<Vec<u8>> = (90..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        wal.rewrite(keep.iter().map(Vec::as_slice)).unwrap();
        assert!(wal.len() < big);

        // Appends after a rewrite land after the kept records.
        wal.append(b"new").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 11);
        assert_eq!(records[0], 90u32.to_le_bytes().to_vec());
        assert_eq!(records[10], b"new".to_vec());
    }

    #[test]
    fn scan_survives_garbage() {
        // Pure garbage, hostile lengths, empty input: no panic, no
        // records.
        assert_eq!(scan(&[]).0.len(), 0);
        assert_eq!(scan(&[0xFF; 64]).0.len(), 0);
        let mut bomb = vec![RECORD_MAGIC];
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        bomb.extend_from_slice(&[0u8; 4]);
        let (records, valid) = scan(&bomb);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }
}
