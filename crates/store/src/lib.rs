//! The durability plane: durable replica state, sealed checkpoints, and
//! crash recovery for every protocol in the workspace.
//!
//! The paper's replicas persist compartment secrets and checkpoints
//! through TEE sealing so a compromised-then-restarted cloud node can
//! recover without trusting its host (§4). This crate is that plane for
//! the deployed socket clusters:
//!
//! - [`wal`] — an append-only write-ahead log with per-record CRC-32
//!   checksums and torn-tail truncation on recovery. Consensus events
//!   ([`splitbft_types::DurableEvent`]) are fsynced *before* the
//!   outputs they justify reach the network.
//! - [`sealed`] — checkpoint snapshots serialized with the wire codec
//!   and sealed with [`splitbft_tee::seal`] under the replica's
//!   measurement; they bound WAL growth (the log is GC'd past each
//!   sealed stable checkpoint) and corrupt files degrade to typed
//!   errors, never panics.
//! - [`durable`] — [`DurableProtocol`], the wrapper that adds all of
//!   the above to any [`splitbft_net::transport::Protocol`], plus
//!   [`DurableProtocol::recover`], the restart path.
//!
//! What local state cannot cover — everything after the crash — is
//! fetched from `f + 1` agreeing peers by the `STATE_TRANSFER` client
//! built into `splitbft-net`'s TCP runtime; this crate's job is to make
//! the local prefix cheap and the trusted-counter state (the hybrid's
//! USIG) survive, which no peer can supply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod sealed;
pub mod wal;

pub use durable::{DurableProtocol, RecoveryReport};
pub use sealed::{replica_sealing_identity, CheckpointStore};
pub use wal::Wal;
