//! A comment-aware Rust line counter — our substitute for the `tokei`
//! analysis behind the paper's Table 2 ("we analyze our software in terms
//! of lines of code").

use std::path::{Path, PathBuf};

/// Line counts for one source set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocCount {
    /// Code lines (non-blank, non-comment).
    pub code: usize,
    /// Comment lines (`//` and `/* */`, including doc comments).
    pub comments: usize,
    /// Blank lines.
    pub blank: usize,
    /// Files counted.
    pub files: usize,
}

impl LocCount {
    /// Merges another count into this one.
    pub fn add(&mut self, other: LocCount) {
        self.code += other.code;
        self.comments += other.comments;
        self.blank += other.blank;
        self.files += other.files;
    }
}

/// Counts one Rust source string.
pub fn count_source(source: &str) -> LocCount {
    let mut count = LocCount { files: 1, ..Default::default() };
    let mut in_block_comment = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if in_block_comment {
            count.comments += 1;
            if trimmed.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.is_empty() {
            count.blank += 1;
        } else if trimmed.starts_with("//") {
            count.comments += 1;
        } else if trimmed.starts_with("/*") {
            count.comments += 1;
            if !trimmed.contains("*/") {
                in_block_comment = true;
            }
        } else {
            count.code += 1;
        }
    }
    count
}

/// Counts a single `.rs` file.
pub fn count_file(path: &Path) -> std::io::Result<LocCount> {
    Ok(count_source(&std::fs::read_to_string(path)?))
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in std::fs::read_dir(path)? {
        let entry = entry?;
        collect_rs_files(&entry.path(), out)?;
    }
    Ok(())
}

/// Counts every `.rs` file under each of `paths` (files or directories),
/// relative to `root`.
pub fn count_paths(root: &Path, paths: &[&str]) -> std::io::Result<LocCount> {
    let mut total = LocCount::default();
    for rel in paths {
        let mut files = Vec::new();
        collect_rs_files(&root.join(rel), &mut files)?;
        for f in files {
            total.add(count_file(&f)?);
        }
    }
    Ok(total)
}

/// Locates the workspace root from the compiled crate's manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).expect("crates/bench has a workspace root").to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_comments_and_blanks() {
        let src = "\
// a comment
fn main() {

    /* block
       comment */
    let x = 1; // trailing comments count as code lines
}
";
        let c = count_source(src);
        assert_eq!(c.code, 3, "{c:?}"); // fn, let, closing brace
        assert_eq!(c.comments, 3);
        assert_eq!(c.blank, 1);
    }

    #[test]
    fn counts_real_workspace_files() {
        let root = workspace_root();
        let c = count_paths(&root, &["crates/types/src"]).unwrap();
        assert!(c.files >= 7, "found {} files", c.files);
        assert!(c.code > 500, "counted {} code lines", c.code);
        assert!(c.comments > 100);
    }
}
