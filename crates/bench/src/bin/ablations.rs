//! Ablations beyond the paper's headline figures: batch-size and
//! checkpoint-interval sweeps, and the transition-overhead decomposition
//! ("enclave transitions cause 20% of the overhead").

use splitbft_bench::{print_row, print_sep};
use splitbft_sim::{run_point, AppKind, SimConfig, SystemKind};
use splitbft_types::BatchConfig;

fn main() {
    batch_sweep();
    transition_decomposition();
    blockchain_block_cost();
}

fn batch_sweep() {
    println!("Ablation A — batch size sweep (SplitBFT KVS, 80 clients, 40 outstanding)\n");
    let widths = [12, 12, 12];
    print_row(&["Batch size".into(), "Tput op/s".into(), "Latency ms".into()], &widths);
    print_sep(&widths);
    for batch in [1usize, 10, 50, 100, 200, 400] {
        let mut cfg = SimConfig::batched(SystemKind::SplitBft, AppKind::Kvs, 80);
        cfg.batch = BatchConfig { max_batch: batch, timeout_us: 10_000 };
        cfg.duration_ns = 250_000_000;
        cfg.warmup_ns = 60_000_000;
        let r = run_point(&cfg);
        print_row(
            &[
                batch.to_string(),
                format!("{:.0}", r.throughput_ops),
                format!("{:.2}", r.mean_latency_ms),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: throughput rises steeply with batch size and");
    println!("flattens once the per-batch Preparation ecall dominates.\n");
}

fn transition_decomposition() {
    println!("Ablation B — enclave-transition share of the overhead (KVS, 150 clients)\n");
    let pbft = run_point(&SimConfig::unbatched(SystemKind::Pbft, AppKind::Kvs, 150));
    let hw = run_point(&SimConfig::unbatched(SystemKind::SplitBft, AppKind::Kvs, 150));
    let sim = run_point(&SimConfig::unbatched(SystemKind::SplitBftSimMode, AppKind::Kvs, 150));

    println!("  PBFT:                 {:.0} op/s", pbft.throughput_ops);
    println!("  SplitBFT (hardware):  {:.0} op/s", hw.throughput_ops);
    println!("  SplitBFT (sim mode):  {:.0} op/s", sim.throughput_ops);
    let overhead_hw = pbft.throughput_ops - hw.throughput_ops;
    let recovered = sim.throughput_ops - hw.throughput_ops;
    if overhead_hw > 0.0 {
        println!(
            "\n  Transitions account for {:.0}% of the SplitBFT overhead \
             (paper: ≈20%).\n",
            100.0 * recovered / overhead_hw
        );
    }
}

fn blockchain_block_cost() {
    println!("Ablation C — blockchain vs KVS gap (batched, 80 clients)\n");
    let kvs = run_point(&SimConfig::batched(SystemKind::SplitBft, AppKind::Kvs, 80));
    let chain = run_point(&SimConfig::batched(SystemKind::SplitBft, AppKind::Blockchain, 80));
    println!("  SplitBFT KVS:        {:.0} op/s", kvs.throughput_ops);
    println!("  SplitBFT blockchain: {:.0} op/s", chain.throughput_ops);
    println!(
        "  KVS / blockchain = {:.1}x (paper: up to 4.6x — one sealed-block \
         ocall per 5 requests vs one ocall per batch)",
        kvs.throughput_ops / chain.throughput_ops.max(1.0)
    );
}
