//! Regenerates **Table 2**: TCB sizes (lines of code) for the shared
//! types, each enclave's unique logic, the untrusted environment, and the
//! trusted counter — computed over *this repository* with the built-in
//! comment-aware counter (the paper uses `tokei`).

use splitbft_bench::loc::{count_paths, workspace_root, LocCount};
use splitbft_bench::{print_row, print_sep};

fn main() {
    let root = workspace_root();
    let count = |paths: &[&str]| -> LocCount {
        count_paths(&root, paths).expect("workspace sources readable")
    };

    // Shared in-enclave code: type definitions, wire codec, crypto, and
    // the protocol data structures (logs, certificates, verification)
    // that all compartments link against.
    let shared = {
        let mut c = count(&["crates/types/src", "crates/crypto/src"]);
        c.add(count(&[
            "crates/pbft/src/log.rs",
            "crates/pbft/src/checkpoint.rs",
            "crates/pbft/src/viewchange.rs",
            "crates/pbft/src/verify.rs",
        ]));
        c
    };
    let prep = count(&["crates/core/src/prep.rs"]);
    let conf = count(&["crates/core/src/conf.rs"]);
    // The Execution enclave's logic includes the hosted application (the
    // paper: "the LOC of the execution enclave includes the key-value
    // store").
    let exec = {
        let mut c = count(&["crates/core/src/exec.rs"]);
        c.add(count(&["crates/app/src"]));
        c
    };
    let untrusted = count(&[
        "crates/core/src/replica.rs",
        "crates/core/src/adapter.rs",
        "crates/core/src/ecall.rs",
        "crates/net/src",
        "crates/pbft/src/batcher.rs",
    ]);
    let counter = count(&["crates/hybrid/src/usig.rs"]);

    println!("Table 2 — TCB sizes of this reproduction (code lines, comments excluded)");
    println!("(paper reports: Prep 2917, Conf 2888, Exec 3009, untrusted 12565, counter 439)\n");

    let widths = [20, 14, 12, 12, 8];
    print_row(
        &["Component".into(), "Shared types".into(), "Logic".into(), "Total LOC".into(), "Files".into()],
        &widths,
    );
    print_sep(&widths);
    let row = |name: &str, logic: LocCount, with_shared: bool| {
        let shared_code = if with_shared { shared.code } else { 0 };
        print_row(
            &[
                name.into(),
                if with_shared { shared_code.to_string() } else { "—".into() },
                logic.code.to_string(),
                (shared_code + logic.code).to_string(),
                logic.files.to_string(),
            ],
            &widths,
        );
    };
    row("Preparation Enc.", prep, true);
    row("Confirmation Enc.", conf, true);
    row("Execution Enc.", exec, true);
    row("Untrusted Env.", untrusted, false);
    row("Trusted Counter", counter, false);

    println!();
    println!(
        "Shared in-enclave code: {} code lines across {} files \
         (types, wire codec, crypto, protocol structures).",
        shared.code, shared.files
    );
    println!(
        "Observation matching the paper: each individual enclave is far \
         smaller than the whole application — the attack surface per \
         compartment shrinks accordingly."
    );
}
