//! Regenerates **Table 1**: the fault-model comparison of PBFT, hybrid
//! protocols, and SplitBFT — by *running* each system under each attacker
//! configuration and reporting the observed safety/progress verdicts next
//! to the paper's claims.

use splitbft_bench::{print_row, print_sep};
use splitbft_model::{run_scenario, Scenario};

fn main() {
    println!("Table 1 — Fault models, observed experimentally");
    println!("(paper: Messadi et al., MIDDLEWARE 2022, Table 1)\n");

    println!("Static protocol parameters:");
    let widths = [14, 10, 7, 12, 22];
    print_row(
        &["Work".into(), "#Replicas".into(), "TEE".into(), "Faulty TEE".into(), "Integrity claim".into()],
        &widths,
    );
    print_sep(&widths);
    print_row(
        &["PBFT".into(), "3f + 1".into(), "no".into(), "-".into(), "f byzantine replicas".into()],
        &widths,
    );
    print_row(
        &["Hybrid".into(), "2f + 1".into(), "yes".into(), "crash only".into(), "f byzantine hosts".into()],
        &widths,
    );
    print_row(
        &[
            "SplitBFT".into(),
            "3f + 1".into(),
            "yes".into(),
            "byzantine".into(),
            "f per compartment + n hosts".into(),
        ],
        &widths,
    );

    println!("\nScenario outcomes (safety = agreement among correct replicas):");
    let widths = [52, 10, 10, 10];
    print_row(
        &["Scenario".into(), "Expected".into(), "Observed".into(), "Progress".into()],
        &widths,
    );
    print_sep(&widths);

    let mut all_match = true;
    for scenario in Scenario::ALL {
        let verdict = run_scenario(scenario, 42);
        let expected = if scenario.expected_safe() { "SAFE" } else { "VIOLATED" };
        let observed = if verdict.safety_held { "SAFE" } else { "VIOLATED" };
        all_match &= verdict.safety_held == scenario.expected_safe();
        print_row(
            &[
                scenario.describe().into(),
                expected.into(),
                observed.into(),
                if verdict.made_progress { "yes" } else { "no" }.into(),
            ],
            &widths,
        );
    }
    println!();
    if all_match {
        println!("All observed verdicts match the paper's fault-model claims.");
    } else {
        println!("MISMATCH: at least one verdict deviates from the paper's claims!");
    }
    println!();
    println!("Liveness note: all three systems tolerate up to f fully-faulty");
    println!("replicas liveness-wise; SplitBFT additionally separates liveness");
    println!("from safety — hostile environments can stall it but never make");
    println!("correct enclaves diverge (SplitBftHostileEnvironments row).");
}
