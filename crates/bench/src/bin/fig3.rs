//! Regenerates **Figure 3**: throughput and latency versus the number of
//! closed-loop clients, for SplitBFT and PBFT on the key-value store and
//! blockchain applications.
//!
//! `--mode unbatched` reproduces Figure 3(a) — including the "SplitBFT
//! Simulation" (SGX simulation mode) and "SplitBFT Single Thread" series;
//! `--mode batched` reproduces Figure 3(b) (batch = 200 requests or
//! 10 ms, 40 outstanding requests per client).

use splitbft_bench::{print_row, print_sep};
use splitbft_sim::{run_point, AppKind, SimConfig, SystemKind};

fn series(mode: &str) -> Vec<(&'static str, SystemKind, AppKind)> {
    let mut s = vec![
        ("SplitBFT KVS", SystemKind::SplitBft, AppKind::Kvs),
        ("PBFT KVS", SystemKind::Pbft, AppKind::Kvs),
    ];
    if mode == "unbatched" {
        s.push(("SplitBFT KVS Simulation", SystemKind::SplitBftSimMode, AppKind::Kvs));
        s.push(("SplitBFT KVS Single Thread", SystemKind::SplitBftSingleThread, AppKind::Kvs));
    }
    s.push(("SplitBFT Blockchain", SystemKind::SplitBft, AppKind::Blockchain));
    s.push(("PBFT Blockchain", SystemKind::Pbft, AppKind::Blockchain));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("unbatched")
        .to_string();
    let quick = args.iter().any(|a| a == "--quick");

    let clients: Vec<usize> = if quick {
        vec![10, 40, 80, 150]
    } else {
        vec![1, 10, 20, 40, 60, 80, 100, 120, 150]
    };

    println!(
        "Figure 3({}) — throughput (op/s) and mean latency (ms) vs number of clients",
        if mode == "batched" { "b" } else { "a" }
    );
    println!("4 replicas, 10-byte payloads, closed-loop clients; virtual time.\n");

    let widths = [28, 9, 12, 12];
    print_row(
        &["Series".into(), "Clients".into(), "Tput op/s".into(), "Latency ms".into()],
        &widths,
    );
    print_sep(&widths);

    for (label, system, app) in series(&mode) {
        for &c in &clients {
            let cfg = if mode == "batched" {
                let mut cfg = SimConfig::batched(system, app, c);
                if quick {
                    cfg.duration_ns = 200_000_000;
                    cfg.warmup_ns = 50_000_000;
                }
                cfg
            } else {
                let mut cfg = SimConfig::unbatched(system, app, c);
                if quick {
                    cfg.duration_ns = 200_000_000;
                    cfg.warmup_ns = 50_000_000;
                }
                cfg
            };
            let r = run_point(&cfg);
            print_row(
                &[
                    label.into(),
                    c.to_string(),
                    format!("{:.0}", r.throughput_ops),
                    format!("{:.2}", r.mean_latency_ms),
                ],
                &widths,
            );
        }
        print_sep(&widths);
    }

    println!();
    println!("Shape checks against the paper:");
    println!("  - PBFT outperforms SplitBFT (paper: SplitBFT reaches 43–74% of PBFT");
    println!("    unbatched, ~64% batched for the KVS);");
    println!("  - the KVS outperforms the blockchain application (extra sealed-block");
    println!("    I/O in the Execution enclave);");
    println!("  - single-threaded ecall dispatch degrades SplitBFT markedly;");
    println!("  - simulation mode (free transitions) recovers part of the gap.");
}
