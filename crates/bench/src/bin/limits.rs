//! Regenerates the paper's §6 upper-bound analysis: "All ecalls sum up to
//! 841 µs. Thus, if a single thread is performing all ecalls, a maximum
//! throughput of ≈1190 rps could be reached. ... ecalls to the Execution
//! compartment have the longest latency, with a total of 343 µs. That
//! thread thus cannot process more than 2900 rps." — closed-form caps
//! from the measured ecall profile, printed next to the measured
//! saturated throughput.

use splitbft_sim::{run_point, AppKind, SimConfig, SystemKind};

fn main() {
    println!("§6 analysis — theoretical ecall-bound throughput caps vs measured\n");

    let profile_run = run_point(&SimConfig::unbatched(SystemKind::SplitBft, AppKind::Kvs, 40));
    let [p, c, e] = profile_run.ecall_us_per_request;
    let sum = p + c + e;
    let single_cap = 1e6 / sum;
    let exec_cap = 1e6 / e.max(p).max(c);

    println!("Leader ecall profile per request: prep {p:.0} µs, conf {c:.0} µs, exec {e:.0} µs");
    println!("Sum of all ecalls: {sum:.0} µs (paper: 841 µs)\n");

    println!("Single-thread cap  = 1e6 / {sum:.0}  = {single_cap:.0} rps (paper: ≈1190 rps)");
    println!("Slowest-enclave cap = 1e6 / {:.0}  = {exec_cap:.0} rps (paper: ≈2900 rps)\n", e.max(p).max(c));

    let single = run_point(&SimConfig::unbatched(SystemKind::SplitBftSingleThread, AppKind::Kvs, 150));
    let multi = run_point(&SimConfig::unbatched(SystemKind::SplitBft, AppKind::Kvs, 150));
    println!("Measured at saturation (150 clients):");
    println!(
        "  SplitBFT single thread: {:.0} op/s ({}% of its cap)",
        single.throughput_ops,
        (100.0 * single.throughput_ops / single_cap) as u32
    );
    println!(
        "  SplitBFT multithreaded: {:.0} op/s ({}% of the slowest-enclave cap)",
        multi.throughput_ops,
        (100.0 * multi.throughput_ops / exec_cap) as u32
    );
    println!();
    println!("The paper's observation — measured throughput approaches the");
    println!("theoretical ecall-bound limits — is reproduced when the measured");
    println!("percentages are close to 100.");
}
