//! Regenerates **Figure 4**: the average ecall latency per compartment
//! while processing one request (unbatched) or one batch (batched) on the
//! leader, with 40 clients on the key-value store.

use splitbft_bench::{print_row, print_sep};
use splitbft_sim::{run_point, AppKind, SimConfig, SystemKind};

fn main() {
    println!("Figure 4 — average leader-side ecall time per compartment (KVS, 40 clients)");
    println!("(paper: unbatched ecalls sum to 841 µs with Execution longest at 343 µs;");
    println!(" batched Preparation is longest at ≈0.9 ms per 200-request batch)\n");

    let unbatched = run_point(&SimConfig::unbatched(SystemKind::SplitBft, AppKind::Kvs, 40));
    let batched = run_point(&SimConfig::batched(SystemKind::SplitBft, AppKind::Kvs, 40));

    let widths = [14, 14, 12, 12, 10];
    print_row(
        &[
            "Mode".into(),
            "Preparation".into(),
            "Commit".into(),
            "Execution".into(),
            "Sum (µs)".into(),
        ],
        &widths,
    );
    print_sep(&widths);

    let [p, c, e] = unbatched.ecall_us_per_request;
    print_row(
        &[
            "Not batched".into(),
            format!("{p:.0} µs"),
            format!("{c:.0} µs"),
            format!("{e:.0} µs"),
            format!("{:.0}", p + c + e),
        ],
        &widths,
    );
    let [pb, cb, eb] = batched.ecall_us_per_batch;
    print_row(
        &[
            "Batched".into(),
            format!("{pb:.0} µs"),
            format!("{cb:.0} µs"),
            format!("{eb:.0} µs"),
            format!("{:.0}", pb + cb + eb),
        ],
        &widths,
    );

    println!();
    println!("Shape checks against the paper:");
    println!(
        "  - unbatched: Execution has the longest ecall total ({})",
        if e >= p && e >= c * 0.9 { "reproduced" } else { "NOT reproduced" }
    );
    println!(
        "  - batched: Preparation becomes the longest ({}) — it authenticates",
        if pb >= cb && pb >= eb { "reproduced" } else { "NOT reproduced" }
    );
    println!("    every client request of the batch inside the enclave;");
    println!(
        "  - Confirmation is batch-size independent ({}) — it only handles",
        if (cb - c).abs() <= c * 0.5 { "reproduced" } else { "NOT reproduced" }
    );
    println!("    a hash of the request batch.");
}
