//! Shared infrastructure for the benchmark harness: the LOC analyzer
//! behind Table 2 and small table-printing helpers.
//!
//! Each table/figure of the paper has a dedicated binary:
//!
//! | target | regenerates |
//! |---|---|
//! | `cargo run -p splitbft-bench --bin table1` | Table 1 (fault-model comparison) |
//! | `cargo run -p splitbft-bench --bin table2` | Table 2 (TCB sizes) |
//! | `cargo run -p splitbft-bench --bin fig3 -- --mode unbatched` | Figure 3(a) |
//! | `cargo run -p splitbft-bench --bin fig3 -- --mode batched` | Figure 3(b) |
//! | `cargo run -p splitbft-bench --bin fig4` | Figure 4 (ecall latencies) |
//! | `cargo run -p splitbft-bench --bin limits` | §6 throughput upper-bound analysis |
//! | `cargo run -p splitbft-bench --bin ablations` | batch-size & checkpoint-interval sweeps |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loc;

/// Prints a row of cells padded to the given widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect();
    println!("| {} |", line.join(" | "));
}

/// Prints a separator row.
pub fn print_sep(widths: &[usize]) {
    let line: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", line.join("-|-"));
}
