//! End-to-end protocol microbenchmarks: one full agreement round
//! (request → consensus → execution on all replicas) in real time, for
//! both SplitBFT and the PBFT baseline, unbatched and batched.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use splitbft_app::CounterApp;
use splitbft_core::{ReplicaEvent, SplitBftReplica};
use splitbft_pbft::{make_request, Action, Replica as PbftReplica};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{ClientId, ClusterConfig, ConsensusMessage, ReplicaId, Request, Timestamp};
use std::collections::VecDeque;

const SEED: u64 = 99;

fn requests(n: u64, start: u64) -> Vec<Request> {
    (0..n)
        .map(|i| make_request(SEED, ClientId(0), Timestamp(start + i), Bytes::from_static(b"inc")))
        .collect()
}

fn splitbft_cluster() -> Vec<SplitBftReplica<CounterApp>> {
    let cfg = ClusterConfig::new(4).unwrap();
    (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                cfg.clone(),
                ReplicaId(i),
                SEED,
                CounterApp::new(),
                ExecMode::Hardware,
                CostModel::paper_calibrated(),
            )
        })
        .collect()
}

fn pbft_cluster() -> Vec<PbftReplica<CounterApp>> {
    let cfg = ClusterConfig::new(4).unwrap();
    (0..4u32)
        .map(|i| PbftReplica::new(cfg.clone(), ReplicaId(i), SEED, CounterApp::new()))
        .collect()
}

fn pump_splitbft(replicas: &mut [SplitBftReplica<CounterApp>], reqs: Vec<Request>) -> usize {
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    let mut replies = 0usize;
    let events = replicas[0].on_client_batch(reqs);
    let route = |from: usize, events: Vec<ReplicaEvent>, queues: &mut Vec<VecDeque<ConsensusMessage>>, replies: &mut usize| {
        for e in events {
            match e {
                ReplicaEvent::Broadcast(m) => {
                    for (to, q) in queues.iter_mut().enumerate() {
                        if to != from {
                            q.push_back(m.clone());
                        }
                    }
                }
                ReplicaEvent::Reply { .. } => *replies += 1,
                _ => {}
            }
        }
    };
    route(0, events, &mut queues, &mut replies);
    loop {
        let mut progressed = false;
        for i in 0..4 {
            while let Some(m) = queues[i].pop_front() {
                progressed = true;
                let events = replicas[i].on_network_message(m);
                route(i, events, &mut queues, &mut replies);
            }
        }
        if !progressed {
            break;
        }
    }
    replies
}

fn pump_pbft(replicas: &mut [PbftReplica<CounterApp>], reqs: Vec<Request>) -> usize {
    let mut queues: Vec<VecDeque<ConsensusMessage>> = (0..4).map(|_| VecDeque::new()).collect();
    let mut replies = 0usize;
    let actions = replicas[0].on_client_batch(reqs);
    let route = |from: usize, actions: Vec<Action>, queues: &mut Vec<VecDeque<ConsensusMessage>>, replies: &mut usize| {
        for a in actions {
            match a {
                Action::Broadcast { msg } => {
                    for (to, q) in queues.iter_mut().enumerate() {
                        if to != from {
                            q.push_back(msg.clone());
                        }
                    }
                }
                Action::SendReply { .. } => *replies += 1,
                _ => {}
            }
        }
    };
    route(0, actions, &mut queues, &mut replies);
    loop {
        let mut progressed = false;
        for i in 0..4 {
            while let Some(m) = queues[i].pop_front() {
                progressed = true;
                let actions = replicas[i].on_message(m).unwrap_or_default();
                route(i, actions, &mut queues, &mut replies);
            }
        }
        if !progressed {
            break;
        }
    }
    replies
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("agreement-round");
    g.sample_size(10);

    g.bench_function("splitbft/1-request", |b| {
        let mut ts = 0u64;
        b.iter_batched(
            splitbft_cluster,
            |mut cluster| {
                ts += 1;
                black_box(pump_splitbft(&mut cluster, requests(1, ts)))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("splitbft/200-request-batch", |b| {
        b.iter_batched(
            splitbft_cluster,
            |mut cluster| black_box(pump_splitbft(&mut cluster, requests(200, 1))),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pbft/1-request", |b| {
        let mut ts = 0u64;
        b.iter_batched(
            pbft_cluster,
            |mut cluster| {
                ts += 1;
                black_box(pump_pbft(&mut cluster, requests(1, ts)))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pbft/200-request-batch", |b| {
        b.iter_batched(
            pbft_cluster,
            |mut cluster| black_box(pump_pbft(&mut cluster, requests(200, 1))),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
