//! Microbenchmarks of the cryptographic primitives — the real-time
//! counterpart to the virtual-time constants in
//! `splitbft_tee::CostModel`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use splitbft_crypto::aead::{open, seal, AeadKey};
use splitbft_crypto::hmac::hmac_sha256;
use splitbft_crypto::sha256::sha256;
use splitbft_crypto::KeyPair;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    g.sample_size(20);

    let payload_small = vec![0xABu8; 64];
    let payload_large = vec![0xABu8; 16 * 1024];

    g.bench_function("sha256/64B", |b| b.iter(|| sha256(black_box(&payload_small))));
    g.bench_function("sha256/16KiB", |b| b.iter(|| sha256(black_box(&payload_large))));
    g.bench_function("hmac/64B", |b| {
        b.iter(|| hmac_sha256(black_box(b"key material 32 bytes long......"), black_box(&payload_small)))
    });

    let kp = KeyPair::from_seed(7);
    let sig = kp.sign(&payload_small);
    let pk = kp.public_key();
    g.bench_function("schnorr/sign", |b| b.iter(|| kp.sign(black_box(&payload_small))));
    g.bench_function("schnorr/verify", |b| {
        b.iter(|| KeyPair::verify(black_box(&pk), black_box(&payload_small), black_box(&sig)))
    });

    let key = AeadKey::new(&[7u8; 32]);
    let sealed = seal(&key, 1, b"", &payload_small);
    g.bench_function("aead/seal-64B", |b| {
        b.iter(|| seal(black_box(&key), 1, b"", black_box(&payload_small)))
    });
    g.bench_function("aead/open-64B", |b| {
        b.iter(|| open(black_box(&key), 1, b"", black_box(&sealed)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
