//! Microbenchmarks of the enclave boundary: ecall dispatch through the
//! host (real time) and the virtual-time cost model arithmetic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use splitbft_tee::enclave::{Enclave, OcallSink};
use splitbft_tee::{CostModel, EnclaveHost, ExecMode};

struct Echo;
impl Enclave for Echo {
    fn measurement(&self) -> [u8; 32] {
        [0xEC; 32]
    }
    fn handle_ecall(&mut self, _id: u32, input: &[u8], env: &mut dyn OcallSink) -> Vec<u8> {
        env.ocall(1, &input[..input.len().min(32)]);
        input.to_vec()
    }
}

fn bench_boundary(c: &mut Criterion) {
    let mut g = c.benchmark_group("boundary");
    g.sample_size(20);

    let small = vec![0u8; 64];
    let batch = vec![0u8; 16 * 1024];

    let mut host = EnclaveHost::new(Echo, ExecMode::Hardware, CostModel::paper_calibrated());
    g.bench_function("ecall/64B", |b| {
        b.iter(|| host.ecall(1, black_box(&small)).unwrap())
    });
    g.bench_function("ecall/16KiB", |b| {
        b.iter(|| host.ecall(1, black_box(&batch)).unwrap())
    });

    let cost = CostModel::paper_calibrated();
    g.bench_function("cost-model/ecall_boundary_ns", |b| {
        b.iter(|| cost.ecall_boundary_ns(black_box(4096), black_box(128)))
    });
    g.finish();
}

criterion_group!(benches, bench_boundary);
criterion_main!(benches);
