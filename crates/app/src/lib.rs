//! Replicated applications executed by the (Split)BFT Execution stage.
//!
//! The paper evaluates two use cases: "(i) the replication of a trusted
//! key/value store and (ii) as an ordering service for a blockchain
//! application". Both are implemented here behind the [`Application`]
//! trait, which is what the Execution compartment (and the plain-PBFT /
//! hybrid baselines) drive.
//!
//! Determinism is the contract: every correct replica executes the same
//! operations in the same order and must reach bit-identical state, so
//! applications use ordered containers and canonical encodings throughout.
//!
//! # Example
//!
//! ```
//! use splitbft_app::{Application, KeyValueStore, KvOp};
//!
//! let mut kvs = KeyValueStore::new();
//! let put = KvOp::put(b"k", b"v").encode_op();
//! let get = KvOp::get(b"k").encode_op();
//! kvs.execute(&put);
//! assert_eq!(&kvs.execute(&get)[..], b"v");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockchain;
pub mod counter;
pub mod kvs;

use bytes::Bytes;
use splitbft_types::Digest;
use std::fmt;

pub use blockchain::{Block, Blockchain};
pub use counter::CounterApp;
pub use kvs::{KeyValueStore, KvOp, KvResult};

/// Errors surfaced by applications (snapshot restore only; execution never
/// fails — malformed operations execute as deterministic no-ops, as the
/// paper prescribes for corrupted client operations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The snapshot bytes could not be decoded.
    BadSnapshot(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::BadSnapshot(msg) => write!(f, "bad snapshot: {msg}"),
        }
    }
}

impl std::error::Error for AppError {}

/// A deterministic replicated state machine.
pub trait Application: Send {
    /// Executes one operation and returns its result.
    ///
    /// Must be deterministic, and must treat malformed input as a
    /// deterministic no-op (returning an error marker) rather than
    /// panicking: in the byzantine model, clients *will* submit garbage.
    fn execute(&mut self, op: &[u8]) -> Bytes;

    /// A canonical serialization of the full state, used for checkpoints
    /// and state transfer.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot produced by
    /// [`Application::snapshot`].
    ///
    /// # Errors
    ///
    /// [`AppError::BadSnapshot`] if the bytes are not a valid snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), AppError>;

    /// Digest of the canonical snapshot; embedded in `Checkpoint`
    /// messages.
    fn state_digest(&self) -> Digest {
        splitbft_crypto::digest_bytes(&self.snapshot())
    }

    /// Blobs the hosting enclave must persist via ocall (e.g. finished
    /// blockchain blocks). Drained after every batch execution; empty for
    /// applications without a persistence stream.
    fn drain_persist(&mut self) -> Vec<Bytes> {
        Vec::new()
    }

    /// Approximate heap usage, for EPC accounting.
    fn memory_usage(&self) -> usize;
}

/// The deterministic result returned for a malformed operation.
pub const NOOP_RESULT: &[u8] = b"\0noop";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_digest_tracks_snapshot() {
        let mut kvs = KeyValueStore::new();
        let d0 = kvs.state_digest();
        kvs.execute(&KvOp::put(b"a", b"1").encode_op());
        let d1 = kvs.state_digest();
        assert_ne!(d0, d1);

        // Restoring the snapshot reproduces the digest.
        let snap = kvs.snapshot();
        let mut other = KeyValueStore::new();
        other.restore(&snap).unwrap();
        assert_eq!(other.state_digest(), d1);
    }

    #[test]
    fn app_error_display() {
        let e = AppError::BadSnapshot("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }
}
