//! A trivial counter application, used by tests and the model checker
//! where the interesting behaviour is in the protocol, not the app.

use crate::{AppError, Application, NOOP_RESULT};
use bytes::Bytes;

/// A replicated counter. Operation `b"inc"` increments and returns the new
/// value (little-endian u64); `b"read"` returns the current value;
/// anything else is a no-op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterApp {
    value: u64,
}

impl CounterApp {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl Application for CounterApp {
    fn execute(&mut self, op: &[u8]) -> Bytes {
        match op {
            b"inc" => {
                self.value += 1;
                Bytes::copy_from_slice(&self.value.to_le_bytes())
            }
            b"read" => Bytes::copy_from_slice(&self.value.to_le_bytes()),
            _ => Bytes::from_static(NOOP_RESULT),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), AppError> {
        let bytes: [u8; 8] = snapshot
            .try_into()
            .map_err(|_| AppError::BadSnapshot(format!("expected 8 bytes, got {}", snapshot.len())))?;
        self.value = u64::from_le_bytes(bytes);
        Ok(())
    }

    fn memory_usage(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_reads() {
        let mut c = CounterApp::new();
        assert_eq!(&c.execute(b"inc")[..], &1u64.to_le_bytes());
        assert_eq!(&c.execute(b"inc")[..], &2u64.to_le_bytes());
        assert_eq!(&c.execute(b"read")[..], &2u64.to_le_bytes());
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn unknown_op_is_noop() {
        let mut c = CounterApp::new();
        assert_eq!(&c.execute(b"dec")[..], NOOP_RESULT);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut c = CounterApp::new();
        c.execute(b"inc");
        c.execute(b"inc");
        let snap = c.snapshot();
        let mut d = CounterApp::new();
        d.restore(&snap).unwrap();
        assert_eq!(c, d);
        assert!(d.restore(b"short").is_err());
    }
}
