//! The blockchain (distributed ledger) application — the paper's second
//! use case, where the BFT cluster acts as an ordering service.
//!
//! "The blockchain application creates blocks of five messages in the
//! execution enclave and writes them using an ocall into the untrusted
//! memory to be stored and encrypted persistently." We reproduce that:
//! every five executed transactions close a [`Block`] chained by parent
//! hash, and the serialized block is queued for the hosting enclave to
//! seal and persist via ocall ([`Application::drain_persist`]).

use crate::{AppError, Application, NOOP_RESULT};
use bytes::Bytes;
use splitbft_crypto::digest_of;
use splitbft_types::wire::{encode, Decode, Encode, Reader, WireError};
use splitbft_types::Digest;

/// Transactions per block, as in the paper's evaluation.
pub const BLOCK_SIZE: usize = 5;

/// A block of ordered transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Height in the chain (genesis children start at 0).
    pub height: u64,
    /// Digest of the parent block ([`Digest::ZERO`] for the first block).
    pub parent: Digest,
    /// The transactions, in agreement order.
    pub transactions: Vec<Bytes>,
}

impl Block {
    /// This block's digest (over the canonical encoding).
    pub fn digest(&self) -> Digest {
        digest_of(self)
    }
}

impl Encode for Block {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.height.encode(buf);
        self.parent.encode(buf);
        self.transactions.encode(buf);
    }
}
impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Block {
            height: u64::decode(r)?,
            parent: Digest::decode(r)?,
            transactions: Vec::decode(r)?,
        })
    }
}

/// The ledger state machine.
///
/// Every valid operation is appended as a transaction; its result is a
/// receipt carrying the transaction's position (height, index). Blocks are
/// handed to the environment through [`Application::drain_persist`] — in
/// SplitBFT the Execution enclave seals them first.
#[derive(Debug, Clone, Default)]
pub struct Blockchain {
    /// Transactions not yet baked into a block.
    pending: Vec<Bytes>,
    /// Digest of the last closed block.
    head: Digest,
    /// Number of closed blocks.
    height: u64,
    /// Closed blocks awaiting persistence (drained via ocall).
    outbox: Vec<Bytes>,
    bytes_pending: usize,
}

impl Blockchain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Height of the chain (number of closed blocks).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Digest of the chain head ([`Digest::ZERO`] before the first block).
    pub fn head(&self) -> Digest {
        self.head
    }

    /// Transactions accumulated toward the next block.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn close_block(&mut self) {
        let block = Block {
            height: self.height,
            parent: self.head,
            transactions: std::mem::take(&mut self.pending),
        };
        self.bytes_pending = 0;
        self.head = block.digest();
        self.height += 1;
        self.outbox.push(Bytes::from(encode(&block)));
    }
}

impl Application for Blockchain {
    fn execute(&mut self, op: &[u8]) -> Bytes {
        // A transaction must be non-empty; empty submissions execute as
        // no-ops so byzantine clients cannot inflate blocks for free.
        if op.is_empty() {
            return Bytes::from_static(NOOP_RESULT);
        }
        let index = self.pending.len() as u64;
        self.bytes_pending += op.len();
        self.pending.push(Bytes::copy_from_slice(op));

        // Receipt: block height this tx will land in, index within it.
        let mut receipt = Vec::with_capacity(16);
        self.height.encode(&mut receipt);
        index.encode(&mut receipt);

        if self.pending.len() >= BLOCK_SIZE {
            self.close_block();
        }
        Bytes::from(receipt)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.height.encode(&mut buf);
        self.head.encode(&mut buf);
        self.pending.encode(&mut buf);
        buf
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), AppError> {
        let mut r = Reader::new(snapshot);
        let height = u64::decode(&mut r).map_err(|e| AppError::BadSnapshot(e.to_string()))?;
        let head = Digest::decode(&mut r).map_err(|e| AppError::BadSnapshot(e.to_string()))?;
        let pending: Vec<Bytes> =
            Vec::decode(&mut r).map_err(|e| AppError::BadSnapshot(e.to_string()))?;
        if r.remaining() != 0 {
            return Err(AppError::BadSnapshot("trailing bytes".into()));
        }
        self.height = height;
        self.head = head;
        self.bytes_pending = pending.iter().map(|t| t.len()).sum();
        self.pending = pending;
        self.outbox.clear();
        Ok(())
    }

    fn drain_persist(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.outbox)
    }

    fn memory_usage(&self) -> usize {
        self.bytes_pending
            + self.pending.len() * 32
            + self.outbox.iter().map(|b| b.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::wire::decode;

    fn tx(i: u8) -> Vec<u8> {
        vec![i; 10]
    }

    #[test]
    fn five_transactions_close_a_block() {
        let mut chain = Blockchain::new();
        for i in 0..4 {
            chain.execute(&tx(i));
            assert_eq!(chain.height(), 0);
            assert!(chain.drain_persist().is_empty());
        }
        chain.execute(&tx(4));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.pending_len(), 0);

        let persisted = chain.drain_persist();
        assert_eq!(persisted.len(), 1);
        let block: Block = decode(&persisted[0]).unwrap();
        assert_eq!(block.height, 0);
        assert_eq!(block.parent, Digest::ZERO);
        assert_eq!(block.transactions.len(), BLOCK_SIZE);
    }

    #[test]
    fn blocks_chain_by_parent_digest() {
        let mut chain = Blockchain::new();
        for i in 0..10 {
            chain.execute(&tx(i));
        }
        let blocks: Vec<Block> =
            chain.drain_persist().iter().map(|b| decode(b).unwrap()).collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].parent, blocks[0].digest());
        assert_eq!(chain.head(), blocks[1].digest());
    }

    #[test]
    fn receipts_carry_position() {
        let mut chain = Blockchain::new();
        let r0 = chain.execute(&tx(0));
        let mut reader = Reader::new(&r0);
        assert_eq!(u64::decode(&mut reader).unwrap(), 0); // height
        assert_eq!(u64::decode(&mut reader).unwrap(), 0); // index

        for i in 1..6 {
            chain.execute(&tx(i));
        }
        // Sixth tx goes into block 1 at index 0.
        let r6 = chain.execute(&tx(6));
        let mut reader = Reader::new(&r6);
        assert_eq!(u64::decode(&mut reader).unwrap(), 1);
        assert_eq!(u64::decode(&mut reader).unwrap(), 1);
    }

    #[test]
    fn empty_tx_is_noop() {
        let mut chain = Blockchain::new();
        assert_eq!(&chain.execute(b"")[..], NOOP_RESULT);
        assert_eq!(chain.pending_len(), 0);
    }

    #[test]
    fn snapshot_restore_preserves_chain_position() {
        let mut chain = Blockchain::new();
        for i in 0..7 {
            chain.execute(&tx(i));
        }
        chain.drain_persist();
        let snap = chain.snapshot();

        let mut restored = Blockchain::new();
        restored.restore(&snap).unwrap();
        assert_eq!(restored.height(), chain.height());
        assert_eq!(restored.head(), chain.head());
        assert_eq!(restored.pending_len(), chain.pending_len());
        assert_eq!(restored.state_digest(), chain.state_digest());

        // Continue executing on both: they stay identical.
        for i in 7..12 {
            chain.execute(&tx(i));
            restored.execute(&tx(i));
        }
        assert_eq!(restored.state_digest(), chain.state_digest());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut chain = Blockchain::new();
        assert!(chain.restore(b"junk").is_err());
        assert!(chain.restore(b"").is_err());
    }

    #[test]
    fn identical_histories_identical_digests() {
        let mut a = Blockchain::new();
        let mut b = Blockchain::new();
        for i in 0..23 {
            a.execute(&tx(i));
            b.execute(&tx(i));
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.head(), b.head());
    }
}
