//! The replicated key-value store used in the paper's first use case.
//!
//! Operations are `PUT`, `GET`, and `DELETE` over byte keys and values.
//! The paper's throughput/latency measurements "evaluate a PUT operation
//! that updates the entries" with 10-byte payloads; the workload
//! generators in `splitbft-sim` produce exactly that.

use crate::{AppError, Application, NOOP_RESULT};
use bytes::Bytes;
use splitbft_types::wire::{decode, encode, Decode, Encode, Reader, WireError};
use std::collections::BTreeMap;

/// A key-value store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or update a key. Returns the previous value or empty.
    Put {
        /// The key.
        key: Bytes,
        /// The value.
        value: Bytes,
    },
    /// Read a key. Returns the value or empty if absent.
    Get {
        /// The key.
        key: Bytes,
    },
    /// Remove a key. Returns the removed value or empty.
    Delete {
        /// The key.
        key: Bytes,
    },
}

impl KvOp {
    /// Convenience constructor for a `Put`.
    pub fn put(key: &[u8], value: &[u8]) -> Self {
        KvOp::Put { key: Bytes::copy_from_slice(key), value: Bytes::copy_from_slice(value) }
    }

    /// Convenience constructor for a `Get`.
    pub fn get(key: &[u8]) -> Self {
        KvOp::Get { key: Bytes::copy_from_slice(key) }
    }

    /// Convenience constructor for a `Delete`.
    pub fn delete(key: &[u8]) -> Self {
        KvOp::Delete { key: Bytes::copy_from_slice(key) }
    }

    /// Serializes the operation into the byte string clients submit.
    pub fn encode_op(&self) -> Bytes {
        Bytes::from(encode(self))
    }
}

impl Encode for KvOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOp::Put { key, value } => {
                buf.push(0);
                key.encode(buf);
                value.encode(buf);
            }
            KvOp::Get { key } => {
                buf.push(1);
                key.encode(buf);
            }
            KvOp::Delete { key } => {
                buf.push(2);
                key.encode(buf);
            }
        }
    }
}

impl Decode for KvOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(KvOp::Put { key: Bytes::decode(r)?, value: Bytes::decode(r)? }),
            1 => Ok(KvOp::Get { key: Bytes::decode(r)? }),
            2 => Ok(KvOp::Delete { key: Bytes::decode(r)? }),
            tag => Err(WireError::InvalidTag { ty: "KvOp", tag }),
        }
    }
}

/// The decoded result of a KVS operation (a thin helper over the raw
/// result bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResult {
    /// The operation succeeded; payload is the (possibly empty) value.
    Value(Bytes),
    /// The operation was malformed and executed as a no-op.
    Noop,
}

impl KvResult {
    /// Interprets raw result bytes from [`KeyValueStore::execute`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        if bytes == NOOP_RESULT {
            KvResult::Noop
        } else {
            KvResult::Value(Bytes::copy_from_slice(bytes))
        }
    }
}

/// A deterministic in-memory key-value store.
///
/// Uses a `BTreeMap` so snapshots are canonical: two replicas that applied
/// the same operations serialize bit-identical snapshots regardless of
/// insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyValueStore {
    map: BTreeMap<Bytes, Bytes>,
    bytes_stored: usize,
}

impl KeyValueStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access (used by examples and tests; replicated reads go
    /// through [`Application::execute`]).
    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        self.map.get(key)
    }

    fn apply(&mut self, op: KvOp) -> Bytes {
        match op {
            KvOp::Put { key, value } => {
                self.bytes_stored += key.len() + value.len();
                let old = self.map.insert(key, value);
                if let Some(ref v) = old {
                    self.bytes_stored = self.bytes_stored.saturating_sub(v.len());
                }
                old.unwrap_or_default()
            }
            KvOp::Get { key } => self.map.get(&key).cloned().unwrap_or_default(),
            KvOp::Delete { key } => {
                let old = self.map.remove(&key);
                if let Some(ref v) = old {
                    self.bytes_stored = self.bytes_stored.saturating_sub(key.len() + v.len());
                }
                old.unwrap_or_default()
            }
        }
    }
}

impl Application for KeyValueStore {
    fn execute(&mut self, op: &[u8]) -> Bytes {
        match decode::<KvOp>(op) {
            Ok(op) => self.apply(op),
            // Malformed operation: deterministic no-op (paper §4: "When
            // clients submit corrupted operations, the Execution
            // Compartment will detect this and execute a no-op instead").
            Err(_) => Bytes::from_static(NOOP_RESULT),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let entries: Vec<(Bytes, Bytes)> =
            self.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        encode(&entries)
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), AppError> {
        let entries: Vec<(Bytes, Bytes)> =
            decode(snapshot).map_err(|e| AppError::BadSnapshot(e.to_string()))?;
        self.map = entries.into_iter().collect();
        self.bytes_stored = self.map.iter().map(|(k, v)| k.len() + v.len()).sum();
        Ok(())
    }

    fn memory_usage(&self) -> usize {
        self.bytes_stored + self.map.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::wire::roundtrip;

    #[test]
    fn put_get_delete_semantics() {
        let mut kvs = KeyValueStore::new();
        assert_eq!(kvs.execute(&KvOp::get(b"x").encode_op()), Bytes::new());
        assert_eq!(kvs.execute(&KvOp::put(b"x", b"1").encode_op()), Bytes::new());
        assert_eq!(&kvs.execute(&KvOp::get(b"x").encode_op())[..], b"1");
        // Put returns the previous value.
        assert_eq!(&kvs.execute(&KvOp::put(b"x", b"2").encode_op())[..], b"1");
        assert_eq!(&kvs.execute(&KvOp::delete(b"x").encode_op())[..], b"2");
        assert!(kvs.is_empty());
    }

    #[test]
    fn malformed_op_is_noop() {
        let mut kvs = KeyValueStore::new();
        kvs.execute(&KvOp::put(b"a", b"1").encode_op());
        let before = kvs.snapshot();
        let result = kvs.execute(b"\xff\xff garbage");
        assert_eq!(KvResult::from_bytes(&result), KvResult::Noop);
        assert_eq!(kvs.snapshot(), before, "state must not change");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut kvs = KeyValueStore::new();
        for i in 0..100u32 {
            kvs.execute(&KvOp::put(&i.to_le_bytes(), &[i as u8; 10]).encode_op());
        }
        let snap = kvs.snapshot();
        let mut restored = KeyValueStore::new();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, kvs);
        assert_eq!(restored.memory_usage(), kvs.memory_usage());
    }

    #[test]
    fn snapshot_is_canonical_across_insertion_orders() {
        let mut a = KeyValueStore::new();
        a.execute(&KvOp::put(b"k1", b"v1").encode_op());
        a.execute(&KvOp::put(b"k2", b"v2").encode_op());
        let mut b = KeyValueStore::new();
        b.execute(&KvOp::put(b"k2", b"v2").encode_op());
        b.execute(&KvOp::put(b"k1", b"v1").encode_op());
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut kvs = KeyValueStore::new();
        assert!(kvs.restore(b"not a snapshot").is_err());
    }

    #[test]
    fn op_wire_roundtrips() {
        roundtrip(&KvOp::put(b"key", b"value"));
        roundtrip(&KvOp::get(b""));
        roundtrip(&KvOp::delete(b"k"));
    }

    #[test]
    fn memory_usage_tracks_contents() {
        let mut kvs = KeyValueStore::new();
        let m0 = kvs.memory_usage();
        kvs.execute(&KvOp::put(b"key", &[0u8; 1000]).encode_op());
        assert!(kvs.memory_usage() > m0 + 1000);
        kvs.execute(&KvOp::delete(b"key").encode_op());
        assert_eq!(kvs.memory_usage(), m0);
    }

    #[test]
    fn kv_result_distinguishes_noop_from_value() {
        assert_eq!(KvResult::from_bytes(NOOP_RESULT), KvResult::Noop);
        assert_eq!(
            KvResult::from_bytes(b"data"),
            KvResult::Value(Bytes::from_static(b"data"))
        );
        // Empty result is a value (absent key), not a noop.
        assert_eq!(KvResult::from_bytes(b""), KvResult::Value(Bytes::new()));
    }
}
