//! The per-node telemetry bundle.
//!
//! [`NodeTelemetry`] owns the node's [`Registry`], its bounded
//! [`EventJournal`], and the lifecycle flags (recovering / draining /
//! drained), and pre-registers a handle for every core series so the
//! layers that feed them (socket readers, rings, the hosting core, the
//! durable store mirror) update single atomics on their hot paths. The
//! same bundle answers both exposure surfaces: the `STATUS` frame
//! ([`NodeTelemetry::snapshot`] → a versioned
//! [`splitbft_types::NodeSnapshot`]) and the HTTP `/metrics` endpoint
//! ([`NodeTelemetry::render_prometheus`]).

use crate::journal::EventJournal;
use crate::registry::{Metric, Registry};
use splitbft_types::{NodeSnapshot, StatusEvent, SNAPSHOT_VERSION};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How far behind the best peer checkpoint observed during recovery a
/// node may be and still report ready on `/readyz`. One checkpoint
/// interval of slack: the node is participating, just not at the exact
/// tip.
pub const READY_WATERMARK_GAP: u64 = 128;

/// One node's complete telemetry state. Cheap to share (`Arc`), safe to
/// update from any thread.
#[derive(Debug)]
pub struct NodeTelemetry {
    /// The underlying registry (for layer-specific extra series).
    pub registry: Arc<Registry>,
    /// The bounded structured event journal.
    pub journal: EventJournal,
    replica: u32,

    /// Highest executed sequence number (protocol progress).
    pub progress: Metric,
    /// The protocol's current view.
    pub view: Metric,
    /// View changes completed since startup.
    pub view_changes: Metric,
    /// Requests accepted but not yet executed.
    pub pending_requests: Metric,
    /// WAL fsyncs performed.
    pub fsyncs: Metric,
    /// Current WAL length in bytes.
    pub wal_bytes: Metric,
    /// Durable checkpoints sealed.
    pub checkpoint_seals: Metric,
    /// Successful peer-link reconnects.
    pub reconnects: Metric,
    /// Frames refused by bounded rings/queues.
    pub ring_refusals: Metric,
    /// Bytes read off the network.
    pub bytes_in: Metric,
    /// Bytes written to the network.
    pub bytes_out: Metric,
    /// High-water mark of the core event queue depth.
    pub queue_depth_high_water: Metric,
    /// Consensus groups hosted (1 for unsharded).
    pub shards: Metric,
    /// Best peer checkpoint sequence observed during recovery — the
    /// `/readyz` catch-up watermark.
    pub catchup_target: Metric,

    recovering: AtomicBool,
    draining: AtomicBool,
    drained: AtomicBool,
    recovering_gauge: Metric,
    draining_gauge: Metric,

    shard_progress: Mutex<Vec<Metric>>,
    shard_fsyncs: Mutex<Vec<Metric>>,
    shard_progress_values: Mutex<Vec<u64>>,
    shard_fsync_values: Mutex<Vec<u64>>,
    shard_views: Mutex<Vec<Metric>>,
}

impl NodeTelemetry {
    /// A fresh bundle for replica `replica` with every core series
    /// registered.
    pub fn new(replica: u32) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let telemetry = NodeTelemetry {
            progress: registry
                .gauge("splitbft_progress", "highest executed sequence number"),
            view: registry.gauge("splitbft_view", "current protocol view"),
            view_changes: registry
                .counter("splitbft_view_changes_total", "view changes completed"),
            pending_requests: registry
                .gauge("splitbft_pending_requests", "requests accepted but not yet executed"),
            fsyncs: registry.counter("splitbft_fsyncs_total", "WAL fsyncs performed"),
            wal_bytes: registry.gauge("splitbft_wal_bytes", "current WAL length in bytes"),
            checkpoint_seals: registry
                .counter("splitbft_checkpoint_seals_total", "durable checkpoints sealed"),
            reconnects: registry
                .counter("splitbft_reconnects_total", "successful peer-link reconnects"),
            ring_refusals: registry.counter(
                "splitbft_ring_refusals_total",
                "frames refused by bounded rings and queues",
            ),
            bytes_in: registry.counter("splitbft_bytes_in_total", "bytes read off the network"),
            bytes_out: registry
                .counter("splitbft_bytes_out_total", "bytes written to the network"),
            queue_depth_high_water: registry.gauge(
                "splitbft_queue_depth_high_water",
                "high-water mark of the core event queue depth",
            ),
            shards: registry.gauge("splitbft_shards", "consensus groups hosted"),
            catchup_target: registry.gauge(
                "splitbft_catchup_target",
                "best peer checkpoint sequence observed during recovery",
            ),
            recovering: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            recovering_gauge: registry
                .gauge("splitbft_recovering", "1 while startup recovery or catch-up runs"),
            draining_gauge: registry
                .gauge("splitbft_draining", "1 once a graceful drain was requested"),
            shard_progress: Mutex::new(Vec::new()),
            shard_fsyncs: Mutex::new(Vec::new()),
            shard_progress_values: Mutex::new(Vec::new()),
            shard_fsync_values: Mutex::new(Vec::new()),
            shard_views: Mutex::new(Vec::new()),
            journal: EventJournal::default(),
            replica,
            registry: Arc::clone(&registry),
        };
        telemetry.shards.set(1);
        registry.gauge_with(
            "splitbft_replica",
            &[("replica", &replica.to_string())],
            "the replica id answering this endpoint (value is always 1)",
        )
        .set(1);
        Arc::new(telemetry)
    }

    /// The replica this bundle belongs to.
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Appends one typed event to the journal, returning its sequence.
    pub fn record_event(&self, event: StatusEvent) -> u64 {
        self.journal.record(event)
    }

    /// Publishes the per-shard gauge vectors, registering labeled
    /// series on first sight of each shard index.
    pub fn set_shard_gauges(&self, progress: &[u64], fsyncs: &[u64]) {
        self.shards.set(progress.len().max(1) as u64);
        {
            let mut metrics = self.shard_progress.lock().expect("shard metrics");
            Self::publish_shard(
                &self.registry,
                &mut metrics,
                "splitbft_shard_progress",
                "per-shard highest executed sequence number",
                progress,
            );
            *self.shard_progress_values.lock().expect("shard values") = progress.to_vec();
        }
        {
            let mut metrics = self.shard_fsyncs.lock().expect("shard metrics");
            Self::publish_shard(
                &self.registry,
                &mut metrics,
                "splitbft_shard_fsyncs",
                "per-shard WAL fsync count",
                fsyncs,
            );
            *self.shard_fsync_values.lock().expect("shard values") = fsyncs.to_vec();
        }
    }

    fn publish_shard(
        registry: &Registry,
        metrics: &mut Vec<Metric>,
        name: &str,
        help: &str,
        values: &[u64],
    ) {
        while metrics.len() < values.len() {
            let shard = metrics.len().to_string();
            metrics.push(registry.gauge_with(name, &[("shard", &shard)], help));
        }
        for (metric, value) in metrics.iter().zip(values) {
            metric.set(*value);
        }
    }

    /// Publishes per-shard view gauges (one labeled series per shard).
    pub fn set_shard_views(&self, views: &[u64]) {
        let mut metrics = self.shard_views.lock().expect("shard metrics");
        while metrics.len() < views.len() {
            let shard = metrics.len().to_string();
            metrics.push(self.registry.gauge_with(
                "splitbft_shard_view",
                &[("shard", &shard)],
                "per-shard current view",
            ));
        }
        for (metric, value) in metrics.iter().zip(views) {
            metric.set(*value);
        }
    }

    /// Marks the start/end of startup recovery & catch-up.
    pub fn set_recovering(&self, recovering: bool) {
        self.recovering.store(recovering, Ordering::SeqCst);
        self.recovering_gauge.set(recovering as u64);
    }

    /// `true` while startup recovery / catch-up runs.
    pub fn recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain. Returns `true` the first time (the
    /// caller then records follow-up actions); repeat requests are
    /// idempotent no-ops.
    pub fn request_drain(&self) -> bool {
        let first = !self.draining.swap(true, Ordering::SeqCst);
        if first {
            self.draining_gauge.set(1);
            self.record_event(StatusEvent::DrainRequested);
        }
        first
    }

    /// `true` once a drain was requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Marks the drain finished (checkpoint sealed, WAL flushed, no
    /// pending requests). Idempotent.
    pub fn complete_drain(&self) {
        if !self.drained.swap(true, Ordering::SeqCst) {
            self.record_event(StatusEvent::DrainCompleted);
        }
    }

    /// `true` once the drain finished.
    pub fn drained(&self) -> bool {
        self.drained.load(Ordering::SeqCst)
    }

    /// `/readyz` semantics: recovered, caught up to within
    /// [`READY_WATERMARK_GAP`] of the best peer checkpoint observed
    /// during recovery, and not draining.
    pub fn ready(&self) -> bool {
        !self.recovering()
            && !self.draining()
            && self.progress.get() + READY_WATERMARK_GAP >= self.catchup_target.get()
    }

    /// Renders the node's registry as Prometheus exposition text.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// A versioned point-in-time copy of every gauge, served for
    /// `STATUS` snapshot requests.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            version: SNAPSHOT_VERSION,
            replica: self.replica,
            progress: self.progress.get(),
            view: self.view.get(),
            view_changes: self.view_changes.get(),
            pending_requests: self.pending_requests.get(),
            fsyncs: self.fsyncs.get(),
            wal_bytes: self.wal_bytes.get(),
            checkpoint_seals: self.checkpoint_seals.get(),
            reconnects: self.reconnects.get(),
            ring_refusals: self.ring_refusals.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            queue_depth_high_water: self.queue_depth_high_water.get(),
            shard_progress: self.shard_progress_values.lock().expect("shard values").clone(),
            shard_fsyncs: self.shard_fsync_values.lock().expect("shard values").clone(),
            recovering: self.recovering(),
            draining: self.draining(),
            drained: self.drained(),
            journal_head: self.journal.head(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_gauges_and_flags() {
        let telemetry = NodeTelemetry::new(3);
        telemetry.progress.set(500);
        telemetry.view.set(2);
        telemetry.fsyncs.set(41);
        telemetry.set_shard_gauges(&[250, 250], &[20, 21]);
        telemetry.record_event(StatusEvent::ViewChange { view: 2 });
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.version, SNAPSHOT_VERSION);
        assert_eq!(snapshot.replica, 3);
        assert_eq!(snapshot.progress, 500);
        assert_eq!(snapshot.view, 2);
        assert_eq!(snapshot.fsyncs, 41);
        assert_eq!(snapshot.shard_progress, vec![250, 250]);
        assert_eq!(snapshot.shard_fsyncs, vec![20, 21]);
        assert_eq!(snapshot.journal_head, 1);
        assert!(!snapshot.draining);
    }

    #[test]
    fn drain_lifecycle_is_idempotent_and_journaled() {
        let telemetry = NodeTelemetry::new(0);
        assert!(telemetry.request_drain(), "first request wins");
        assert!(!telemetry.request_drain(), "repeat is a no-op");
        assert!(telemetry.draining());
        assert!(!telemetry.drained());
        telemetry.complete_drain();
        telemetry.complete_drain();
        assert!(telemetry.drained());
        let events: Vec<StatusEvent> =
            telemetry.journal.since(0).into_iter().map(|(_, e)| e).collect();
        assert_eq!(events, vec![StatusEvent::DrainRequested, StatusEvent::DrainCompleted]);
    }

    #[test]
    fn readiness_tracks_recovery_catchup_and_drain() {
        let telemetry = NodeTelemetry::new(0);
        assert!(telemetry.ready(), "fresh node with no catch-up target is ready");
        telemetry.set_recovering(true);
        assert!(!telemetry.ready());
        telemetry.set_recovering(false);
        telemetry.catchup_target.set(10_000);
        assert!(!telemetry.ready(), "far behind the watermark");
        telemetry.progress.set(10_000 - READY_WATERMARK_GAP);
        assert!(telemetry.ready(), "within the gap counts as caught up");
        telemetry.request_drain();
        assert!(!telemetry.ready(), "a draining node stops reporting ready");
    }

    #[test]
    fn prometheus_output_includes_core_and_shard_series() {
        let telemetry = NodeTelemetry::new(1);
        telemetry.progress.set(7);
        telemetry.set_shard_gauges(&[3, 4], &[1, 1]);
        telemetry.set_shard_views(&[0, 2]);
        let text = telemetry.render_prometheus();
        for series in [
            "splitbft_progress 7",
            "splitbft_view ",
            "splitbft_fsyncs_total ",
            "splitbft_queue_depth_high_water ",
            "splitbft_shards 2",
            "splitbft_shard_progress{shard=\"0\"} 3",
            "splitbft_shard_progress{shard=\"1\"} 4",
            "splitbft_shard_view{shard=\"1\"} 2",
            "splitbft_replica{replica=\"1\"} 1",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
    }
}
